"""Developer tooling that ships with the package (doc checks, lint, CI helpers).

Nothing here is imported by the library itself; the modules are entry
points run as ``python -m repro.tools.<name>`` — ``check_docs`` for the
documentation reference checker and ``lint`` for the invariant linter.
"""

__all__: list[str] = []
