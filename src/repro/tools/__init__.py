"""Developer tooling that ships with the package (doc checks, CI helpers).

Nothing here is imported by the library itself; the modules are entry
points run as ``python -m repro.tools.<name>``.
"""
