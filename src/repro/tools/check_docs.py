"""Fail CI when the docs reference files or modules that no longer exist.

Usage::

    python -m repro.tools.check_docs            # checks docs/*.md + README.md
    python -m repro.tools.check_docs FILE ...   # check specific markdown files

Three kinds of reference are verified:

* **relative markdown links** ``[text](target)`` — the target (anchor and
  query stripped) must exist on disk, resolved against the linking file's
  directory; external (``http://``, ``https://``, ``mailto:``) and
  pure-anchor links are skipped;
* **dotted module paths** in backticks, e.g. ```repro.datalog.sharding`` `` —
  the module must be importable, or its longest importable prefix must
  expose the trailing attribute (so ``repro.workloads.telecom.db1`` checks
  ``db1`` on ``repro.workloads.telecom``);
* **repo-relative file paths** in backticks ending in ``.py``/``.md``/
  ``.json``/``.yml`` (e.g. ``benchmarks/run_shard_ablation.py``) — the
  file must exist relative to the repo root.  Paths containing glob
  characters are checked as globs and must match at least one file.

The checker exits non-zero listing every stale reference, so renaming a
module or moving a benchmark without updating ``docs/`` breaks the build
instead of silently rotting the documentation.
"""

from __future__ import annotations

import glob
import importlib
import re
import sys
from pathlib import Path

__all__ = ["check_file", "find_repo_root", "main"]

#: ``[text](target)`` markdown links; target captured lazily to stop at the
#: first closing parenthesis (doc links here never contain nested parens).
_MD_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: Backticked dotted module paths rooted at the package, optionally ending
#: in an attribute: `repro.core.naive`, `repro.workloads.telecom.db1`.
_MODULE_REF = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")

#: Backticked repo-relative file paths: `tests/datalog/test_sharding.py`,
#: `benchmarks/bench_figure5_row*.py`, `docs/architecture.md`.
_FILE_REF = re.compile(r"`([A-Za-z0-9_\-./*]+\.(?:py|md|json|yml|yaml|toml))`")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def _check_markdown_links(doc: Path, text: str, repo_root: Path) -> list[str]:
    problems = []
    for match in _MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        path_part = target.split("#", 1)[0].split("?", 1)[0]
        if not path_part:
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            problems.append(
                f"{doc.relative_to(repo_root)}: broken link ({target})"
            )
    return problems


def _module_exists(dotted: str) -> bool:
    """True when ``dotted`` resolves to a module, or to an attribute chain
    (function, class, method, ...) on its longest importable module prefix."""
    parts = dotted.split(".")
    module = None
    consumed = 0
    for i in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:i]))
            consumed = i
            break
        except ImportError:
            continue
    if module is None:
        return False
    obj = module
    for attr in parts[consumed:]:
        try:
            obj = getattr(obj, attr)
        except AttributeError:
            return False
    return True


def _check_module_refs(doc: Path, text: str, repo_root: Path) -> list[str]:
    problems = []
    for dotted in sorted(set(_MODULE_REF.findall(text))):
        if not _module_exists(dotted):
            problems.append(
                f"{doc.relative_to(repo_root)}: stale module path `{dotted}`"
            )
    return problems


def _check_file_refs(doc: Path, text: str, repo_root: Path) -> list[str]:
    problems = []
    for ref in sorted(set(_FILE_REF.findall(text))):
        if "*" in ref or "?" in ref:
            if not glob.glob(str(repo_root / ref)):
                problems.append(
                    f"{doc.relative_to(repo_root)}: file glob `{ref}` matches nothing"
                )
        elif not (repo_root / ref).exists():
            problems.append(
                f"{doc.relative_to(repo_root)}: referenced file `{ref}` does not exist"
            )
    return problems


def check_file(doc: Path, repo_root: Path) -> list[str]:
    """All stale references of one markdown file."""
    text = doc.read_text(encoding="utf-8")
    return (
        _check_markdown_links(doc, text, repo_root)
        + _check_module_refs(doc, text, repo_root)
        + _check_file_refs(doc, text, repo_root)
    )


def find_repo_root(start: Path) -> Path:
    """The nearest ancestor containing ``pyproject.toml`` (else ``start``)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def main(argv: list[str] | None = None) -> int:
    """Thin CI-compatibility shim over ``python -m repro.tools.lint``.

    The checker is now the ``doc-refs`` rule (REP108) of the lint
    framework; this entry point survives so existing CI configurations and
    muscle memory keep working.  Explicit file arguments are still checked
    directly through :func:`check_file`.
    """
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        repo_root = find_repo_root(Path.cwd().resolve())
        problems: list[str] = []
        for arg in argv:
            problems.extend(check_file(Path(arg).resolve(), repo_root))
        if problems:
            print(f"check_docs: {len(problems)} stale reference(s):", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"check_docs: {len(argv)} file(s) OK")
        return 0
    # Imported lazily: the lint framework imports this module's check
    # functions, and the lazy import keeps the module graph acyclic.
    from repro.tools.lint.cli import main as lint_main

    return lint_main(["--rule", "doc-refs"])


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
