"""Runtime lock sanitizer: acquisition-order recording and inversion detection.

The static side of the concurrency battery (REP109–REP111 in
:mod:`repro.tools.lint`) proves what it can see; this module watches what
actually happens.  :class:`SanitizedLock` is a drop-in ``threading.Lock``
wrapper that, per acquisition, records the lockdep-style *order edge*
``held → acquiring`` for every lock the current thread already holds —
**before** blocking, so an acquisition that deadlocks still leaves its
evidence — and checks each new edge against every edge seen so far.  Two
locks ever taken in both orders is an **inversion**: the interleaving that
deadlocks exists even if this run got lucky.  It also accounts how long
each acquisition waited while *other* locks were held, the convoy metric
REP110 bounds statically.

Adoption is by construction site: the lock-owning runtime classes
(``LifecycleCache``, ``RequestCache``, ``ShardedEvaluator``,
``AsyncMetaqueryEngine``) create their ``self._lock`` through
:func:`create_lock`, which returns a plain ``threading.Lock`` unless
``REPRO_SANITIZE=1`` is set **at construction time** — the production hot
path keeps its zero-overhead primitive, and flipping the env var
instruments every lock built afterwards.  Lock names follow the static
analysis' identity convention (the owning class's dotted name), so a
runtime inversion names the same vertices a REP109 finding would.

The registry is process-local: pool workers inherit ``REPRO_SANITIZE``
through the environment and sanitize their own locks, but their records
die with the worker — cross-process lock order is (deliberately) out of
scope, matching the static rules' class-granularity model.

The pytest side lives in ``tests/conftest.py``: the ``lock_sanitizer``
fixture calls :func:`reset`, runs the test, and asserts
:func:`inversions` stayed empty; CI runs the concurrency suites under
``REPRO_SANITIZE=1`` so every interleaving the tests produce feeds the
detector.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from types import TracebackType
from typing import Union

__all__ = [
    "ENV_FLAG",
    "Inversion",
    "LockStats",
    "SanitizedLock",
    "create_lock",
    "enabled",
    "held_locks",
    "inversions",
    "order_edges",
    "report",
    "reset",
]

ENV_FLAG = "REPRO_SANITIZE"


@dataclass(frozen=True)
class Inversion:
    """Two locks observed in both acquisition orders."""

    first: str  #: lock held while acquiring ``second`` (this acquisition)
    second: str  #: the lock being acquired
    thread: str  #: thread name of this acquisition
    prior_thread: str  #: thread name that recorded the opposite edge

    def describe(self) -> str:
        """A one-line human-readable account of the inversion."""
        return (
            f"lock-order inversion: {self.thread!r} acquired {self.second} "
            f"while holding {self.first}, but {self.prior_thread!r} previously "
            f"acquired {self.first} while holding {self.second}"
        )


@dataclass
class LockStats:
    """Per-lock accounting (mutated only under the registry mutex)."""

    acquisitions: int = 0
    #: total ns spent waiting in ``acquire`` while holding at least one
    #: other sanitized lock — the held-lock convoy time REP110 bounds.
    wait_ns_while_holding: int = 0
    #: total ns spent waiting in ``acquire`` overall.
    wait_ns_total: int = 0
    max_wait_ns: int = 0


class _Registry:
    """Process-global sanitizer state, guarded by a plain mutex."""

    def __init__(self) -> None:
        self.mutex = threading.Lock()
        #: (held, acquired) -> thread name that first recorded the edge
        self.edges: dict[tuple[str, str], str] = {}
        self.inversions: list[Inversion] = []
        self.stats: dict[str, LockStats] = {}

    def record_acquire_intent(self, name: str, held: list[str]) -> None:
        """Record order edges for an imminent acquisition (pre-block)."""
        thread = threading.current_thread().name
        with self.mutex:
            for held_name in held:
                edge = (held_name, name)
                if edge not in self.edges:
                    self.edges[edge] = thread
                prior = self.edges.get((name, held_name))
                if prior is not None and name != held_name:
                    self.inversions.append(
                        Inversion(
                            first=held_name,
                            second=name,
                            thread=thread,
                            prior_thread=prior,
                        )
                    )
                if name == held_name:
                    # threading.Lock is not reentrant: re-acquisition from
                    # the same thread will deadlock right after this call,
                    # so the evidence must be recorded first.
                    self.inversions.append(
                        Inversion(
                            first=held_name, second=name, thread=thread, prior_thread=thread
                        )
                    )

    def record_acquired(self, name: str, wait_ns: int, was_holding: bool) -> None:
        with self.mutex:
            stats = self.stats.setdefault(name, LockStats())
            stats.acquisitions += 1
            stats.wait_ns_total += wait_ns
            if was_holding:
                stats.wait_ns_while_holding += wait_ns
            if wait_ns > stats.max_wait_ns:
                stats.max_wait_ns = wait_ns

    def clear(self) -> None:
        with self.mutex:
            self.edges.clear()
            self.inversions.clear()
            self.stats.clear()


_REGISTRY = _Registry()
_HELD = threading.local()


def _held_stack() -> list[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack  # type: ignore[no-any-return]


class SanitizedLock:
    """A ``threading.Lock`` that reports its acquisition order.

    API-compatible with the subset of ``threading.Lock`` this codebase
    uses: the context-manager protocol plus explicit
    ``acquire``/``release``/``locked``.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str) -> None:
        self.name = name
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = list(_held_stack())
        _REGISTRY.record_acquire_intent(self.name, held)
        start = time.perf_counter_ns()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            wait_ns = time.perf_counter_ns() - start
            _REGISTRY.record_acquired(self.name, wait_ns, bool(held))
            _held_stack().append(self.name)
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        # Remove the most recent acquisition of this lock; out-of-order
        # releases (rare but legal) must not corrupt the held view.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == self.name:
                del stack[index]
                break
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "locked" if self._inner.locked() else "unlocked"
        return f"SanitizedLock({self.name!r}, {state})"


def enabled() -> bool:
    """True when ``REPRO_SANITIZE=1`` is set in the environment right now."""
    return os.environ.get(ENV_FLAG) == "1"


def create_lock(name: str) -> Union[threading.Lock, SanitizedLock]:
    """The lock the runtime classes construct ``self._lock`` through.

    Resolved at construction time: a plain ``threading.Lock`` normally, a
    :class:`SanitizedLock` when the sanitizer is enabled.  ``name`` is the
    owning class's dotted name, matching the static analysis' lock ids.
    """
    if enabled():
        return SanitizedLock(name)
    return threading.Lock()


def reset() -> None:
    """Drop every recorded edge, inversion, and statistic."""
    _REGISTRY.clear()


def inversions() -> tuple[Inversion, ...]:
    """Every inversion recorded since the last :func:`reset`."""
    with _REGISTRY.mutex:
        return tuple(_REGISTRY.inversions)


def order_edges() -> dict[tuple[str, str], str]:
    """The observed order edges ``(held, acquired) -> first witness thread``."""
    with _REGISTRY.mutex:
        return dict(_REGISTRY.edges)


def held_locks() -> tuple[str, ...]:
    """The sanitized locks the *current thread* holds, outermost first."""
    return tuple(_held_stack())


def report() -> dict[str, object]:
    """A snapshot for test teardown and CI logs."""
    with _REGISTRY.mutex:
        return {
            "enabled": enabled(),
            "locks": {
                name: {
                    "acquisitions": stats.acquisitions,
                    "wait_ns_total": stats.wait_ns_total,
                    "wait_ns_while_holding": stats.wait_ns_while_holding,
                    "max_wait_ns": stats.max_wait_ns,
                }
                for name, stats in sorted(_REGISTRY.stats.items())
            },
            "order_edges": sorted(
                f"{held} -> {acquired}" for held, acquired in _REGISTRY.edges
            ),
            "inversions": [inv.describe() for inv in _REGISTRY.inversions],
        }
