"""The lint engine: rule registry, per-file analysis state, and the runner.

The framework is deliberately small: a :class:`Rule` is a class with a
stable ``code``/``name``, a default path scope, and a ``check`` method
receiving one parsed :class:`ModuleInfo` (source, AST, pragma state).
Rules register themselves with :func:`register`; the :class:`Linter`
discovers files, parses each one exactly once, dispatches every in-scope
rule, and filters findings through the file's suppression pragmas
(:mod:`repro.tools.lint.pragmas`).

Three kinds of rule exist:

* **module rules** (the default) — run per Python file, scoped by
  ``default_paths`` glob patterns (repo-relative); explicit ``--rule``
  selection combined with explicit paths bypasses the scope, which is how
  the fixture tests exercise rules on files outside ``src/``;
* **program rules** (``program_level = True``) — run once per invocation
  against the whole-program view (:class:`repro.tools.lint.callgraph.Program`)
  built from every module parsed in the run; the interprocedural
  concurrency checks REP109–REP111 live here.  Their diagnostics are still
  filtered through the pragmas of the file each finding lands in;
* **repo rules** (``repo_level = True``) — run once per full-tree lint
  invocation against the repository root (the documentation reference
  checker folded in from :mod:`repro.tools.check_docs`).

The framework itself emits three synthetic diagnostics that no ``Rule``
class owns and no pragma can silence: REP100 *parse-error* for unparsable
sources, REP113 *unknown-pragma* for pragma tokens naming no registered
rule, and — when ``warn_unused_pragmas`` is set and the full battery ran —
REP112 *unused-pragma* for suppressions that suppressed nothing.
"""

from __future__ import annotations

import ast
import os
import pickle
import sys
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.pragmas import Suppressions, parse_suppressions

if TYPE_CHECKING:  # imported lazily at runtime: callgraph imports this module
    from repro.tools.lint.callgraph import Program

__all__ = [
    "ModuleInfo",
    "Rule",
    "Linter",
    "register",
    "all_rules",
    "resolve_rules",
    "find_repo_root",
]


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed Python source file, shared by every rule that checks it."""

    path: Path  #: absolute path on disk
    relpath: str  #: repo-relative posix path (absolute posix outside the repo)
    source: str  #: the raw source text
    tree: ast.Module  #: the parsed module
    suppressions: Suppressions  #: the file's ``repro-lint`` pragma state

    def lines(self) -> list[str]:
        """The source split into lines (1-based indexing is line - 1)."""
        return self.source.splitlines()


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check` (module
    rules) or :meth:`check_repo` (repo rules), yielding
    :class:`~repro.tools.lint.diagnostics.Diagnostic` objects.  Helper
    :meth:`diagnostic` fills in the rule's code and name.
    """

    #: stable machine code, ``REP1xx``
    code: str = "REP100"
    #: human-readable rule name used in pragmas and ``--rule``
    name: str = "abstract"
    #: one-line description shown by ``--list-rules``
    description: str = ""
    #: repo-relative glob patterns the rule applies to by default
    default_paths: tuple[str, ...] = ("src/**/*.py",)
    #: True for rules that run once per repository, not per module
    repo_level: bool = False
    #: True for rules that run once against the whole-program call graph
    program_level: bool = False

    def applies_to(self, relpath: str) -> bool:
        """True when ``relpath`` matches one of the rule's default globs."""
        return any(fnmatch(relpath, pattern) for pattern in self.default_paths)

    def check(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        """Yield findings for one module (module rules)."""
        return ()

    def check_repo(self, root: Path) -> Iterable[Diagnostic]:
        """Yield findings for the whole repository (repo rules)."""
        return ()

    def check_program(self, program: "Program") -> Iterable[Diagnostic]:
        """Yield findings for the whole program (program rules)."""
        return ()

    def diagnostic(
        self, module: ModuleInfo | None, node: ast.AST | None, message: str, path: str = ""
    ) -> Diagnostic:
        """Build a finding anchored at ``node`` (or the whole file)."""
        return Diagnostic(
            path=module.relpath if module is not None else path,
            line=getattr(node, "lineno", 0) if node is not None else 0,
            column=getattr(node, "col_offset", 0) if node is not None else 0,
            code=self.code,
            rule=self.name,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry (keyed by name)."""
    if cls.name in _REGISTRY:  # pragma: no cover - programming error guard
        raise ValueError(f"duplicate lint rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Every registered rule, keyed by name (importing the battery first)."""
    # The battery registers on import; importing here keeps `import
    # repro.tools.lint.framework` itself dependency-free.
    import repro.tools.lint.rules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def resolve_rules(names: Sequence[str] | None) -> list[Rule]:
    """Instantiate the selected rules (by name or ``REPxxx`` code); all when None."""
    registry = all_rules()
    if not names:
        return [cls() for cls in registry.values()]
    by_code = {cls.code: cls for cls in registry.values()}
    selected: list[Rule] = []
    for name in names:
        cls = registry.get(name) or by_code.get(name)
        if cls is None:
            known = ", ".join(sorted(registry))
            raise ValueError(f"unknown lint rule {name!r}; known rules: {known}")
        if cls not in (type(rule) for rule in selected):
            selected.append(cls())
    return selected


def find_repo_root(start: Path) -> Path:
    """The nearest ancestor containing ``pyproject.toml`` (else ``start``)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


#: Bump whenever the cached payload shape changes; stale-format caches are
#: silently discarded, never migrated.
_CACHE_VERSION = 1


class _ParseCache:
    """An on-disk AST cache keyed by ``(relpath, mtime_ns, size)``.

    Parsing dominates a repo-wide lint run (~110 files through
    ``ast.parse`` on every CI job); the AST of an unchanged file is fully
    determined by its bytes, so a ``(mtime_ns, size)``-validated pickle of
    the tree is safe to reuse.  Pragma state is *not* cached — it carries
    mutable usage recording — and neither is the source text, which each
    run re-reads anyway (a cheap read compared to the parse).

    The cache is a convenience, never a correctness dependency: any
    failure to load — missing file, foreign pickle, truncated write,
    version or interpreter skew — degrades to an empty cache, and saving
    goes through a same-directory temp file + ``os.replace`` so a killed
    run cannot leave a torn cache behind.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._entries: dict[str, tuple[int, int, bytes]] = {}
        self._load()

    def _load(self) -> None:
        try:
            with self.path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError):
            return  # no cache (or an unreadable one): start empty
        if not isinstance(payload, dict):
            return
        if payload.get("version") != _CACHE_VERSION:
            return
        if payload.get("python") != sys.version_info[:2]:
            return  # AST pickles do not migrate across interpreter minors
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, relpath: str, mtime_ns: int, size: int) -> ast.Module | None:
        """The cached tree for an unchanged file, else None."""
        entry = self._entries.get(relpath)
        if entry is None or entry[0] != mtime_ns or entry[1] != size:
            self.misses += 1
            return None
        try:
            tree = pickle.loads(entry[2])
        except (pickle.PickleError, EOFError, AttributeError):
            # A corrupt entry is indistinguishable from a stale one: drop
            # it and let the caller re-parse.
            del self._entries[relpath]
            self._dirty = True
            self.misses += 1
            return None
        if not isinstance(tree, ast.Module):
            del self._entries[relpath]
            self._dirty = True
            self.misses += 1
            return None
        self.hits += 1
        return tree

    def put(self, relpath: str, mtime_ns: int, size: int, tree: ast.Module) -> None:
        """Record a freshly parsed tree."""
        self._entries[relpath] = (mtime_ns, size, pickle.dumps(tree))
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "python": sys.version_info[:2],
            "entries": self._entries,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:
            # A read-only checkout must still lint; the cache just stays
            # cold for the next run.
            tmp.unlink(missing_ok=True)
            return
        self._dirty = False


class Linter:
    """Run a set of rules over a tree of files.

    Parameters
    ----------
    root:
        Repository root; rule scopes and diagnostic paths are relative to
        it.  Defaults to the nearest ancestor of the current directory
        containing ``pyproject.toml``.
    rules:
        Rule names/codes to run; all registered rules when None.
    force_scope:
        Bypass the rules' ``default_paths`` scoping — used when explicit
        rule selection is combined with explicit paths (fixture tests,
        ad-hoc single-file runs).
    warn_unused_pragmas:
        Report suppression pragmas that suppressed nothing (REP112).  Only
        meaningful when the full battery runs (``rules`` is None): with a
        rule subset, pragmas for unselected rules would always look
        unused, so the warning is silently skipped.
    parse_cache:
        Path of an on-disk AST cache keyed by ``(relpath, mtime_ns,
        size)`` (see :class:`_ParseCache`); None (the default) parses
        every file fresh.  The CLI passes ``<root>/.lint-cache.pkl``
        unless ``--no-parse-cache`` is given.
    """

    def __init__(
        self,
        root: Path | None = None,
        rules: Sequence[str] | None = None,
        force_scope: bool = False,
        warn_unused_pragmas: bool = False,
        parse_cache: Path | None = None,
    ) -> None:
        self.root = (root or find_repo_root(Path.cwd().resolve())).resolve()
        self.rules = resolve_rules(rules)
        self.force_scope = force_scope
        self.warn_unused_pragmas = warn_unused_pragmas and rules is None
        self._parse_cache = _ParseCache(parse_cache) if parse_cache is not None else None

    def parse_cache_stats(self) -> dict[str, int]:
        """Cache effectiveness counters (zeros when no cache is attached)."""
        if self._parse_cache is None:
            return {"hits": 0, "misses": 0}
        return {"hits": self._parse_cache.hits, "misses": self._parse_cache.misses}

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.resolve().as_posix()

    def _parse(self, path: Path) -> tuple[ModuleInfo | None, Diagnostic | None]:
        source = path.read_text(encoding="utf-8")
        relpath = self._relpath(path)
        stat = path.stat()
        cached = (
            self._parse_cache.get(relpath, stat.st_mtime_ns, stat.st_size)
            if self._parse_cache is not None
            else None
        )
        if cached is not None:
            return ModuleInfo(path, relpath, source, cached, parse_suppressions(source)), None
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return None, Diagnostic(
                path=relpath,
                line=exc.lineno or 0,
                column=exc.offset or 0,
                code="REP100",
                rule="parse-error",
                message=f"could not parse file: {exc.msg}",
            )
        if self._parse_cache is not None:
            self._parse_cache.put(relpath, stat.st_mtime_ns, stat.st_size, tree)
        return ModuleInfo(path, relpath, source, tree, parse_suppressions(source)), None

    def lint(self, paths: Sequence[Path] | None = None) -> list[Diagnostic]:
        """Lint the given files/directories (default: ``<root>/src``)."""
        explicit = paths is not None
        targets = [Path(p) for p in paths] if explicit else [self.root / "src"]
        module_rules = [
            rule for rule in self.rules if not (rule.repo_level or rule.program_level)
        ]
        program_rules = [rule for rule in self.rules if rule.program_level]
        repo_rules = [rule for rule in self.rules if rule.repo_level]
        diagnostics: list[Diagnostic] = []
        modules: list[ModuleInfo] = []
        for path in _iter_python_files(targets) if (module_rules or program_rules) else ():
            module, parse_error = self._parse(path)
            if parse_error is not None:
                diagnostics.append(parse_error)
                continue
            assert module is not None
            modules.append(module)
            for rule in module_rules:
                if not (self.force_scope or rule.applies_to(module.relpath)):
                    continue
                for diag in rule.check(module):
                    if not module.suppressions.is_suppressed(diag.rule, diag.code, diag.line):
                        diagnostics.append(diag)
        # Program rules see every module parsed in this invocation at once;
        # each finding is still filtered through the pragmas of its file.
        if program_rules and modules:
            from repro.tools.lint.callgraph import build_program

            program = build_program(modules)
            by_relpath = {module.relpath: module for module in modules}
            for rule in program_rules:
                for diag in rule.check_program(program):
                    owner = by_relpath.get(diag.path)
                    if owner is not None and owner.suppressions.is_suppressed(
                        diag.rule, diag.code, diag.line
                    ):
                        continue
                    diagnostics.append(diag)
        # Repo rules run on full-tree invocations (no explicit path list).
        if not explicit:
            for rule in repo_rules:
                diagnostics.extend(rule.check_repo(self.root))
        diagnostics.extend(self._pragma_audit(modules))
        if self._parse_cache is not None:
            self._parse_cache.save()
        return sorted(diagnostics)

    def _pragma_audit(self, modules: Sequence[ModuleInfo]) -> list[Diagnostic]:
        """Framework-emitted pragma diagnostics (REP112/REP113).

        Unknown rule ids are always errors: a pragma naming a rule that
        does not exist has never suppressed anything and silently rots.
        Unused pragmas are reported only on ``--warn-unused-pragmas`` full
        runs (see ``__init__``); usage is recorded as a side effect of the
        ``is_suppressed`` checks above, so this must run last.  Neither
        diagnostic can itself be suppressed by a pragma.
        """
        known = frozenset(
            token
            for cls in all_rules().values()
            for token in (cls.name, cls.code)
        )
        out: list[Diagnostic] = []
        for module in modules:
            unknown: set[tuple[int, str]] = set()
            for record, token in module.suppressions.unknown(known):
                unknown.add((record.line, token))
                out.append(
                    Diagnostic(
                        path=module.relpath,
                        line=record.line,
                        column=0,
                        code="REP113",
                        rule="unknown-pragma",
                        message=f"pragma names unknown lint rule {token!r}",
                    )
                )
            if not self.warn_unused_pragmas:
                continue
            for record, token in module.suppressions.unused():
                if (record.line, token) in unknown:
                    continue  # already an error above; one finding is enough
                out.append(
                    Diagnostic(
                        path=module.relpath,
                        line=record.line,
                        column=0,
                        code="REP112",
                        rule="unused-pragma",
                        message=(
                            f"suppression {record.directive}={token} matched no "
                            "diagnostic; delete the stale pragma"
                        ),
                    )
                )
        return out
