"""``repro.tools.lint`` — an AST-based invariant linter for this repository.

Five PRs of bug history showed that every serious correctness bug here
belongs to a recurring, mechanically checkable class: float arithmetic
where the paper demands exact Fractions, cache reads that skip the
mutation-generation probe, lifecycle state touched outside its lock,
unpicklable callables shipped to pool workers.  This package turns each of
those classes into a lint rule so refactors cannot silently reintroduce
them — see ``docs/invariants.md`` for the catalogue and
:mod:`repro.tools.lint.rules` for the battery.

Layout:

* :mod:`~repro.tools.lint.framework` — rule registry, per-file analysis
  state (:class:`~repro.tools.lint.framework.ModuleInfo`), the
  :class:`~repro.tools.lint.framework.Linter` runner;
* :mod:`~repro.tools.lint.rules` — the rule battery (REP101–REP108);
* :mod:`~repro.tools.lint.pragmas` — ``# repro-lint: disable=RULE``
  suppression comments;
* :mod:`~repro.tools.lint.diagnostics` — findings and text/JSON rendering;
* :mod:`~repro.tools.lint.cli` — the ``python -m repro.tools.lint``
  command line.
"""

from repro.tools.lint.cli import main
from repro.tools.lint.diagnostics import Diagnostic, render
from repro.tools.lint.framework import (
    Linter,
    ModuleInfo,
    Rule,
    all_rules,
    find_repo_root,
    register,
    resolve_rules,
)
from repro.tools.lint.pragmas import Suppressions, parse_suppressions

__all__ = [
    "Diagnostic",
    "Linter",
    "ModuleInfo",
    "Rule",
    "Suppressions",
    "all_rules",
    "find_repo_root",
    "main",
    "parse_suppressions",
    "register",
    "render",
    "resolve_rules",
]
