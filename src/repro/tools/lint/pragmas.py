"""Suppression pragmas: ``# repro-lint: disable=RULE`` comments.

Every invariant the linter enforces has deliberate, documented exceptions
(display formatting converts exact fractions to floats, a finalizer must
swallow late-interpreter errors, ...).  Those sites carry an explicit
pragma instead of weakening the rule:

* ``# repro-lint: disable=rule-name`` (trailing on the offending line, or
  on a comment-only line directly above it) suppresses the named rules —
  a comma-separated list of rule names or ``REPxxx`` codes — for that
  line;
* ``# repro-lint: disable-file=rule-name`` anywhere in the file suppresses
  the named rules for the whole file;
* ``disable=all`` / ``disable-file=all`` suppress every rule.

Comments are found with :mod:`tokenize`, so a ``#`` inside a string
literal never parses as a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["Suppressions", "parse_suppressions"]

_PRAGMA = re.compile(r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s-]+)")


class Suppressions:
    """The parsed suppression state of one source file."""

    __slots__ = ("_by_line", "_file_wide")

    def __init__(
        self, by_line: dict[int, frozenset[str]], file_wide: frozenset[str]
    ) -> None:
        self._by_line = by_line
        self._file_wide = file_wide

    def is_suppressed(self, rule: str, code: str, line: int) -> bool:
        """True when the rule (by name or code) is disabled on ``line``."""
        for scope in (self._file_wide, self._by_line.get(line, frozenset())):
            if "all" in scope or rule in scope or code in scope:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Suppressions(lines={sorted(self._by_line)}, file={sorted(self._file_wide)})"


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``repro-lint`` pragma from ``source``.

    A pragma on a comment-only line also covers the next line, so a long
    statement can carry its justification comment above it.  Unreadable
    source (tokenize errors) yields no suppressions — the caller will
    report the syntax error through other means.
    """
    by_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions({}, frozenset())
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        directive, names = match.groups()
        rules = {name.strip() for name in names.split(",") if name.strip()}
        if directive == "disable-file":
            file_wide |= rules
            continue
        line = token.start[0]
        by_line.setdefault(line, set()).update(rules)
        # A comment-only pragma line also covers the statement below it.
        if token.line[: token.start[1]].strip() == "":
            by_line.setdefault(line + 1, set()).update(rules)
    return Suppressions(
        {line: frozenset(rules) for line, rules in by_line.items()}, frozenset(file_wide)
    )
