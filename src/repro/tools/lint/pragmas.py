"""Suppression pragmas: ``# repro-lint: disable=RULE`` comments.

Every invariant the linter enforces has deliberate, documented exceptions
(display formatting converts exact fractions to floats, a finalizer must
swallow late-interpreter errors, ...).  Those sites carry an explicit
pragma instead of weakening the rule:

* ``# repro-lint: disable=rule-name`` (trailing on the offending line, or
  on a comment-only line directly above it) suppresses the named rules —
  a comma-separated list of rule names or ``REPxxx`` codes — for that
  line;
* ``# repro-lint: disable-file=rule-name`` anywhere in the file suppresses
  the named rules for the whole file;
* ``disable=all`` / ``disable-file=all`` suppress every rule.

Comments are found with :mod:`tokenize`, so a ``#`` inside a string
literal never parses as a pragma.

Pragmas are themselves linted.  Each parsed pragma is kept as a
:class:`PragmaRecord` that remembers which of its rule tokens actually
suppressed a diagnostic during the run; the framework turns the leftovers
into REP112 (*unused-pragma*, opt-in via ``--warn-unused-pragmas``, on in
CI) and tokens naming no registered rule into REP113 (*unknown-pragma*,
always on).  A suppression that suppresses nothing is a stale exception —
either the underlying violation was fixed (delete the pragma) or the rule
id is misspelled and the pragma never worked at all.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["PragmaRecord", "Suppressions", "parse_suppressions"]

_PRAGMA = re.compile(r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s-]+)")


@dataclass
class PragmaRecord:
    """One ``repro-lint`` pragma comment, with per-token usage tracking."""

    line: int  #: source line of the pragma comment itself
    directive: str  #: ``"disable"`` or ``"disable-file"``
    tokens: tuple[str, ...]  #: rule names/codes exactly as written
    used: set[str] = field(default_factory=set)  #: tokens that suppressed a finding


class Suppressions:
    """The parsed suppression state of one source file."""

    __slots__ = ("records", "_by_line", "_file_wide")

    def __init__(
        self,
        records: tuple[PragmaRecord, ...],
        by_line: dict[int, list[tuple[PragmaRecord, str]]],
        file_wide: list[tuple[PragmaRecord, str]],
    ) -> None:
        self.records = records
        self._by_line = by_line
        self._file_wide = file_wide

    def is_suppressed(self, rule: str, code: str, line: int) -> bool:
        """True when the rule (by name or code) is disabled on ``line``.

        Every pragma token that matches is marked used — a finding covered
        by both a trailing pragma and a file-wide one keeps both alive.
        """
        hit = False
        for record, token in (*self._file_wide, *self._by_line.get(line, ())):
            if token == "all" or token == rule or token == code:
                record.used.add(token)
                hit = True
        return hit

    def unused(self) -> Iterator[tuple[PragmaRecord, str]]:
        """``(record, token)`` pairs that suppressed nothing this run."""
        for record in self.records:
            for token in record.tokens:
                if token not in record.used:
                    yield record, token

    def unknown(self, known: frozenset[str]) -> Iterator[tuple[PragmaRecord, str]]:
        """``(record, token)`` pairs naming no registered rule or code."""
        for record in self.records:
            for token in record.tokens:
                if token != "all" and token not in known:
                    yield record, token

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Suppressions(lines={sorted(self._by_line)}, "
            f"file={sorted(token for _, token in self._file_wide)})"
        )


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``repro-lint`` pragma from ``source``.

    A pragma on a comment-only line also covers the next line, so a long
    statement can carry its justification comment above it.  Unreadable
    source (tokenize errors) yields no suppressions — the caller will
    report the syntax error through other means.
    """
    records: list[PragmaRecord] = []
    by_line: dict[int, list[tuple[PragmaRecord, str]]] = {}
    file_wide: list[tuple[PragmaRecord, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions((), {}, [])
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        directive, names = match.groups()
        rules = tuple(
            dict.fromkeys(name.strip() for name in names.split(",") if name.strip())
        )
        if not rules:
            continue
        record = PragmaRecord(line=token.start[0], directive=directive, tokens=rules)
        records.append(record)
        entries = [(record, rule) for rule in rules]
        if directive == "disable-file":
            file_wide.extend(entries)
            continue
        line = token.start[0]
        by_line.setdefault(line, []).extend(entries)
        # A comment-only pragma line also covers the statement below it.
        if token.line[: token.start[1]].strip() == "":
            by_line.setdefault(line + 1, []).extend(entries)
    return Suppressions(tuple(records), by_line, file_wide)
