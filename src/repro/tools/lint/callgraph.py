"""Whole-program symbol table and call graph for the lint battery.

The per-file rules (REP101–REP107) see one module at a time, but the bug
class that kept recurring — unlocked counter bumps, torn telemetry — is
*interprocedural*: a ``with self._lock:`` block in one module calls into
another module, and whether that call blocks, mutates shared state, or
acquires a second lock is invisible to any per-file AST rule.  This module
builds the repo-wide view those checks need from the already-parsed
:class:`~repro.tools.lint.framework.ModuleInfo` set:

* a **symbol table** — every class, method, module-level and nested
  function, keyed by a stable qualname (``module:Class.method`` /
  ``module:func`` / ``module:outer.<locals>.inner``), plus each module's
  import aliases;
* conservative **type inference** for call receivers: ``self``, parameters
  with annotations naming program classes, locals assigned from a
  constructor call, ``self.attr`` values assigned in ``__init__``, and the
  return annotations of resolved program calls.  A handful of stdlib
  concurrency types (``threading.Thread``, ``queue.Queue``,
  ``multiprocessing.pool.Pool``, ...) are tracked as opaque markers so the
  blocking-call classifier can tell ``thread.join()`` from ``str.join()``;
* a **call graph** — for every function, the resolved callee candidates of
  each call site, annotated with the set of locks held *lexically* at the
  site (``with self._lock:`` regions of lock-owning classes) and with a
  blocking-primitive classification where the call itself blocks;
* **lock and mutation facts** — which classes own a ``self._lock``
  (assigned in ``__init__``), which ``__init__``-declared attributes form
  their guarded state (the REP102 notion), and every mutation site of that
  state with the locks lexically held there;
* **transitive queries** — :meth:`Program.may_acquire` (which locks a call
  can end up taking) and :meth:`Program.blocking_witness` (a sample path to
  a blocking primitive), the two reachability facts REP109/REP110 are
  built on, plus the raw graph REP111 walks from thread entry points;
* the **async domain** — ``async def`` coroutines (:attr:`FunctionInfo.is_async`),
  ``await`` edges (:attr:`CallSite.awaited`), task-spawn sites
  (``create_task`` / ``ensure_future`` / ``gather``, in
  :attr:`FunctionInfo.task_spawns` and :meth:`Program.task_entry_points`),
  ``async with`` / ``async for`` regions
  (:attr:`FunctionInfo.async_regions`), and executor escapes
  (``asyncio.to_thread`` / ``loop.run_in_executor`` spawn *thread* entry
  points, and — because they receive function references, not calls — they
  contribute no call edge, so handing work to an executor inherently cuts
  any on-loop blocking path).  :meth:`Program.loop_blocking_witness` is the
  event-loop variant of :meth:`Program.blocking_witness` REP114 is built
  on: ``await`` sites yield the loop and async callees run as their own
  tasks, so both stop the descent.  The typed-stdlib markers distinguish
  the async primitives from their thread-blocking namesakes
  (``asyncio.Queue.get`` is a coroutine; ``queue.Queue.get`` blocks).

Everything here is deliberately *under*-approximate where Python defeats
static resolution (``getattr``, untyped receivers, closures): an
unresolvable call simply contributes no edges.  The rules built on top are
therefore quiet-by-construction on dynamic code and precise on the typed,
conventional code this repository is written in — the same trade the
per-file rules make.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.tools.lint.astutil import is_self_attr, self_attr_base
from repro.tools.lint.framework import ModuleInfo

__all__ = [
    "BLOCKING_POOL_DISPATCH",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LoopWitness",
    "MutationSite",
    "SEMAPHORE_MARKERS",
    "Program",
    "build_program",
    "module_name_for",
]

#: Container methods that mutate their receiver (the REP102 set).
MUTATING_METHODS = frozenset(
    {
        "pop", "popitem", "clear", "update", "setdefault", "append", "extend",
        "insert", "remove", "discard", "add", "move_to_end",
        "__setitem__", "__delitem__",
    }
)

#: Attribute names that dispatch work to a multiprocessing pool.  ``apply``
#: is deliberately absent (``Instantiation.apply`` is a hot mining call);
#: the async variants block on result collection, not submission, but a
#: dispatch under a lock is wrong either way.
BLOCKING_POOL_DISPATCH = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "apply_async", "map_async", "starmap_async"}
)

#: Dotted stdlib callables that block the calling thread outright.
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "asyncio.run",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
    }
)

#: File-I/O method names distinctive enough to match without receiver types.
BLOCKING_FILE_METHODS = frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})

#: Stdlib concurrency types tracked as opaque type markers.  Keys are the
#: canonical dotted names (what the import map resolves an annotation or a
#: constructor call to); values are the marker stored in type sets.
_STDLIB_TYPES = {
    "threading.Thread": "stdlib:Thread",
    "queue.Queue": "stdlib:Queue",
    "queue.LifoQueue": "stdlib:Queue",
    "queue.PriorityQueue": "stdlib:Queue",
    "queue.SimpleQueue": "stdlib:Queue",
    "multiprocessing.Queue": "stdlib:Queue",
    "multiprocessing.pool.Pool": "stdlib:Pool",
    "multiprocessing.Pool": "stdlib:Pool",
    # Thread-blocking synchronization primitives and their asyncio
    # namesakes get *distinct* markers: `threading.Semaphore.acquire`
    # stalls the calling thread, `asyncio.Semaphore.acquire` is a
    # coroutine that yields the loop — same method name, opposite
    # blocking behavior, exactly the `dict.get` vs `Queue.get` aliasing
    # problem the typed markers exist to prevent.
    "threading.Semaphore": "stdlib:Semaphore",
    "threading.BoundedSemaphore": "stdlib:Semaphore",
    "threading.Event": "stdlib:Event",
    "asyncio.Semaphore": "stdlib:AsyncSemaphore",
    "asyncio.BoundedSemaphore": "stdlib:AsyncSemaphore",
    "asyncio.Event": "stdlib:AsyncEvent",
    "asyncio.Queue": "stdlib:AsyncQueue",
}

#: Marker methods that block: ``marker -> frozenset(method names)``.
#: The async markers (`stdlib:AsyncSemaphore` / `stdlib:AsyncEvent` /
#: `stdlib:AsyncQueue`) deliberately have no entry — their waits are
#: coroutines, not thread blocks.
_STDLIB_BLOCKING_METHODS = {
    "stdlib:Thread": frozenset({"join"}),
    "stdlib:Queue": frozenset({"get", "put", "join"}),
    "stdlib:Pool": frozenset({"join"}) | BLOCKING_POOL_DISPATCH,
    "stdlib:Semaphore": frozenset({"acquire"}),
    "stdlib:Event": frozenset({"wait"}),
}

#: Marker types whose ``acquire``/``try_acquire`` grants must be paired
#: with a ``release`` (the REP115 stdlib resources).
SEMAPHORE_MARKERS = frozenset({"stdlib:Semaphore", "stdlib:AsyncSemaphore"})


@dataclass(frozen=True)
class CallSite:
    """One resolved call expression inside a function body."""

    node: ast.Call  #: the call expression
    callees: tuple[str, ...]  #: resolved program-function qualnames (may be empty)
    held: frozenset[str]  #: lock ids (class qualnames) held lexically here
    blocking: str | None  #: human-readable blocking descriptor, if the call blocks
    awaited: bool = False  #: the call is directly under an ``await``
    #: the call is a ``with`` / ``async with`` item's context expression
    context_manager: bool = False
    receiver: str | None = None  #: dotted receiver of an attribute call (``self._sem``)
    #: inferred receiver types of an attribute call (class qualnames / markers)
    receiver_types: frozenset[str] = frozenset()


@dataclass(frozen=True)
class LoopWitness:
    """A sample path from a coroutine to a thread-blocking operation.

    ``chain`` starts at the queried function; ``node`` is the offending
    call expression *in the queried function* (what a diagnostic anchors
    to); ``descriptor`` names the blocking primitive at the chain's end.
    """

    chain: tuple[str, ...]
    descriptor: str
    node: ast.AST


@dataclass(frozen=True)
class MutationSite:
    """One mutation of a lock-owning class's guarded attribute."""

    node: ast.AST  #: the assignment / delete / mutating call
    attr: str  #: the guarded ``self.<attr>`` being mutated
    owner: str  #: lock id (class qualname) owning the attribute
    held: frozenset[str]  #: lock ids held lexically at the mutation


@dataclass
class FunctionInfo:
    """One function or method of the program."""

    qualname: str
    module: str
    relpath: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: "ClassInfo | None" = None
    calls: list[CallSite] = field(default_factory=list)
    mutations: list[MutationSite] = field(default_factory=list)
    #: lock ids this function acquires lexically (its own ``with self._lock:``).
    acquired: frozenset[str] = frozenset()
    #: callables this function hands to another thread/process, resolved to
    #: qualnames: ``(kind, qualname, node)`` — the REP111 entry points.
    spawns: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    #: coroutines this function schedules on the running loop:
    #: ``(kind, qualname-or-"?", node)`` with kind one of ``create_task`` /
    #: ``ensure_future`` / ``gather``.  Kept separate from :attr:`spawns`:
    #: loop tasks run on the *same* thread, so they are not REP111 thread
    #: entry points — they are the REP116 drop sites.
    task_spawns: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    #: ``async with`` / ``async for`` regions of this function:
    #: ``(kind, dotted-context-or-None, node)`` with kind ``"with"`` /
    #: ``"for"`` — the REP115 structured acquire/release evidence.
    async_regions: list[tuple[str, str | None, ast.AST]] = field(default_factory=list)

    @property
    def is_async(self) -> bool:
        """True for ``async def`` functions (coroutines and async generators)."""
        return isinstance(self.node, ast.AsyncFunctionDef)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FunctionInfo({self.qualname}, {len(self.calls)} calls)"


@dataclass
class ClassInfo:
    """One class of the program; its qualname doubles as its lock id."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...] = ()  #: base-class expressions as dotted strings
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    owns_lock: bool = False  #: ``__init__`` assigns ``self._lock``
    guarded: frozenset[str] = frozenset()  #: init-declared attrs (minus the lock)
    #: attribute name -> candidate type names (class qualnames / stdlib markers)
    attr_types: dict[str, frozenset[str]] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClassInfo({self.qualname}, lock={self.owns_lock})"


def module_name_for(relpath: str) -> str:
    """The dotted module name of a repo-relative path.

    ``src/repro/datalog/lifecycle.py`` → ``repro.datalog.lifecycle``;
    package ``__init__`` files name the package; fixture files outside a
    ``src`` layout name themselves (``a.py`` → ``a``), which is what makes
    cross-module imports inside a fixture directory resolvable.
    """
    parts = list(relpath.rsplit(".py", 1)[0].split("/"))
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or relpath


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (None when dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_names(node: ast.expr | None) -> Iterator[str]:
    """Every plain dotted name mentioned by a type annotation.

    Handles ``X``, ``m.X``, ``"X"`` string annotations, ``Optional[X]``,
    ``Union[X, Y]``, ``X | Y`` and subscripted containers (yielding the
    subscript arguments too, so ``list[X]`` still surfaces ``X``; the
    resolver simply ignores names that are not program classes).
    """
    if node is None:
        return
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = _dotted(node)
        if dotted is not None:
            yield dotted
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _annotation_names(node.left)
        yield from _annotation_names(node.right)
        return
    if isinstance(node, ast.Subscript):
        yield from _annotation_names(node.value)
        if isinstance(node.slice, ast.Tuple):
            for element in node.slice.elts:
                yield from _annotation_names(element)
        else:
            yield from _annotation_names(node.slice)


class _Module:
    """Per-module symbol scope: imports, classes, functions."""

    def __init__(self, info: ModuleInfo, name: str) -> None:
        self.info = info
        self.name = name
        self.imports: dict[str, str] = {}  # local alias -> dotted target
        self.classes: dict[str, ClassInfo] = {}  # local name -> class
        self.functions: dict[str, FunctionInfo] = {}  # local name -> function


class Program:
    """The whole-program view: modules, classes, functions, and reachability."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self._modules: dict[str, _Module] = {}
        self.module_infos: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._may_acquire: dict[str, frozenset[str]] | None = None
        self._acquire_step: dict[str, dict[str, tuple[str | None, ast.AST]]] = {}
        self._blocking_memo: dict[str, tuple[tuple[str, ...], str] | None] = {}
        self._loop_blocking_memo: dict[tuple[str, frozenset[str]], LoopWitness | None] = {}
        for info in modules:
            name = module_name_for(info.relpath)
            self._modules[name] = _Module(info, name)
            self.module_infos[info.relpath] = info
        for module in self._modules.values():
            _collect_symbols(self, module)
        # Attribute types need two passes: `self._atoms = self.store.section(...)`
        # types through `self.store`, which an earlier statement assigned.
        for _ in range(2):
            for module in self._modules.values():
                for cls in module.classes.values():
                    _infer_class_attr_types(self, module, cls)
        for module in self._modules.values():
            _analyze_bodies(self, module)

    # ------------------------------------------------------------------
    # symbol resolution
    # ------------------------------------------------------------------
    def module(self, name: str) -> _Module | None:
        return self._modules.get(name)

    def module_of(self, info_or_relpath: ModuleInfo | str) -> _Module | None:
        relpath = (
            info_or_relpath if isinstance(info_or_relpath, str) else info_or_relpath.relpath
        )
        return self._modules.get(module_name_for(relpath))

    def resolve_dotted(self, dotted: str) -> "ClassInfo | FunctionInfo | _Module | None":
        """A dotted path to a program module, class, function or method."""
        parts = dotted.split(".")
        for split in range(len(parts), 0, -1):
            module = self._modules.get(".".join(parts[:split]))
            if module is None:
                continue
            rest = parts[split:]
            if not rest:
                return module
            head = rest[0]
            symbol: ClassInfo | FunctionInfo | None
            symbol = module.classes.get(head) or module.functions.get(head)
            if symbol is None:
                # Re-exported name: follow the module's own import alias.
                target = module.imports.get(head)
                if target is not None and target != dotted:
                    forwarded = self.resolve_dotted(".".join([target, *rest[1:]]))
                    if isinstance(forwarded, (ClassInfo, FunctionInfo)):
                        return forwarded
                return None
            if len(rest) == 1:
                return symbol
            if isinstance(symbol, ClassInfo) and len(rest) == 2:
                return self.lookup_method(symbol, rest[1])
            return None
        return None

    def resolve_local(
        self, module: _Module, name: str
    ) -> "ClassInfo | FunctionInfo | _Module | None":
        """A bare name in module scope: local symbol, else import alias."""
        symbol: ClassInfo | FunctionInfo | _Module | None
        symbol = module.classes.get(name) or module.functions.get(name)
        if symbol is not None:
            return symbol
        target = module.imports.get(name)
        if target is not None:
            return self.resolve_dotted(target)
        return None

    def lookup_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """A method by name, searching resolvable program base classes too."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            method = current.methods.get(name)
            if method is not None:
                return method
            module = self._modules.get(current.module)
            for base in current.bases:
                resolved = (
                    self.resolve_local(module, base)
                    if module is not None and "." not in base
                    else self.resolve_dotted(base)
                )
                if isinstance(resolved, ClassInfo):
                    stack.append(resolved)
        return None

    def class_attr_types(self, cls: ClassInfo, attr: str) -> frozenset[str]:
        """Candidate types of ``self.<attr>``, searching program bases."""
        seen: set[str] = set()
        stack = [cls]
        out: set[str] = set()
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            out |= current.attr_types.get(attr, frozenset())
            module = self._modules.get(current.module)
            if module is not None:
                for base in current.bases:
                    resolved = self.resolve_local(module, base)
                    if isinstance(resolved, ClassInfo):
                        stack.append(resolved)
        return frozenset(out)

    # ------------------------------------------------------------------
    # transitive queries
    # ------------------------------------------------------------------
    def may_acquire(self, qualname: str) -> frozenset[str]:
        """Lock ids the function may take, directly or through any callee."""
        if self._may_acquire is None:
            self._compute_may_acquire()
        assert self._may_acquire is not None
        return self._may_acquire.get(qualname, frozenset())

    def _compute_may_acquire(self) -> None:
        result = {name: set(fn.acquired) for name, fn in self.functions.items()}
        step: dict[str, dict[str, tuple[str | None, ast.AST]]] = {
            name: {lock: (None, fn.node) for lock in fn.acquired}
            for name, fn in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for name, fn in self.functions.items():
                for site in fn.calls:
                    for callee in site.callees:
                        for lock in result.get(callee, ()):
                            if lock not in result[name]:
                                result[name].add(lock)
                                step[name][lock] = (callee, site.node)
                                changed = True
        self._may_acquire = {name: frozenset(locks) for name, locks in result.items()}
        self._acquire_step = step

    def acquire_path(self, qualname: str, lock: str) -> list[str]:
        """A sample call chain from the function to an acquisition of ``lock``."""
        if self._may_acquire is None:
            self._compute_may_acquire()
        path = [qualname]
        current: str | None = qualname
        for _ in range(len(self.functions) + 1):
            if current is None:
                break
            entry = self._acquire_step.get(current, {}).get(lock)
            if entry is None:
                break
            current = entry[0]
            if current is None:
                break
            path.append(current)
        return path

    def blocking_witness(self, qualname: str) -> tuple[tuple[str, ...], str] | None:
        """A sample ``(call chain, descriptor)`` reaching a blocking primitive.

        Returns None when no blocking operation is statically reachable from
        the function.  Cycles are cut conservatively (a recursive path is
        not itself evidence of blocking).
        """
        return self._blocking_dfs(qualname, set())

    def _blocking_dfs(
        self, qualname: str, stack: set[str]
    ) -> tuple[tuple[str, ...], str] | None:
        if qualname in self._blocking_memo:
            return self._blocking_memo[qualname]
        if qualname in stack:
            return None
        fn = self.functions.get(qualname)
        if fn is None:
            return None
        stack.add(qualname)
        witness: tuple[tuple[str, ...], str] | None = None
        for site in fn.calls:
            if site.blocking is not None:
                witness = ((qualname,), site.blocking)
                break
        if witness is None:
            for site in fn.calls:
                for callee in site.callees:
                    deeper = self._blocking_dfs(callee, stack)
                    if deeper is not None:
                        witness = ((qualname, *deeper[0]), deeper[1])
                        break
                if witness is not None:
                    break
        stack.discard(qualname)
        self._blocking_memo[qualname] = witness
        return witness

    def loop_blocking_witness(
        self, qualname: str, heavy: frozenset[str] = frozenset()
    ) -> LoopWitness | None:
        """A sample path by which running ``qualname`` on the event loop blocks it.

        The event-loop variant of :meth:`blocking_witness` (the REP114
        query).  The descent models what actually executes on the loop
        thread:

        * ``await`` sites yield the loop, so awaited calls are never a
          blocking step themselves;
        * ``async def`` callees run as their own tasks and are analyzed at
          their own definition, so the descent stops at them (a blocking
          call inside an awaited coroutine is that coroutine's finding,
          not every caller's);
        * executor escapes (``asyncio.to_thread(fn, ...)`` /
          ``loop.run_in_executor(None, fn)``) pass function *references*,
          which contribute no call edge — handing work to an executor
          inherently cuts the path;
        * calls resolving into ``heavy`` — qualnames of synchronous
          heavy-compute surfaces like ``MetaqueryEngine.find_rules`` —
          count as blocking even though they touch no blocking primitive:
          a multi-second pure-Python mine stalls the loop just as surely
          as ``time.sleep``.

        Returns None when nothing thread-blocking is statically reachable.
        Cycles are cut conservatively, like :meth:`blocking_witness`.
        """
        return self._loop_blocking_dfs(qualname, heavy, set())

    def _loop_blocking_dfs(
        self, qualname: str, heavy: frozenset[str], stack: set[str]
    ) -> LoopWitness | None:
        key = (qualname, heavy)
        if key in self._loop_blocking_memo:
            return self._loop_blocking_memo[key]
        if qualname in stack:
            return None
        fn = self.functions.get(qualname)
        if fn is None:
            return None
        stack.add(qualname)
        witness: LoopWitness | None = None
        for site in fn.calls:
            if site.awaited:
                continue
            if site.blocking is not None:
                witness = LoopWitness((qualname,), site.blocking, site.node)
                break
        if witness is None:
            for site in fn.calls:
                if site.awaited:
                    continue
                for callee in site.callees:
                    if callee in heavy:
                        name = callee.split(":", 1)[-1]
                        witness = LoopWitness(
                            (qualname, callee),
                            f"synchronous engine compute {name}()",
                            site.node,
                        )
                        break
                    target = self.functions.get(callee)
                    if target is not None and target.is_async:
                        continue
                    deeper = self._loop_blocking_dfs(callee, heavy, stack)
                    if deeper is not None:
                        witness = LoopWitness(
                            (qualname, *deeper.chain), deeper.descriptor, site.node
                        )
                        break
                if witness is not None:
                    break
        stack.discard(qualname)
        self._loop_blocking_memo[key] = witness
        return witness

    # ------------------------------------------------------------------
    def lock_owners(self) -> list[ClassInfo]:
        """Every class whose ``__init__`` binds ``self._lock``."""
        return [cls for cls in self.classes.values() if cls.owns_lock]

    def entry_points(self) -> list[tuple[str, str, str, ast.AST]]:
        """Thread/process entry points: ``(kind, spawner, target, node)``."""
        out = []
        for fn in self.functions.values():
            for kind, target, node in fn.spawns:
                out.append((kind, fn.qualname, target, node))
        return out

    def task_entry_points(self) -> list[tuple[str, str, str, ast.AST]]:
        """Event-loop task-spawn sites: ``(kind, spawner, target, node)``.

        The loop-domain mirror of :meth:`entry_points`: coroutines handed
        to ``create_task`` / ``ensure_future`` / ``gather``.  ``target`` is
        ``"?"`` when the spawned awaitable is not a resolvable program
        coroutine call (e.g. ``ensure_future(asyncio.to_thread(fn))``).
        These run on the *same* thread as their spawner, so they are
        deliberately not REP111 thread entry points.
        """
        out = []
        for fn in self.functions.values():
            for kind, target, node in fn.task_spawns:
                out.append((kind, fn.qualname, target, node))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Program({len(self._modules)} modules, {len(self.classes)} classes, "
            f"{len(self.functions)} functions)"
        )


def build_program(modules: Sequence[ModuleInfo]) -> Program:
    """Build the whole-program view from parsed modules."""
    return Program(modules)


# ----------------------------------------------------------------------
# pass 1: symbols
# ----------------------------------------------------------------------
def _collect_symbols(program: Program, module: _Module) -> None:
    for node in module.info.tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    module.imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative imports: resolve against this package
                base_parts = module.name.split(".")
                # ``from . import x`` inside package module a.b: level 1 strips
                # the module's own basename; __init__ modules already name the
                # package, which the same arithmetic handles.
                prefix = base_parts[: len(base_parts) - node.level]
                source = ".".join(prefix + ([node.module] if node.module else []))
            else:
                source = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                module.imports[alias.asname or alias.name] = f"{source}.{alias.name}"
        elif isinstance(node, ast.ClassDef):
            _collect_class(program, module, node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _collect_function(program, module, node, prefix="", cls=None)


def _collect_class(program: Program, module: _Module, node: ast.ClassDef) -> None:
    qualname = f"{module.name}:{node.name}"
    bases = tuple(b for b in (_dotted(base) for base in node.bases) if b is not None)
    cls = ClassInfo(qualname=qualname, module=module.name, name=node.name, node=node, bases=bases)
    module.classes[node.name] = cls
    program.classes[qualname] = cls
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _collect_function(program, module, stmt, prefix=f"{node.name}.", cls=cls)
            cls.methods[stmt.name] = fn
    init = cls.methods.get("__init__")
    if init is not None:
        guarded: set[str] = set()
        owns = False
        for sub in ast.walk(init.node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    base = self_attr_base(target)
                    if base == "_lock":
                        owns = True
                    elif base is not None:
                        guarded.add(base)
        cls.owns_lock = owns
        cls.guarded = frozenset(guarded)


def _collect_function(
    program: Program,
    module: _Module,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    prefix: str,
    cls: ClassInfo | None,
) -> FunctionInfo:
    qualname = f"{module.name}:{prefix}{node.name}"
    fn = FunctionInfo(
        qualname=qualname,
        module=module.name,
        relpath=module.info.relpath,
        name=node.name,
        node=node,
        cls=cls,
    )
    program.functions[qualname] = fn
    if not prefix:
        module.functions[node.name] = fn
    # Nested defs become their own functions (``produce`` handed to a worker
    # thread); they resolve by name from the enclosing body.
    for stmt in ast.walk(node):
        if stmt is node:
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if getattr(stmt, "_repro_collected", False):
                continue
            stmt._repro_collected = True  # type: ignore[attr-defined]
            # Closures inherit the enclosing class so `self` captured from a
            # method body still types; they do NOT inherit lexical lock state.
            _collect_function(
                program, module, stmt, prefix=f"{prefix}{node.name}.<locals>.", cls=cls
            )
    return fn


# ----------------------------------------------------------------------
# pass 2: attribute types
# ----------------------------------------------------------------------
def _resolve_type_name(program: Program, module: _Module, dotted: str) -> str | None:
    """A dotted annotation/constructor name to a class qualname or stdlib marker."""
    head = dotted.split(".")[0]
    target = module.imports.get(head)
    canonical = dotted if target is None else ".".join([target, *dotted.split(".")[1:]])
    if canonical in _STDLIB_TYPES:
        return _STDLIB_TYPES[canonical]
    resolved = (
        program.resolve_local(module, dotted) if "." not in dotted else program.resolve_dotted(canonical)
    )
    if isinstance(resolved, ClassInfo):
        return resolved.qualname
    return None


def _types_from_annotation(
    program: Program, module: _Module, annotation: ast.expr | None
) -> frozenset[str]:
    out = set()
    for name in _annotation_names(annotation):
        resolved = _resolve_type_name(program, module, name)
        if resolved is not None:
            out.add(resolved)
    return frozenset(out)


class _Env:
    """A function's flow-insensitive local type environment."""

    def __init__(self, program: Program, module: _Module, cls: ClassInfo | None) -> None:
        self.program = program
        self.module = module
        self.cls = cls
        self.locals: dict[str, frozenset[str]] = {}

    def infer(self, expr: ast.expr) -> frozenset[str]:
        """Candidate types of an expression (class qualnames / stdlib markers)."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return frozenset({self.cls.qualname})
            return self.locals.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            base_types = self.infer(expr.value)
            out: set[str] = set()
            for candidate in base_types:
                cls = self.program.classes.get(candidate)
                if cls is not None:
                    out |= self.program.class_attr_types(cls, expr.attr)
            return frozenset(out)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr)
        if isinstance(expr, ast.IfExp):
            return self.infer(expr.body) | self.infer(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            out = set()
            for value in expr.values:
                out |= self.infer(value)
            return frozenset(out)
        if isinstance(expr, ast.NamedExpr):
            return self.infer(expr.value)
        if isinstance(expr, ast.Await):
            return self.infer(expr.value)
        return frozenset()

    def _infer_call(self, call: ast.Call) -> frozenset[str]:
        target = self.resolve_callable(call.func)
        if isinstance(target, ClassInfo):
            return frozenset({target.qualname})
        if isinstance(target, FunctionInfo):
            callee_module = self.program.module(target.module)
            if callee_module is not None:
                return _types_from_annotation(
                    self.program, callee_module, target.node.returns
                )
            return frozenset()
        # Stdlib constructor (threading.Thread(...), queue.Queue(...)).
        dotted = _dotted(call.func)
        if dotted is not None:
            marker = _resolve_type_name(self.program, self.module, dotted)
            if marker is not None and marker.startswith("stdlib:"):
                return frozenset({marker})
        return frozenset()

    def resolve_callable(
        self, func: ast.expr
    ) -> "ClassInfo | FunctionInfo | None":
        """Resolve a call/reference expression to a program class or function."""
        if isinstance(func, ast.Name):
            resolved = self.program.resolve_local(self.module, func.id)
            if isinstance(resolved, (ClassInfo, FunctionInfo)):
                return resolved
            return None
        if isinstance(func, ast.Attribute):
            # 1. a typed receiver's method
            receiver_types = self.infer(func.value)
            for candidate in receiver_types:
                cls = self.program.classes.get(candidate)
                if cls is not None:
                    method = self.program.lookup_method(cls, func.attr)
                    if method is not None:
                        return method
            # 2. a dotted module path (possibly through import aliases)
            dotted = _dotted(func)
            if dotted is not None:
                head = dotted.split(".")[0]
                target = self.module.imports.get(head)
                canonical = (
                    dotted if target is None else ".".join([target, *dotted.split(".")[1:]])
                )
                resolved = self.program.resolve_dotted(canonical)
                if isinstance(resolved, (ClassInfo, FunctionInfo)):
                    return resolved
        return None


def _build_env(
    program: Program,
    module: _Module,
    fn: FunctionInfo,
) -> _Env:
    env = _Env(program, module, fn.cls)
    args = fn.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "self":
            continue
        types = _types_from_annotation(program, module, arg.annotation)
        if types:
            env.locals[arg.arg] = types
    # Two flow-insensitive passes so a local assigned from an earlier local
    # still types (`pool = self._pool` after `self._pool = ...`).
    for _ in range(2):
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign):
                types = env.infer(stmt.value)
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and types:
                        env.locals[target.id] = env.locals.get(target.id, frozenset()) | types
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                types = _types_from_annotation(program, module, stmt.annotation)
                if stmt.value is not None:
                    types |= env.infer(stmt.value)
                if types:
                    env.locals[stmt.target.id] = (
                        env.locals.get(stmt.target.id, frozenset()) | types
                    )
    return env


def _infer_class_attr_types(program: Program, module: _Module, cls: ClassInfo) -> None:
    init = cls.methods.get("__init__")
    # Class-level annotations type attributes too (dataclass fields).
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            types = _types_from_annotation(program, module, stmt.annotation)
            if types:
                cls.attr_types[stmt.target.id] = (
                    cls.attr_types.get(stmt.target.id, frozenset()) | types
                )
    if init is None:
        return
    env = _build_env(program, module, init)
    for stmt in ast.walk(init.node):
        if isinstance(stmt, ast.Assign):
            types = env.infer(stmt.value)
            for target in stmt.targets:
                base = self_attr_base(target)
                if base is not None and isinstance(target, ast.Attribute) and types:
                    cls.attr_types[base] = cls.attr_types.get(base, frozenset()) | types
        elif isinstance(stmt, ast.AnnAssign):
            base = self_attr_base(stmt.target)
            if base is not None and isinstance(stmt.target, ast.Attribute):
                types = _types_from_annotation(program, module, stmt.annotation)
                if stmt.value is not None:
                    types |= env.infer(stmt.value)
                if types:
                    cls.attr_types[base] = cls.attr_types.get(base, frozenset()) | types


# ----------------------------------------------------------------------
# pass 3: bodies (calls, locks, mutations, blocking, spawns)
# ----------------------------------------------------------------------
#: Call-expression shapes that hand their argument to another thread/process.
_SPAWN_DOTTED = {"asyncio.to_thread": "to_thread", "threading.Thread": "thread"}

#: Call-expression shapes that schedule an awaitable on the running loop.
_TASK_SPAWN_DOTTED = {
    "asyncio.create_task": "create_task",
    "asyncio.ensure_future": "ensure_future",
    "asyncio.gather": "gather",
}

#: Attribute spellings of the same (``loop.create_task(...)``), matched only
#: when the receiver does not resolve to a program class (so a program
#: method named ``create_task`` still dispatches normally).
_TASK_SPAWN_ATTRS = frozenset({"create_task", "ensure_future"})


def _region_context(expr: ast.expr) -> str | None:
    """The dotted context of an ``async with`` item / ``async for`` iterable.

    ``async with self._semaphore:`` → ``"self._semaphore"``;
    ``async for a in engine.stream(mq):`` → ``"engine.stream"`` (the call's
    own dotted name); dynamic expressions report None.
    """
    if isinstance(expr, ast.Call):
        return _dotted(expr.func)
    return _dotted(expr)


def _analyze_bodies(program: Program, module: _Module) -> None:
    for fn in list(program.functions.values()):
        if fn.module != module.name:
            continue
        env = _build_env(program, module, fn)
        walker = _BodyWalker(program, module, fn, env)
        for stmt in fn.node.body:
            walker.walk(stmt, frozenset())
        fn.calls = walker.calls
        fn.mutations = walker.mutations
        fn.acquired = frozenset(walker.acquired)
        fn.spawns = walker.spawns
        fn.task_spawns = walker.task_spawns
        fn.async_regions = walker.async_regions


class _BodyWalker:
    """Single pass over one function body, tracking lexical lock state."""

    def __init__(
        self, program: Program, module: _Module, fn: FunctionInfo, env: _Env
    ) -> None:
        self.program = program
        self.module = module
        self.fn = fn
        self.env = env
        self.calls: list[CallSite] = []
        self.mutations: list[MutationSite] = []
        self.acquired: set[str] = set()
        self.spawns: list[tuple[str, str, ast.AST]] = []
        self.task_spawns: list[tuple[str, str, ast.AST]] = []
        self.async_regions: list[tuple[str, str | None, ast.AST]] = []

    # -- lock bookkeeping ------------------------------------------------
    def _lock_id(self) -> str | None:
        cls = self.fn.cls
        if cls is not None and cls.owns_lock:
            return cls.qualname
        return None

    # -- traversal -------------------------------------------------------
    def walk(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are separate functions: their bodies run later,
            # not under the locks lexically held at the definition site.
            # Record a call-less reference so name resolution still works.
            return
        if isinstance(node, ast.Lambda):
            # Same deferred-execution argument as nested defs.
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            lock = self._lock_id()
            for item in node.items:
                if isinstance(node, ast.AsyncWith):
                    self.async_regions.append(
                        ("with", _region_context(item.context_expr), node)
                    )
                if isinstance(item.context_expr, ast.Call):
                    # A call used as a with-context is structurally paired:
                    # __exit__/__aexit__ runs on every exit edge.
                    self._handle_call(item.context_expr, held, context_manager=True)
                else:
                    self.walk(item.context_expr, held)
                if lock is not None and is_self_attr(item.context_expr, "_lock"):
                    inner = inner | {lock}
                    self.acquired.add(lock)
            for stmt in node.body:
                self.walk(stmt, inner)
            return
        if isinstance(node, ast.AsyncFor):
            self.async_regions.append(("for", _region_context(node.iter), node))
            # generic traversal below records the iterable's call, if any
        if isinstance(node, ast.Await):
            if isinstance(node.value, ast.Call):
                self._handle_call(node.value, held, awaited=True)
                return
            # `await fut` on a non-call: nothing to tag, walk through
        if isinstance(node, ast.Call):
            self._handle_call(node, held)
            return
        self._record_mutation(node, held)
        for child in ast.iter_child_nodes(node):
            self.walk(child, held)

    def _handle_call(
        self,
        node: ast.Call,
        held: frozenset[str],
        awaited: bool = False,
        context_manager: bool = False,
    ) -> None:
        """Record one call expression, then traverse its arguments."""
        self._record_call(node, held, awaited=awaited, context_manager=context_manager)
        self._record_mutation(node, held)
        for child in ast.iter_child_nodes(node):
            self.walk(child, held)

    # -- facts -----------------------------------------------------------
    def _record_mutation(self, node: ast.AST, held: frozenset[str]) -> None:
        cls = self.fn.cls
        if cls is None or not cls.owns_lock:
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                flat = target.elts if isinstance(target, ast.Tuple) else [target]
                for element in flat:
                    base = self_attr_base(element)
                    if base in cls.guarded:
                        self.mutations.append(
                            MutationSite(node=node, attr=base, owner=cls.qualname, held=held)
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = self_attr_base(target)
                if base in cls.guarded:
                    self.mutations.append(
                        MutationSite(node=node, attr=base, owner=cls.qualname, held=held)
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            base = self_attr_base(node.func.value)
            if base in cls.guarded:
                self.mutations.append(
                    MutationSite(node=node, attr=base, owner=cls.qualname, held=held)
                )

    def _record_call(
        self,
        node: ast.Call,
        held: frozenset[str],
        awaited: bool = False,
        context_manager: bool = False,
    ) -> None:
        resolved = self.env.resolve_callable(node.func)
        callees: tuple[str, ...] = ()
        if isinstance(resolved, ClassInfo):
            init = self.program.lookup_method(resolved, "__init__")
            callees = (init.qualname,) if init is not None else ()
        elif isinstance(resolved, FunctionInfo):
            callees = (resolved.qualname,)
        else:
            nested = self._resolve_nested(node.func)
            if nested is not None:
                callees = (nested.qualname,)
        blocking = None if callees else self._classify_blocking(node)
        receiver: str | None = None
        receiver_types: frozenset[str] = frozenset()
        if isinstance(node.func, ast.Attribute):
            receiver = _dotted(node.func.value)
            receiver_types = self.env.infer(node.func.value)
        self.calls.append(
            CallSite(
                node=node,
                callees=callees,
                held=held,
                blocking=blocking,
                awaited=awaited,
                context_manager=context_manager,
                receiver=receiver,
                receiver_types=receiver_types,
            )
        )
        self._record_spawns(node, resolved)

    def _resolve_nested(self, func: ast.expr) -> FunctionInfo | None:
        """A bare name naming a function nested in this (or an enclosing) def."""
        if not isinstance(func, ast.Name):
            return None
        qualname = self.fn.qualname
        while True:
            candidate = self.program.functions.get(f"{qualname}.<locals>.{func.id}")
            if candidate is not None:
                return candidate
            if ".<locals>." not in qualname:
                return None
            qualname = qualname.rsplit(".<locals>.", 1)[0]

    def _classify_blocking(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open" and "open" not in self.env.locals:
                return "open() file I/O"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        dotted = _dotted(func)
        if dotted is not None:
            head = dotted.split(".")[0]
            target = self.module.imports.get(head)
            canonical = (
                dotted if target is None else ".".join([target, *dotted.split(".")[1:]])
            )
            if canonical in BLOCKING_DOTTED:
                return f"{canonical}()"
        receiver_types = self.env.infer(func.value)
        for marker, methods in _STDLIB_BLOCKING_METHODS.items():
            if marker in receiver_types and attr in methods:
                return f"{marker.split(':', 1)[1]}.{attr}()"
        if attr in BLOCKING_POOL_DISPATCH:
            # Untyped receivers: the dispatch names are distinctive enough
            # (`.map()` on anything that is not a resolved program method is
            # pool dispatch in this codebase; builtin map() is a Name call).
            return f"pool dispatch .{attr}()"
        if attr == "run_until_complete":
            return "loop.run_until_complete()"
        if attr in BLOCKING_FILE_METHODS:
            return f".{attr}() file I/O"
        return None

    def _record_spawns(
        self, node: ast.Call, resolved: "ClassInfo | FunctionInfo | None"
    ) -> None:
        """Record callables handed to another thread/process (REP111 entries)."""
        dotted = _dotted(node.func)
        canonical = None
        if dotted is not None:
            head = dotted.split(".")[0]
            target = self.module.imports.get(head)
            canonical = dotted if target is None else ".".join([target, *dotted.split(".")[1:]])
        spawn_args: list[ast.expr] = []
        kind = None
        if canonical in _SPAWN_DOTTED:
            kind = _SPAWN_DOTTED[canonical]
            if kind == "to_thread" and node.args:
                spawn_args.append(node.args[0])
            if kind == "thread":
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        spawn_args.append(keyword.value)
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in BLOCKING_POOL_DISPATCH and node.args:
                kind = "pool"
                spawn_args.append(node.args[0])
            elif attr == "Pool":
                kind = "pool-initializer"
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        spawn_args.append(keyword.value)
            elif attr == "call_soon_threadsafe" and node.args:
                kind = "call_soon_threadsafe"
                spawn_args.append(node.args[0])
            elif attr == "run_in_executor" and len(node.args) >= 2:
                # loop.run_in_executor(executor, fn, *args): the callable
                # runs in an executor thread — a thread entry point, and
                # (being a reference, not a call) an escape that cuts any
                # on-loop blocking path, exactly like asyncio.to_thread.
                kind = "executor"
                spawn_args.append(node.args[1])
        self._record_task_spawns(node, canonical, resolved)
        # A resolved program method named like a dispatch wrapper
        # (ShardedEvaluator.map) also fans its task out to workers.
        if (
            isinstance(resolved, FunctionInfo)
            and resolved.name in BLOCKING_POOL_DISPATCH
            and node.args
        ):
            kind = "pool"
            spawn_args.append(node.args[0])
        if kind is None:
            return
        for expr in spawn_args:
            target_fn = self._resolve_callable_reference(expr)
            if target_fn is not None:
                self.spawns.append((kind, target_fn.qualname, node))

    def _record_task_spawns(
        self,
        node: ast.Call,
        canonical: str | None,
        resolved: "ClassInfo | FunctionInfo | None",
    ) -> None:
        """Record awaitables scheduled on the running loop (REP116 sites)."""
        task_kind = _TASK_SPAWN_DOTTED.get(canonical) if canonical is not None else None
        if (
            task_kind is None
            and resolved is None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _TASK_SPAWN_ATTRS
        ):
            task_kind = node.func.attr
        if task_kind is None:
            return
        args = node.args if task_kind == "gather" else node.args[:1]
        for arg in args:
            target = "?"
            if isinstance(arg, ast.Call):
                inner = self.env.resolve_callable(arg.func)
                if inner is None and isinstance(arg.func, ast.Name):
                    inner = self._resolve_nested(arg.func)
                if isinstance(inner, FunctionInfo):
                    target = inner.qualname
            self.task_spawns.append((task_kind, target, node))

    def _resolve_callable_reference(self, expr: ast.expr) -> FunctionInfo | None:
        """A function *reference* (not call) to its FunctionInfo."""
        resolved = self.env.resolve_callable(expr)
        if isinstance(resolved, FunctionInfo):
            return resolved
        if isinstance(resolved, ClassInfo):
            return self.program.lookup_method(resolved, "__init__")
        if isinstance(expr, ast.Name):
            return self._resolve_nested(expr)
        return None
