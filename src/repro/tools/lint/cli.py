"""The ``python -m repro.tools.lint`` command line.

The single static-analysis entry point for the repository::

    python -m repro.tools.lint                    # full run: src/ + docs
    python -m repro.tools.lint --list-rules       # the rule battery
    python -m repro.tools.lint --rule REP101      # one rule, default scope
    python -m repro.tools.lint --rule lock-discipline path/to/file.py
    python -m repro.tools.lint --format json      # machine-readable output
    python -m repro.tools.lint --format github    # ::error annotations (CI)

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors (unknown rule, missing path).  Combining ``--rule`` with explicit
paths bypasses the rules' default path scoping, so a rule can be pointed
at any file (the fixture tests run this way).

Repeated runs reuse ``<root>/.lint-cache.pkl``, an on-disk AST cache
validated per file by ``(path, mtime, size)`` — the repo-wide battery
stops re-parsing ~110 unchanged files on every invocation.  Pass
``--no-parse-cache`` to parse fresh (the cache is never a correctness
dependency; delete the file at will).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.tools.lint.diagnostics import FORMATS, render
from repro.tools.lint.framework import Linter, all_rules, find_repo_root

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for ``--help`` tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="AST-based project-invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: <repo>/src plus the docs check)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME_OR_CODE",
        help="run only the named rule(s); repeatable; with explicit paths this "
        "bypasses the rules' default scoping",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text); 'github' emits GitHub Actions "
        "::error annotations pinned to the offending lines",
    )
    parser.add_argument(
        "--no-parse-cache",
        action="store_true",
        help="parse every file fresh instead of reusing <root>/.lint-cache.pkl "
        "entries validated by (path, mtime, size)",
    )
    parser.add_argument(
        "--warn-unused-pragmas",
        action="store_true",
        help="report suppression pragmas that suppressed nothing (REP112); "
        "takes effect only on full-battery runs (no --rule)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the registered rules and exit"
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: nearest ancestor with pyproject.toml)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit status."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for name, cls in sorted(all_rules().items(), key=lambda kv: kv[1].code):
            print(f"{cls.code}  {name:<18} {cls.description}")
        return 0
    for path in args.paths:
        if not path.exists():
            print(f"lint: path does not exist: {path}", file=sys.stderr)
            return 2
    root = args.root or find_repo_root(Path.cwd().resolve())
    try:
        linter = Linter(
            root=root,
            rules=args.rules,
            force_scope=bool(args.rules and args.paths),
            warn_unused_pragmas=args.warn_unused_pragmas,
            parse_cache=None if args.no_parse_cache else root / ".lint-cache.pkl",
        )
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    diagnostics = linter.lint(args.paths or None)
    if diagnostics:
        print(render(diagnostics, args.format))
        if args.format != "json":
            print(f"\nlint: {len(diagnostics)} finding(s)", file=sys.stderr)
        return 1
    if args.format == "json":
        print(render([], "json"))
    else:
        print("lint: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
