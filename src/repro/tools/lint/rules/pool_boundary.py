"""REP104 ``pool-picklable``: only module-level callables cross the pool.

``multiprocessing`` pickles the task callable into the worker process, and
pickle can only serialize functions importable by qualified name — lambdas,
closures and locally-defined functions fail at dispatch time (or worse,
only on the one code path that shards).  PR 3 hit exactly this with custom
plausibility-index callables, which is why the sharded engines fall back to
the serial path for them.

At every pool dispatch site (``.map`` / ``.imap`` / ``.imap_unordered`` /
``.apply_async`` / ``.starmap`` on a receiver whose spelling involves a
pool or sharder), the task argument must therefore be a module-level
callable: lambdas anywhere in the argument expression and names bound by a
nested ``def`` in an enclosing function are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import ModuleInfo, Rule, register

__all__ = ["PoolBoundaryRule"]

_POOL_METHODS = frozenset(
    {"map", "map_async", "imap", "imap_unordered", "apply_async", "starmap", "starmap_async"}
)


def _nested_function_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions defined *inside* another function (closure risk)."""
    nested: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(inner.name)
    return frozenset(nested)


def _looks_like_pool(receiver: ast.AST) -> bool:
    text = ast.unparse(receiver).lower()
    return "pool" in text or "sharder" in text


@register
class PoolBoundaryRule(Rule):
    """Task callables shipped to a worker pool must be picklable."""

    code = "REP104"
    name = "pool-picklable"
    description = (
        "pool dispatch sites must ship module-level callables, never lambdas/"
        "closures/local functions (the PR-3 custom-index fallback bug class)"
    )
    default_paths = (
        "src/repro/datalog/sharding.py",
        "src/repro/core/naive.py",
        "src/repro/core/findrules.py",
        "src/repro/relational/columnar.py",
        "src/repro/relational/dictionary.py",
    )

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        nested = _nested_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS):
                continue
            if not _looks_like_pool(func.value):
                continue
            if not node.args:
                continue
            task = node.args[0]
            for sub in ast.walk(task):
                if isinstance(sub, ast.Lambda):
                    yield self.diagnostic(
                        module,
                        sub,
                        f"lambda shipped to pool method .{func.attr}(); lambdas "
                        f"cannot be pickled into worker processes — use a "
                        f"module-level task function",
                    )
                elif isinstance(sub, ast.Name) and sub.id in nested:
                    yield self.diagnostic(
                        module,
                        sub,
                        f"locally-defined function {sub.id!r} shipped to pool "
                        f"method .{func.attr}(); nested functions cannot be "
                        f"pickled into worker processes — move it to module level",
                    )
