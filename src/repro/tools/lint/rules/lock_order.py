"""REP109: the static lock-acquisition order must be consistent and acyclic.

With the server front end putting many threads over one shared engine,
the classic deadlock shape is two locks taken in opposite orders on two
code paths (thread 1: cache lock → evaluator lock; thread 2: evaluator
lock → cache lock).  The rule derives the static lock-order graph from the
whole-program call graph: an edge ``A → B`` means some code path holds
lock ``A`` (a ``with self._lock:`` region of class ``A``) while it can
transitively reach an acquisition of lock ``B``.  Lock identity is the
owning class (one lock instance per instance, ordered per class — the
granularity the sanitizer uses at runtime too).  Findings:

* **self-deadlock** — a region holding ``A`` can re-enter an acquisition
  of ``A``: ``threading.Lock`` is not reentrant, so a call chain from
  inside the region back into a public locking method of the same class
  hangs the thread (the ``*_locked`` caller-holds convention exists
  precisely to avoid this);
* **cycle / inconsistent order** — the order graph has a cycle (two
  opposite edges being the minimal case), i.e. two threads interleaving
  those paths can each hold the lock the other is waiting for.

Every edge is reported with a sample call chain so the fix (reorder,
narrow the region, or hand off outside the lock) is mechanical.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tools.lint.callgraph import Program
from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import Rule, register

__all__ = ["LockOrderRule"]


def _strongly_connected(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan SCCs of the lock-order graph (iterative; tiny graphs)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[list[str]] = []

    def visit(root: str) -> None:
        work: list[tuple[str, Iterable[str]]] = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

    for node in sorted(graph):
        if node not in index:
            visit(node)
    return components


@register
class LockOrderRule(Rule):
    """The static lock-acquisition graph must be acyclic and consistent."""

    code = "REP109"
    name = "lock-order"
    description = (
        "the static lock-acquisition graph must be acyclic: no code path may "
        "hold one class lock while (transitively) acquiring another in an "
        "order that any other path reverses, and no path may re-acquire the "
        "non-reentrant lock it already holds"
    )
    program_level = True

    def check_program(self, program: Program) -> Iterable[Diagnostic]:
        # edge (held, acquired) -> first witness (relpath, node, chain text)
        edges: dict[tuple[str, str], tuple[str, ast.AST, str]] = {}
        diagnostics: list[Diagnostic] = []
        for fn in sorted(program.functions.values(), key=lambda f: f.qualname):
            for site in fn.calls:
                if not site.held:
                    continue
                for callee in site.callees:
                    for lock in sorted(program.may_acquire(callee)):
                        chain = " -> ".join(program.acquire_path(callee, lock)) or callee
                        witness = f"{fn.qualname} [holding {sorted(site.held)}] -> {chain}"
                        for held in sorted(site.held):
                            if lock == held:
                                diagnostics.append(
                                    Diagnostic(
                                        path=fn.relpath,
                                        line=site.node.lineno,
                                        column=site.node.col_offset,
                                        code=self.code,
                                        rule=self.name,
                                        message=(
                                            f"self-deadlock: non-reentrant lock {held} is "
                                            f"already held here and the call may re-acquire "
                                            f"it via {chain} (use the *_locked caller-holds "
                                            "convention instead)"
                                        ),
                                    )
                                )
                            else:
                                edges.setdefault(
                                    (held, lock), (fn.relpath, site.node, witness)
                                )
        graph: dict[str, set[str]] = {}
        for held, lock in edges:
            graph.setdefault(held, set()).add(lock)
            graph.setdefault(lock, set())
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            members = set(component)
            cycle_edges = sorted(
                (held, lock) for held, lock in edges if held in members and lock in members
            )
            order = " ; ".join(f"{held} -> {lock}" for held, lock in cycle_edges)
            for held, lock in cycle_edges:
                relpath, node, witness = edges[(held, lock)]
                diagnostics.append(
                    Diagnostic(
                        path=relpath,
                        line=node.lineno,
                        column=node.col_offset,
                        code=self.code,
                        rule=self.name,
                        message=(
                            f"lock-order cycle between {sorted(members)}: this path "
                            f"acquires {lock} while holding {held} ({witness}); "
                            f"conflicting edges: {order}"
                        ),
                    )
                )
        return diagnostics
