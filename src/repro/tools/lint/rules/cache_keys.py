"""REP107 ``stable-cache-key``: cache keys are deterministic and value-based.

Every cache in the evaluation stack is keyed by *normalized shapes*
(:data:`~repro.datalog.context.AtomKey` tuples, generation vectors, request
identities) precisely so that two equal computations share one entry across
runs, processes and worker pools.  A key derived from wall-clock time,
randomness, object identity or unordered iteration breaks that silently:
entries stop deduplicating, replay tests go flaky, and sharded workers
disagree with the parent.  Inside the cache-key modules the rule flags:

* calls into :mod:`time` / :mod:`random` / :mod:`uuid` / :mod:`secrets`
  and ``os.urandom`` — cache state must not depend on when or where it was
  computed;
* ``id(...)`` — object identity is not stable across processes (pool
  workers!) or runs;
* inside key-construction functions (names containing ``key`` or
  ``vector``): ``tuple(x.items())`` / ``tuple(x.keys())`` /
  ``tuple(x.values())`` / ``tuple(set(...))`` without ``sorted`` —
  dict/set iteration order is insertion- or hash-dependent, so two equal
  states can produce unequal keys (wrap in ``sorted(...)`` like
  ``Database.generation_vector`` does).  Ordinary accessors returning
  tuples in insertion order are not keys and are left alone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import ModuleInfo, Rule, register

__all__ = ["StableCacheKeyRule"]

_NONDETERMINISTIC_MODULES = frozenset({"time", "random", "uuid", "secrets"})
_UNORDERED_METHODS = frozenset({"items", "keys", "values"})


@register
class StableCacheKeyRule(Rule):
    """No time/random/identity/ordering-dependent values in cache-key modules."""

    code = "REP107"
    name = "stable-cache-key"
    description = (
        "cache keys must be built from normalized shapes: no time/random/id() "
        "seeding, no unsorted dict/set iteration tuples"
    )
    default_paths = (
        "src/repro/datalog/context.py",
        "src/repro/datalog/batching.py",
        "src/repro/datalog/lifecycle.py",
        "src/repro/core/requests.py",
        "src/repro/relational/database.py",
        "src/repro/relational/relation.py",
        "src/repro/relational/columnar.py",
        "src/repro/relational/dictionary.py",
        "src/repro/relational/indexes.py",
    )

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        yield from self._visit(module, module.tree, in_key_builder=False)

    def _visit(
        self, module: ModuleInfo, root: ast.AST, in_key_builder: bool
    ) -> Iterator[Diagnostic]:
        for node in ast.iter_child_nodes(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = in_key_builder or any(
                    marker in node.name.lower() for marker in ("key", "vector")
                )
                yield from self._visit(module, node, inner)
                continue
            yield from self._check_call(module, node, in_key_builder)
            yield from self._visit(module, node, in_key_builder)

    def _check_call(
        self, module: ModuleInfo, node: ast.AST, in_key_builder: bool
    ) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if func.value.id in _NONDETERMINISTIC_MODULES:
                    yield self.diagnostic(
                        module,
                        node,
                        f"{func.value.id}.{func.attr}() in a cache-key module; "
                        f"cached state must be deterministic and value-based",
                    )
                elif func.value.id == "os" and func.attr == "urandom":
                    yield self.diagnostic(
                        module, node, "os.urandom() in a cache-key module"
                    )
            elif isinstance(func, ast.Name):
                if func.id == "id" and node.args:
                    yield self.diagnostic(
                        module,
                        node,
                        "id() is process-local; pool workers and replays would "
                        "disagree — key on the value, not the object",
                    )
                elif (
                    func.id == "tuple"
                    and in_key_builder
                    and len(node.args) == 1
                    and self._unordered(node.args[0])
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        "tuple() over unordered dict/set iteration in a "
                        "key-construction function; wrap in sorted(...) so equal "
                        "states produce equal keys",
                    )

    @staticmethod
    def _unordered(arg: ast.expr) -> bool:
        if not isinstance(arg, ast.Call):
            return False
        func = arg.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        return isinstance(func, ast.Attribute) and func.attr in _UNORDERED_METHODS
