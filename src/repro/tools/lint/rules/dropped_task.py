"""REP116: no fire-and-forget tasks — every spawned task must be reachable.

``asyncio.create_task`` / ``ensure_future`` return a :class:`asyncio.Task`
that the event loop holds only *weakly*: a task whose result is never
awaited, stored, or given a callback can be garbage-collected mid-flight
(CPython logs the infamous "Task was destroyed but it is pending!"), and —
just as bad — any exception it raises is silently swallowed until the loop
shuts down.  The in-repo patterns that stay correct are instructive:
:meth:`AsyncMetaqueryEngine.stream <repro.core.aio.AsyncMetaqueryEngine.stream>`
keeps its producer future in a local it later inspects *and* attaches the
retirement callback; the service's ``eof_task`` disconnect probe is polled
and explicitly cancelled.  A bare ``asyncio.create_task(self._pump())``
statement has neither property — it is a time bomb with a GC fuse.

The rule walks the callgraph's task-spawn sites
(:attr:`FunctionInfo.task_spawns
<repro.tools.lint.callgraph.FunctionInfo.task_spawns>`) and flags a spawn
whose task object is

* a bare expression statement (nobody can ever reach the task again), or
* assigned to ``_`` or to a local name the function never reads afterwards
  (morally the same bare statement).

Everything that makes the task reachable passes: ``await``-ing the call
(``await asyncio.gather(...)``), assigning to an attribute or subscript,
storing it in a container or passing it to a call
(``tasks.append(create_task(...))``), returning/yielding it, or chaining a
method on the result (``create_task(...).add_done_callback(...)``).  The
fix is to hold the task somewhere its exceptions can be observed — a set
with a discard callback is the canonical idiom — or, when the work must
finish before anyone proceeds, simply ``await`` it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tools.lint.callgraph import FunctionInfo, Program
from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import Rule, register

__all__ = ["DroppedTaskRule"]

#: Expression contexts that consume or retain the spawned task's value.
_CONSUMING = (
    ast.Call,
    ast.List,
    ast.Tuple,
    ast.Set,
    ast.Dict,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.comprehension,
    ast.Return,
    ast.Yield,
    ast.YieldFrom,
    ast.Starred,
    ast.BinOp,
    ast.Compare,
    ast.BoolOp,
    ast.IfExp,
    ast.Subscript,
    ast.keyword,
    ast.FormattedValue,
)


def _name_read_elsewhere(fn: FunctionInfo, name: str, binding: ast.stmt) -> bool:
    """Is ``name`` loaded anywhere in the function outside its binding targets?"""
    targets = {
        id(t)
        for t in ast.walk(binding)
        if isinstance(t, ast.Name) and t.id == name and isinstance(t.ctx, ast.Store)
    }
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, (ast.Load, ast.Del))
            and id(node) not in targets
        ):
            return True
    return False


@register
class DroppedTaskRule(Rule):
    """Spawned tasks must be awaited, retained, or given a callback."""

    code = "REP116"
    name = "dropped-task"
    description = (
        "no fire-and-forget create_task/ensure_future/gather: the task "
        "must be awaited, retained, or callback-attached so it cannot be "
        "garbage-collected mid-flight with its exceptions swallowed"
    )
    program_level = True

    def check_program(self, program: Program) -> Iterable[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for fn in sorted(program.functions.values(), key=lambda f: f.qualname):
            if not fn.task_spawns:
                continue
            parents: dict[int, ast.AST] = {}
            for parent in ast.walk(fn.node):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            seen: set[int] = set()
            for kind, _target, node in fn.task_spawns:
                if id(node) in seen:
                    continue  # gather records one spawn per argument
                seen.add(id(node))
                problem = self._dropped(fn, node, parents, kind)
                if problem is not None:
                    diagnostics.append(
                        Diagnostic(
                            path=fn.relpath,
                            line=node.lineno,
                            column=node.col_offset,
                            code=self.code,
                            rule=self.name,
                            message=problem,
                        )
                    )
        return diagnostics

    def _dropped(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        parents: dict[int, ast.AST],
        kind: str,
    ) -> str | None:
        """The finding message when the spawn's task is unreachable, else None."""
        current: ast.AST = node
        parent = parents.get(id(current))
        while parent is not None:
            if isinstance(parent, ast.Await):
                return None  # awaited in place
            if isinstance(parent, ast.Attribute):
                return None  # method chained on the task (.add_done_callback)
            if isinstance(parent, _CONSUMING):
                return None  # stored, passed along, or consumed by an expression
            if isinstance(parent, ast.Expr):
                return (
                    f"{kind}() result dropped in {fn.qualname}: a task nobody "
                    "holds can be garbage-collected mid-flight and its "
                    "exceptions are silently swallowed; retain it, await it, "
                    "or attach a done-callback"
                )
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                targets = (
                    parent.targets if isinstance(parent, ast.Assign) else [parent.target]
                )
                names = [t for t in targets if isinstance(t, ast.Name)]
                if len(names) != len(targets):
                    return None  # attribute/subscript/tuple target: retained
                for target in names:
                    if target.id != "_" and _name_read_elsewhere(fn, target.id, parent):
                        return None
                bound = ", ".join(t.id for t in names) or "_"
                return (
                    f"{kind}() task assigned to {bound!r} in {fn.qualname} but "
                    "never awaited, retained, or given a callback afterwards: "
                    "morally a fire-and-forget spawn"
                )
            if isinstance(parent, ast.NamedExpr):
                return None  # walrus: the value flows into the enclosing expression
            current = parent
            parent = parents.get(id(current))
        return None
