"""REP115: every acquire must be dominated by a release on every exit edge.

PR 8's admission control hands out *counted* grants: a
:class:`~repro.server.limits.StreamPermits` permit per SSE stream and one
slot of the process-wide :class:`asyncio.Semaphore` concurrency budget per
executing engine stage.  A grant leaked on an exception edge — the
``prepare`` that raises after ``try_acquire`` succeeded, the task cancelled
between ``acquire`` and its ``try`` — does not crash anything.  It just
silently shrinks the admission budget, one exception at a time, until the
service answers ``503`` forever.  PR 8's fault-injection tests catch this
class dynamically by closing sockets mid-stream; this rule closes it
statically.

What counts as a **resource**:

* program classes defining both an acquire method (``acquire`` /
  ``try_acquire``) *and* ``release`` — :class:`StreamPermits` qualifies;
  :class:`~repro.server.limits.TokenBucket` does not (tokens refill by
  clock, there is nothing to pair, so its reservations are exempt by
  construction);
* the typed stdlib semaphores (``threading.Semaphore`` /
  ``asyncio.Semaphore`` and their Bounded variants), via the callgraph's
  stdlib markers — so ``dict.get``-style aliasing can never make an
  arbitrary ``.acquire()`` match;
* non-daemon ``threading.Thread`` objects a function starts and forgets —
  a producer thread is a grant too, paired by ``join``, retention, or
  ``daemon=True``.

What counts as **paired** (the acquire is dominated by a release):

* the acquire is a ``with`` / ``async with`` context — ``__exit__`` runs
  on every exit edge by construction;
* an enclosing ``try`` whose ``finally`` releases the same dotted receiver
  (directly, or through a resolved call that transitively releases the
  resource class — the interprocedural half);
* a ``try``/``finally`` of that shape *following* the acquire in the same
  block — the ``await sem.acquire(); try: ... finally: sem.release()``
  idiom, and its guard variant ``if not x.try_acquire(): raise`` followed
  by the paired ``try``.

Conditional releases inside the ``finally`` count: the handoff pattern in
:meth:`AsyncMetaqueryEngine.stream <repro.core.aio.AsyncMetaqueryEngine.stream>`
(release directly when the producer never started, else defer to the
producer's done-callback) is a *transfer* of the obligation, which the
rule accepts — what it rejects is an exit edge with no release logic at
all.  Methods of the resource class itself are exempt (they implement the
discipline; they cannot also be asked to follow it).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tools.lint.callgraph import (
    SEMAPHORE_MARKERS,
    CallSite,
    ClassInfo,
    FunctionInfo,
    Program,
)
from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import Rule, register

__all__ = ["ResourcePairingRule"]

#: Method names that take a counted grant from a resource.
ACQUIRE_METHODS = frozenset({"acquire", "try_acquire"})


def _parents(root: ast.AST) -> dict[int, ast.AST]:
    """Child-id -> parent map for one function body."""
    out: dict[int, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            out[id(child)] = parent
    return out


def _statement_chain(node: ast.AST, parents: dict[int, ast.AST]) -> list[ast.stmt]:
    """The statements enclosing ``node``, innermost first."""
    chain: list[ast.stmt] = []
    current: ast.AST | None = node
    while current is not None:
        if isinstance(current, ast.stmt):
            chain.append(current)
        current = parents.get(id(current))
    return chain


def _blocks_of(stmt: ast.AST) -> list[list[ast.stmt]]:
    """Every statement list a compound statement owns."""
    blocks = []
    for field in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            blocks.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        blocks.append(handler.body)
    return blocks


class _PairingCheck:
    """Release-domination analysis for one function's acquire sites."""

    def __init__(self, program: Program, fn: FunctionInfo) -> None:
        self.program = program
        self.fn = fn
        self.parents = _parents(fn.node)
        #: call node id -> CallSite, for resolving calls found in finalbody
        self.sites = {id(site.node): site for site in fn.calls}

    # -- release evidence --------------------------------------------------
    def _site_releases(self, site: CallSite, receiver: str | None, keys: frozenset[str]) -> bool:
        """Does one call site release the resource (same receiver or type)?"""
        func = site.node.func
        if isinstance(func, ast.Attribute) and func.attr == "release":
            if receiver is not None and site.receiver == receiver:
                return True
            if site.receiver_types & keys:
                return True
        for callee in site.callees:
            callee_fn = self.program.functions.get(callee)
            if (
                callee_fn is not None
                and callee_fn.name == "release"
                and callee_fn.cls is not None
                and callee_fn.cls.qualname in keys
            ):
                return True
        return False

    def _transitively_releases(self, qualname: str, keys: frozenset[str], seen: set[str]) -> bool:
        """Does calling ``qualname`` reach a release of the resource type?"""
        if qualname in seen:
            return False
        seen.add(qualname)
        callee_fn = self.program.functions.get(qualname)
        if callee_fn is None:
            return False
        for site in callee_fn.calls:
            if self._site_releases(site, None, keys):
                return True
            for callee in site.callees:
                if self._transitively_releases(callee, keys, seen):
                    return True
        return False

    def _finally_releases(self, try_stmt: ast.Try, receiver: str | None, keys: frozenset[str]) -> bool:
        """Does the ``finally`` block release the resource on this exit edge?

        Conditional releases count (the handoff pattern transfers the
        obligation rather than discharging it unconditionally); calls
        inside nested defs do not (the walker never records them as this
        function's sites, and their execution is deferred anyway).
        """
        for stmt in try_stmt.finalbody:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                site = self.sites.get(id(node))
                if site is None:
                    continue
                if self._site_releases(site, receiver, keys):
                    return True
                for callee in site.callees:
                    if self._transitively_releases(callee, keys, set()):
                        return True
        return False

    # -- domination --------------------------------------------------------
    def is_paired(self, site: CallSite, keys: frozenset[str]) -> bool:
        """Is the acquire dominated by a release on every exit edge?"""
        if site.context_manager:
            return True
        receiver = site.receiver
        chain = _statement_chain(site.node, self.parents)
        # 1. an enclosing try whose finally releases the receiver (unless
        #    the acquire itself sits in that finally, where a release
        #    guards nothing).
        for index, stmt in enumerate(chain):
            if isinstance(stmt, ast.Try) and stmt.finalbody:
                if index > 0 and chain[index - 1] in stmt.finalbody:
                    continue
                if self._finally_releases(stmt, receiver, keys):
                    return True
        # 2. a try/finally releasing the receiver later in the same block,
        #    at any enclosing statement level — the `await sem.acquire();
        #    try: ... finally: sem.release()` idiom and its guard variant
        #    `if not x.try_acquire(): raise` followed by the paired try.
        for stmt in chain:
            owner = self.parents.get(id(stmt))
            if owner is None:
                continue
            for block in _blocks_of(owner):
                if stmt not in block:
                    continue
                for later in block[block.index(stmt) + 1 :]:
                    if (
                        isinstance(later, ast.Try)
                        and later.finalbody
                        and self._finally_releases(later, receiver, keys)
                    ):
                        return True
        return False


def _resource_classes(program: Program) -> dict[str, ClassInfo]:
    """Program classes implementing the acquire/release discipline."""
    out: dict[str, ClassInfo] = {}
    for cls in program.classes.values():
        if "release" in cls.methods and any(m in cls.methods for m in ACQUIRE_METHODS):
            out[cls.qualname] = cls
    return out


@register
class ResourcePairingRule(Rule):
    """Counted grants must be released (or transferred) on every exit edge."""

    code = "REP115"
    name = "resource-pairing"
    description = (
        "every Semaphore/permit acquire and producer-thread start must be "
        "dominated by a release (with-block, finally, join, or retention) "
        "on every exit edge, including exception edges"
    )
    program_level = True

    def check_program(self, program: Program) -> Iterable[Diagnostic]:
        resources = _resource_classes(program)
        diagnostics: list[Diagnostic] = []
        for fn in sorted(program.functions.values(), key=lambda f: f.qualname):
            check: _PairingCheck | None = None
            for site in fn.calls:
                if not isinstance(site.node.func, ast.Attribute):
                    continue
                attr = site.node.func.attr
                if attr == "start" and "stdlib:Thread" in site.receiver_types:
                    if _thread_unpaired(fn, site):
                        diagnostics.append(
                            Diagnostic(
                                path=fn.relpath,
                                line=site.node.lineno,
                                column=site.node.col_offset,
                                code=self.code,
                                rule=self.name,
                                message=(
                                    f"thread {site.receiver!r} started in {fn.qualname} "
                                    "is neither joined, retained, nor daemonized: a "
                                    "fire-and-forget producer outlives its request"
                                ),
                            )
                        )
                    continue
                if attr not in ACQUIRE_METHODS:
                    continue
                keys = frozenset(
                    key
                    for key in site.receiver_types
                    if key in SEMAPHORE_MARKERS or key in resources
                )
                for callee in site.callees:
                    callee_fn = program.functions.get(callee)
                    if (
                        callee_fn is not None
                        and callee_fn.cls is not None
                        and callee_fn.cls.qualname in resources
                    ):
                        keys |= {callee_fn.cls.qualname}
                if not keys:
                    continue
                if fn.cls is not None and fn.cls.qualname in keys:
                    continue  # the resource's own implementation
                if check is None:
                    check = _PairingCheck(program, fn)
                if check.is_paired(site, keys):
                    continue
                what = site.receiver or attr
                diagnostics.append(
                    Diagnostic(
                        path=fn.relpath,
                        line=site.node.lineno,
                        column=site.node.col_offset,
                        code=self.code,
                        rule=self.name,
                        message=(
                            f"{what}.{attr}() in {fn.qualname} is not dominated by a "
                            "release on every exit edge: use `async with`/`with`, or "
                            "pair it with try/finally release so exception and "
                            "cancellation paths cannot leak the grant"
                        ),
                    )
                )
        return diagnostics


def _thread_unpaired(fn: FunctionInfo, site: CallSite) -> bool:
    """True when a locally-started thread is never joined/retained/daemonized."""
    receiver = site.receiver
    if receiver is None or "." in receiver:
        return False  # attribute receivers (self._thread) are retained state
    name = receiver
    # First pass: hard exemptions, and the name occurrences that are part
    # of the start/construct pattern itself (not evidence of retention).
    pattern_uses: set[int] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            named = [t for t in node.targets if isinstance(t, ast.Name) and t.id == name]
            if named:
                for keyword in node.value.keywords:
                    if (
                        keyword.arg == "daemon"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return False  # daemonized at construction
                pattern_uses.update(id(t) for t in named)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            value = node.func.value
            if isinstance(value, ast.Name) and value.id == name:
                if node.func.attr == "join":
                    return False  # explicitly joined
                if node.func.attr == "start":
                    pattern_uses.add(id(value))
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == name and node.attr == "daemon":
                return False  # `t.daemon = True` before start
    # Second pass: any other Load of the name means the thread object is
    # retained or handed along — somebody can still join it.
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Name)
            and node.id == name
            and isinstance(node.ctx, ast.Load)
            and id(node) not in pattern_uses
        ):
            return False
    return True
