"""REP106 ``public-api``: every module documents and declares its surface.

The reproduction doubles as documentation of the paper, so its API surface
is part of the deliverable: every module under ``src/repro/`` must carry a
module docstring, declare ``__all__`` (a literal list/tuple of strings),
and document every public top-level function and class.  Concretely:

* missing module docstring → finding;
* missing ``__all__`` → finding (``__main__.py`` entry points are exempt
  by scope — they are executed, never imported from);
* an ``__all__`` entry naming nothing defined or imported in the module →
  finding (stale export lists are worse than none);
* a public top-level ``def``/``class`` absent from ``__all__`` → finding
  (the export list must *cover* the surface, not sample it);
* a public top-level ``def``/``class`` without a docstring → finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import ModuleInfo, Rule, register

__all__ = ["ApiSurfaceRule"]


def _find_dunder_all(
    tree: ast.Module,
) -> tuple[ast.Assign | ast.AnnAssign | None, list[str] | None]:
    """The ``__all__`` assignment and its entries (None when absent/non-literal).

    Both plain and annotated (``__all__: list[str] = []``) assignments count.
    """
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets):
                continue
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
            and node.value is not None
        ):
            value = node.value
        else:
            continue
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str) for e in value.elts
        ):
            return node, [e.value for e in value.elts]
        return node, None
    return None, None


def _defined_names(tree: ast.Module) -> set[str]:
    """Every name bound at module level (defs, classes, assigns, imports)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for element in target.elts if isinstance(target, ast.Tuple) else [target]:
                    if isinstance(element, ast.Name):
                        names.add(element.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


@register
class ApiSurfaceRule(Rule):
    """Module docstring + complete ``__all__`` + public-def docstrings."""

    code = "REP106"
    name = "public-api"
    description = (
        "every module needs a docstring, a complete literal __all__, and "
        "docstrings on public top-level functions/classes"
    )
    default_paths = ("src/repro/*.py",)

    def applies_to(self, relpath: str) -> bool:
        if relpath.endswith("__main__.py"):
            return False
        return super().applies_to(relpath)

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        tree = module.tree
        if not ast.get_docstring(tree):
            yield self.diagnostic(module, None, "module has no docstring")
        assign, exports = _find_dunder_all(tree)
        public_defs = [
            node
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not node.name.startswith("_")
        ]
        if assign is None:
            yield self.diagnostic(
                module, None, "module does not declare __all__ (its public surface)"
            )
        elif exports is None:
            yield self.diagnostic(
                module,
                assign,
                "__all__ must be a literal list/tuple of strings so the linter "
                "(and readers) can check it",
            )
        else:
            defined = _defined_names(tree)
            for name in exports:
                if name not in defined:
                    yield self.diagnostic(
                        module,
                        assign,
                        f"__all__ exports {name!r}, which the module neither "
                        f"defines nor imports",
                    )
            listed = set(exports)
            for node in public_defs:
                if node.name not in listed:
                    yield self.diagnostic(
                        module,
                        node,
                        f"public {type(node).__name__.replace('Def', '').lower()} "
                        f"{node.name!r} is missing from __all__",
                    )
        for node in public_defs:
            if not ast.get_docstring(node):
                yield self.diagnostic(
                    module, node, f"public {node.name!r} has no docstring"
                )
