"""REP105 ``no-silent-except``: no bare excepts, no swallowed broad catches.

A bare ``except:`` (or an ``except Exception:`` whose body neither raises
nor calls anything — no re-raise, no logging, no fallback computation)
turns every bug into silence.  In an exact-arithmetic reproduction that is
the worst failure mode: a swallowed error does not crash, it quietly
produces wrong indices.  The rule flags:

* ``except:`` — always;
* ``except Exception:`` / ``except BaseException:`` handlers whose body
  contains no ``raise`` and no call at all (the pure-swallow shape
  ``except Exception: pass``).

Catching *specific* exception types with a ``pass`` body is allowed — that
is the idiomatic "this case is genuinely fine" shape (e.g. trying one
decomposition host and moving on).  Legitimate broad swallows (interpreter
teardown in a finalizer) carry an explicit pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import ModuleInfo, Rule, register

__all__ = ["SilentExceptRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return True
    if isinstance(annotation, ast.Name):
        return annotation.id in _BROAD
    if isinstance(annotation, ast.Tuple):
        return any(_is_broad(element) for element in annotation.elts)
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Call)):
                return False
    return True


@register
class SilentExceptRule(Rule):
    """Ban bare excepts and silently swallowed broad exception handlers."""

    code = "REP105"
    name = "no-silent-except"
    description = "no bare `except:`; `except Exception:` must re-raise, log or handle"
    default_paths = ("src/repro/*.py",)

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    module,
                    node,
                    "bare `except:` catches everything including KeyboardInterrupt; "
                    "name the exception type",
                )
            elif _is_broad(node.type) and _swallows(node):
                yield self.diagnostic(
                    module,
                    node,
                    "`except Exception:` swallows the error without re-raising, "
                    "logging or handling it — errors must surface",
                )
