"""REP114: nothing that blocks a thread may run on the event loop.

The server track (PR 8) put every tenant's streams on one asyncio event
loop.  That loop is cooperatively scheduled: a single synchronous blocking
call — ``time.sleep``, socket or file I/O, ``queue.Queue.get``, a pool
dispatch, a ``threading`` wait — executed inside a coroutine stalls *every*
connection, stream, and timer in the process until it returns.  Unlike the
thread-world bugs REP110 guards, nothing deadlocks and no data tears: the
service just stops answering, which monitoring reads as "slow", not
"broken".  That is precisely the bug class a static pass must close,
because the dynamic half (:mod:`repro.tools.loopmon`) only sees the stall
after it has already happened in production.

The check walks every ``async def`` in the program and asks
:meth:`Program.loop_blocking_witness
<repro.tools.lint.callgraph.Program.loop_blocking_witness>` whether a
thread-blocking operation is reachable *on the loop*:

* ``await`` sites yield the loop and are never themselves a blocking step;
* ``async def`` callees run as their own tasks — a blocking call inside an
  awaited coroutine is flagged once, at that coroutine, not at every
  transitive caller;
* executor escapes (``asyncio.to_thread(fn, ...)`` /
  ``loop.run_in_executor(None, fn)``) hand *references* across the thread
  boundary, which contribute no call edge — so the sanctioned fix pattern
  cuts the path by construction;
* the synchronous heavy-compute surfaces
  (``MetaqueryEngine.prepare/find_rules/decide/witness``,
  ``PreparedMetaquery.stream/collect``) count as blocking even though they
  touch no blocking primitive: a multi-second pure-Python mine stalls the
  loop as surely as ``time.sleep`` does.

Each finding carries the full call chain from the coroutine to the
blocking primitive.  The fix is always the same shape: move the blocking
stage behind ``await asyncio.to_thread(...)`` (what every
:class:`~repro.core.aio.AsyncMetaqueryEngine` method does) or restructure
so the loop only ever touches ready data.
"""

from __future__ import annotations

from typing import Iterable

from repro.tools.lint.callgraph import Program
from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import Rule, register

__all__ = ["BlockingInCoroutineRule", "HEAVY_COMPUTE"]

#: Synchronous heavy-compute surfaces: calls that are pure Python but can
#: run for seconds, so they must never execute on the event loop directly.
HEAVY_COMPUTE = frozenset(
    {
        "repro.core.engine:MetaqueryEngine.prepare",
        "repro.core.engine:MetaqueryEngine.find_rules",
        "repro.core.engine:MetaqueryEngine.decide",
        "repro.core.engine:MetaqueryEngine.witness",
        "repro.core.requests:PreparedMetaquery.stream",
        "repro.core.requests:PreparedMetaquery.collect",
    }
)


@register
class BlockingInCoroutineRule(Rule):
    """No sync blocking operation may be reachable from a coroutine on-loop."""

    code = "REP114"
    name = "blocking-in-coroutine"
    description = (
        "no sync blocking operation (sleep, file/socket I/O, queue/thread "
        "wait, pool dispatch, engine compute) may be reachable from an "
        "async def without a to_thread/run_in_executor hop on the path"
    )
    program_level = True

    def check_program(self, program: Program) -> Iterable[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for fn in sorted(program.functions.values(), key=lambda f: f.qualname):
            if not fn.is_async:
                continue
            for site in fn.calls:
                if site.awaited:
                    continue
                if site.blocking is not None:
                    diagnostics.append(
                        Diagnostic(
                            path=fn.relpath,
                            line=site.node.lineno,
                            column=site.node.col_offset,
                            code=self.code,
                            rule=self.name,
                            message=(
                                f"{site.blocking} in coroutine {fn.qualname}: this "
                                "stalls every task on the event loop; hand it to a "
                                "worker thread (await asyncio.to_thread(...))"
                            ),
                        )
                    )
                    continue
                for callee in site.callees:
                    target = program.functions.get(callee)
                    if target is not None and target.is_async:
                        continue  # runs as its own task; analyzed at its own def
                    if callee in HEAVY_COMPUTE:
                        name = callee.split(":", 1)[-1]
                        diagnostics.append(
                            Diagnostic(
                                path=fn.relpath,
                                line=site.node.lineno,
                                column=site.node.col_offset,
                                code=self.code,
                                rule=self.name,
                                message=(
                                    f"synchronous engine compute {name}() called on "
                                    f"the event loop in coroutine {fn.qualname}: "
                                    "wrap it in await asyncio.to_thread(...)"
                                ),
                            )
                        )
                        break
                    witness = program.loop_blocking_witness(callee, HEAVY_COMPUTE)
                    if witness is None:
                        continue
                    chain = " -> ".join((fn.qualname, *witness.chain))
                    diagnostics.append(
                        Diagnostic(
                            path=fn.relpath,
                            line=site.node.lineno,
                            column=site.node.col_offset,
                            code=self.code,
                            rule=self.name,
                            message=(
                                f"coroutine {fn.qualname} reaches {witness.descriptor} "
                                f"on the event loop via {chain}: move the blocking "
                                "stage behind await asyncio.to_thread(...)"
                            ),
                        )
                    )
                    break  # one witness per call site is enough
        return diagnostics
