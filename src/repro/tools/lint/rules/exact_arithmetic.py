"""REP101 ``exact-arithmetic``: index computations must stay in Fractions.

The paper's plausibility indices and thresholds are exact rationals, and
every comparison in the decision problems is a *strict* ``I(σ(MQ)) > k``.
PR 1's ``limit_denominator`` bug showed how a single float round-trip
silently flips those comparisons (a denominator cap collapsed ``1e-10`` to
``0``, turning ``> 1e-10`` into ``> 0``), so inside the index-computation
modules (``core/`` and ``datalog/counting.py``) this rule bans:

* ``float(...)`` calls — coerce thresholds with
  :func:`repro.core.answers.exact_fraction` instead;
* ``Fraction.limit_denominator`` — *any* use, it rounds by definition;
* float literals — spell exact values as ``Fraction`` ratios.

Presentation code is exempt: ``__str__``/``__repr__``/``__format__``
bodies may format fractions as floats, and other display helpers carry an
explicit ``# repro-lint: disable=exact-arithmetic`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import ModuleInfo, Rule, register

__all__ = ["ExactArithmeticRule"]

#: Dunder methods whose whole purpose is human-readable display.
_DISPLAY_METHODS = frozenset({"__str__", "__repr__", "__format__"})


@register
class ExactArithmeticRule(Rule):
    """Ban floats where the paper demands exact Fractions."""

    code = "REP101"
    name = "exact-arithmetic"
    description = (
        "no float()/limit_denominator/float literals in index computations; "
        "Fractions only (the PR-1 threshold coercion bug class)"
    )
    default_paths = (
        "src/repro/core/*.py",
        "src/repro/datalog/counting.py",
        "src/repro/relational/columnar.py",
    )

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        yield from self._visit(module, module.tree, display=False)

    def _visit(self, module: ModuleInfo, node: ast.AST, display: bool) -> Iterator[Diagnostic]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            display = display or node.name in _DISPLAY_METHODS
        if isinstance(node, ast.Attribute) and node.attr == "limit_denominator":
            yield self.diagnostic(
                module,
                node,
                "limit_denominator rounds the exact value; use "
                "repro.core.answers.exact_fraction (PR-1 bug class)",
            )
        elif not display:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                yield self.diagnostic(
                    module,
                    node,
                    "float() in an index-computation module; keep values exact "
                    "with Fraction / exact_fraction",
                )
            elif isinstance(node, ast.Constant) and isinstance(node.value, float):
                yield self.diagnostic(
                    module,
                    node,
                    f"float literal {node.value!r} in an index-computation module; "
                    "spell exact values as Fraction ratios",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._visit(module, child, display)
