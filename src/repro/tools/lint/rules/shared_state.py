"""REP111: shared state reached from another thread must hold its lock.

The interprocedural generalisation of REP102.  REP102 sees one module: it
flags a guarded attribute mutated outside a ``with self._lock:`` block in
the same function.  The bugs that actually shipped (the PR-5 sharded
telemetry undercount, the PR-6 unlocked lifecycle counters) had a caller
in one function — sometimes one module — holding the lock while the
mutation sat in a callee, or a mutation that was safe single-threaded
until ``aio.py`` started running it on a worker thread.

This rule walks the call graph from every *thread entry point* — the
callables the program hands to another thread or process
(``asyncio.to_thread(fn, ...)``, ``threading.Thread(target=fn)``,
``loop.call_soon_threadsafe(fn)``, pool initializers, and the task
functions fanned out through pool dispatch) — carrying the set of class
locks held along each call path.  A mutation of a lock-owning class's
``__init__``-declared attribute is flagged when the owning lock is held
neither lexically at the mutation nor anywhere on the path from the entry
point.  The ``*_locked`` caller-holds convention needs no special case:
the caller's ``with self._lock:`` region is on the path, so the callee's
mutations see the lock as held.

Mutations on paths *not* reachable from any entry point are REP102's
business (single-threaded construction, ``__init__`` itself); this rule
only fires where a second thread can actually observe the tear.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.tools.lint.callgraph import Program
from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import Rule, register

__all__ = ["SharedStateRule"]


@register
class SharedStateRule(Rule):
    """Cross-thread mutations of guarded state must hold the owning lock."""

    code = "REP111"
    name = "unguarded-shared-state"
    description = (
        "init-declared attributes of lock-owning classes must not be mutated "
        "from code reachable from a thread/pool entry point without holding "
        "the owning lock (interprocedural REP102)"
    )
    program_level = True

    def check_program(self, program: Program) -> Iterable[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        reported: set[tuple[str, int, int, str]] = set()
        for kind, spawner, target, _node in sorted(program.entry_points()):
            entry_label = f"{kind} entry {target} (spawned by {spawner})"
            self._walk(
                program,
                target,
                frozenset(),
                [target],
                entry_label,
                set(),
                reported,
                diagnostics,
            )
        return diagnostics

    def _walk(
        self,
        program: Program,
        qualname: str,
        held: frozenset[str],
        path: list[str],
        entry_label: str,
        visited: set[tuple[str, frozenset[str]]],
        reported: set[tuple[str, int, int, str]],
        diagnostics: list[Diagnostic],
    ) -> None:
        key = (qualname, held)
        if key in visited:
            return
        visited.add(key)
        fn = program.functions.get(qualname)
        if fn is None:
            return
        if fn.name == "__init__":
            # Constructors mutate the object being built, which no other
            # thread can see yet, and their helper calls are construction-
            # phase too — REP102's __init__ carve-out, interprocedurally.
            # Threads a constructor spawns are separate entry points.
            return
        for mutation in fn.mutations:
            effective = held | mutation.held
            if mutation.owner in effective:
                continue
            line = getattr(mutation.node, "lineno", 0)
            column = getattr(mutation.node, "col_offset", 0)
            fingerprint = (fn.relpath, line, column, mutation.attr)
            if fingerprint in reported:
                continue
            reported.add(fingerprint)
            chain = " -> ".join(path)
            diagnostics.append(
                Diagnostic(
                    path=fn.relpath,
                    line=line,
                    column=column,
                    code=self.code,
                    rule=self.name,
                    message=(
                        f"guarded attribute self.{mutation.attr} of {mutation.owner} "
                        f"mutated without its lock on a cross-thread path: "
                        f"{entry_label}, call chain {chain}"
                    ),
                )
            )
        for site in fn.calls:
            for callee in site.callees:
                self._walk(
                    program,
                    callee,
                    held | site.held,
                    path + [callee],
                    entry_label,
                    visited,
                    reported,
                    diagnostics,
                )
