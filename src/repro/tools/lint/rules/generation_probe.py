"""REP103 ``generation-probe``: memo reads probe staleness, mutations bump it.

PR 5's stale-cache bug happened because a memoized lookup path did not
consult the database's mutation state: ``EvaluationContext.applies_to`` was
identity-only, so mutate-then-query silently served pre-mutation joins.
The fix introduced one protocol — ``Database`` mutations bump per-relation
generation counters, and every memo-store read calls ``refresh()`` (an O(1)
``mutation_count`` probe) first.  This rule keeps both halves honest:

* **read side** (``context.py`` / ``batching.py`` / ``lifecycle.py``): in a
  class that owns a ``refresh()`` method and memo sections (attributes
  bound from ``store.section(...)`` in ``__init__``), every method that
  reads a section (``self._atoms.get(...)``) must call ``self.refresh()``
  on the same path;
* **write side** (``database.py``): in a class tracking
  ``self._relations`` + ``self._generations``, every method that mutates
  the relation mapping must bump the generation state (``self._bump(...)``
  or a direct ``self._generations[...]`` assignment).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.astutil import contains_call, self_attr_base
from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import ModuleInfo, Rule, register

__all__ = ["GenerationProbeRule"]

_MAPPING_MUTATORS = frozenset({"pop", "popitem", "clear", "update", "setdefault", "__setitem__"})


def _init_of(cls: ast.ClassDef) -> ast.FunctionDef | None:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            return stmt
    return None


def _section_attributes(init: ast.FunctionDef) -> frozenset[str]:
    """Attributes bound to ``<store>.section("...")`` results in ``__init__``."""
    sections: set[str] = set()
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "section"
        ):
            for target in node.targets:
                base = self_attr_base(target)
                if base is not None:
                    sections.add(base)
    return frozenset(sections)


def _assigns_attr(init: ast.FunctionDef, attr: str) -> bool:
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            if any(self_attr_base(t) == attr for t in node.targets):
                return True
    return False


def _calls_self_method(body: list[ast.stmt], names: frozenset[str]) -> bool:
    def predicate(call: ast.Call) -> bool:
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr in names
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        )

    return contains_call(body, predicate)


@register
class GenerationProbeRule(Rule):
    """Memo reads must refresh; relation mutations must bump generations."""

    code = "REP103"
    name = "generation-probe"
    description = (
        "memo-store reads must call refresh()/mutation_count on the path, and "
        "Database relation mutations must bump the generation counter "
        "(the PR-5 stale-cache bug class)"
    )
    default_paths = (
        "src/repro/datalog/context.py",
        "src/repro/datalog/batching.py",
        "src/repro/datalog/lifecycle.py",
        "src/repro/relational/database.py",
    )

    #: Methods that manage the caches themselves rather than serving reads.
    _READ_EXEMPT = frozenset({"__init__", "refresh", "clear", "__repr__", "__len__"})

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_memo_reads(module, node)
                yield from self._check_generation_bumps(module, node)

    # ------------------------------------------------------------------
    def _check_memo_reads(self, module: ModuleInfo, cls: ast.ClassDef) -> Iterator[Diagnostic]:
        init = _init_of(cls)
        has_refresh = any(
            isinstance(stmt, ast.FunctionDef) and stmt.name == "refresh" for stmt in cls.body
        )
        if init is None or not has_refresh:
            return
        sections = _section_attributes(init)
        if not sections:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in self._READ_EXEMPT:
                continue
            reads = [
                node
                for node in ast.walk(method)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and self_attr_base(node.func.value) in sections
            ]
            if reads and not _calls_self_method(method.body, frozenset({"refresh"})):
                yield self.diagnostic(
                    module,
                    reads[0],
                    f"{cls.name}.{method.name} reads memo section "
                    f"self.{self_attr_base(reads[0].func.value)} without calling "
                    f"self.refresh() — stale entries would be served after an "
                    f"in-place mutation",
                )

    # ------------------------------------------------------------------
    def _check_generation_bumps(
        self, module: ModuleInfo, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        init = _init_of(cls)
        if init is None:
            return
        if not (_assigns_attr(init, "_relations") and _assigns_attr(init, "_generations")):
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            mutation = self._relation_mutation(method)
            if mutation is None:
                continue
            bumps = _calls_self_method(method.body, frozenset({"_bump"})) or any(
                isinstance(node, ast.Assign)
                and any(self_attr_base(t) == "_generations" for t in node.targets)
                for node in ast.walk(method)
            )
            if not bumps:
                yield self.diagnostic(
                    module,
                    mutation,
                    f"{cls.name}.{method.name} mutates self._relations without "
                    f"bumping the generation counters (self._bump / "
                    f"self._generations) — caches would never notice the mutation",
                )

    @staticmethod
    def _relation_mutation(method: ast.AST) -> ast.AST | None:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and self_attr_base(target) == "_relations"
                    ):
                        return node
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if self_attr_base(target) == "_relations":
                        return node
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MAPPING_MUTATORS
                and self_attr_base(node.func.value) == "_relations"
            ):
                return node
        return None
