"""REP108 ``doc-refs``: the documentation references only things that exist.

The former standalone checker :mod:`repro.tools.check_docs` folded into the
lint framework as a repo-level rule, so ``python -m repro.tools.lint`` is
the single static-analysis entry point.  The verification logic is
unchanged (and still lives in ``check_docs`` — the shim module reuses it):
relative markdown links must resolve on disk, backticked dotted
``repro.*`` paths must import (or resolve as attributes of their longest
importable prefix), and backticked repo-relative file paths/globs must
exist.  See :func:`repro.tools.check_docs.check_file` for the details.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.tools.check_docs import check_file
from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import Rule, register

__all__ = ["DocRefsRule"]


@register
class DocRefsRule(Rule):
    """Markdown links, module paths and file references must not rot."""

    code = "REP108"
    name = "doc-refs"
    description = (
        "docs/*.md and README.md may only reference files, modules and "
        "attributes that exist (folded from repro.tools.check_docs)"
    )
    default_paths = ()
    repo_level = True

    def check_repo(self, root: Path) -> Iterator[Diagnostic]:
        docs = sorted((root / "docs").glob("*.md")) + [root / "README.md"]
        for doc in docs:
            if not doc.exists():
                continue
            for problem in check_file(doc, root):
                # check_file reports "relative/path.md: message" strings.
                path, _, message = problem.partition(": ")
                yield Diagnostic(
                    path=path,
                    line=0,
                    column=0,
                    code=self.code,
                    rule=self.name,
                    message=message or problem,
                )
