"""REP102 ``lock-discipline``: lifecycle state mutates only under its lock.

The cache-lifecycle stores (:class:`~repro.datalog.lifecycle.LifecycleCache`,
:class:`~repro.datalog.lifecycle.RequestCache`) are shared across threads by
the async facade, so every *mutation* of their state must happen inside a
``with self._lock:`` block — the PR-5 bug class this rule pins is shared
lifecycle state touched outside its lock.

For every class whose ``__init__`` binds ``self._lock``, the attributes
assigned in ``__init__`` become the *guarded set*, and outside ``__init__``
the rule flags, when they occur lexically outside a ``with self._lock:``
block:

* assignments / augmented assignments / deletions whose target is rooted
  at a guarded attribute (``self._entries[k] = ...``,
  ``self.stats.rejected += 1``, ``del self._entries[k]``);
* calls of mutating container methods on a guarded attribute
  (``self._entries.pop(...)``, ``.clear()``, ``.move_to_end(...)``, ...);
* calls of ``self.*_locked()`` helpers — the naming convention for methods
  whose contract is "caller already holds the lock".

Methods named ``*_locked`` are themselves exempt (their callers are
checked instead), and plain *reads* are deliberately allowed: the
unbounded-store fast path reads ``self._entries`` without the lock by
design (single dict read, no recency update), and telemetry reads accept
a torn counter snapshot.  See ``docs/invariants.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.astutil import is_self_attr, self_attr_base
from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import ModuleInfo, Rule, register

__all__ = ["LockDisciplineRule"]

#: Container methods that mutate their receiver.
_MUTATORS = frozenset(
    {
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "add",
        "move_to_end",
        "__setitem__",
        "__delitem__",
    }
)


def _guarded_attributes(init: ast.FunctionDef) -> frozenset[str]:
    """Attributes assigned on ``self`` in ``__init__`` (minus the lock itself)."""
    guarded: set[str] = set()
    for node in ast.walk(init):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                base = self_attr_base(target)
                if base is not None:
                    guarded.add(base)
    guarded.discard("_lock")
    return frozenset(guarded)


def _is_lock_with(stmt: ast.With | ast.AsyncWith) -> bool:
    return any(is_self_attr(item.context_expr, "_lock") for item in stmt.items)


@register
class LockDisciplineRule(Rule):
    """Mutations of lock-guarded state must hold ``self._lock``."""

    code = "REP102"
    name = "lock-discipline"
    description = (
        "attributes initialized by a _lock-carrying __init__ may only be "
        "mutated inside `with self._lock:` (the PR-5 unlocked-state bug class)"
    )
    default_paths = ("src/repro/datalog/lifecycle.py",)

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef) -> Iterator[Diagnostic]:
        init = next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        has_lock = any(
            self_attr_base(t) == "_lock"
            for stmt in ast.walk(init)
            if isinstance(stmt, ast.Assign)
            for t in stmt.targets
        )
        if not has_lock:
            return
        guarded = _guarded_attributes(init)
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            for stmt in method.body:
                yield from self._walk(module, cls.name, method.name, guarded, stmt, False)

    def _walk(
        self,
        module: ModuleInfo,
        cls_name: str,
        method: str,
        guarded: frozenset[str],
        node: ast.AST,
        locked: bool,
    ) -> Iterator[Diagnostic]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or _is_lock_with(node)
            for item in node.items:
                yield from self._walk(module, cls_name, method, guarded, item, locked)
            for stmt in node.body:
                yield from self._walk(module, cls_name, method, guarded, stmt, inner)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)) and not locked:
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                flat = target.elts if isinstance(target, ast.Tuple) else [target]
                for element in flat:
                    base = self_attr_base(element)
                    if base in guarded:
                        yield self.diagnostic(
                            module,
                            node,
                            f"{cls_name}.{method} writes self.{base} outside "
                            f"`with self._lock:`",
                        )
        if isinstance(node, ast.Delete) and not locked:
            for target in node.targets:
                base = self_attr_base(target)
                if base in guarded:
                    yield self.diagnostic(
                        module,
                        node,
                        f"{cls_name}.{method} deletes from self.{base} outside "
                        f"`with self._lock:`",
                    )
        if isinstance(node, ast.Call) and not locked and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                base = self_attr_base(node.func.value)
                if base in guarded:
                    yield self.diagnostic(
                        module,
                        node,
                        f"{cls_name}.{method} calls self.{base}.{node.func.attr}() "
                        f"outside `with self._lock:`",
                    )
            if node.func.attr.endswith("_locked") and is_self_attr(
                node.func, node.func.attr
            ):
                yield self.diagnostic(
                    module,
                    node,
                    f"{cls_name}.{method} calls self.{node.func.attr}() — a "
                    f"caller-holds-lock helper — outside `with self._lock:`",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(module, cls_name, method, guarded, child, locked)
