"""The battery of project-invariant lint rules.

Importing this package registers every rule with the framework registry
(:func:`repro.tools.lint.framework.all_rules` does so lazily).  One module
per rule; each module's docstring is the rule's full specification,
including the historical bug class that motivated it — ``docs/invariants.md``
is the narrative companion.

=======  =====================  ====================================================
code     name                   invariant
=======  =====================  ====================================================
REP101   exact-arithmetic       index computations stay in exact Fractions
REP102   lock-discipline        lifecycle state mutates only under ``self._lock``
REP103   generation-probe       memo reads refresh; relation mutations bump
REP104   pool-picklable         only module-level callables cross the pool boundary
REP105   no-silent-except       no bare/swallowed broad exception handlers
REP106   public-api             module docstrings + complete ``__all__`` coverage
REP107   stable-cache-key       cache keys are deterministic and value-based
REP108   doc-refs               documentation references resolve (check_docs fold)
REP109   lock-order             static lock-acquisition graph is acyclic/consistent
REP110   blocking-under-lock    no blocking primitive reachable under a state lock
REP111   unguarded-shared-state cross-thread mutations hold the owning lock
REP114   blocking-in-coroutine  no sync blocking op reachable on the event loop
REP115   resource-pairing       acquires dominated by a release on every exit edge
REP116   dropped-task           spawned tasks are awaited, retained, or callback'd
=======  =====================  ====================================================

REP109–REP111 and REP114–REP116 are *program-level* rules built on the
whole-program call graph (:mod:`repro.tools.lint.callgraph`) — the latter
trio on its async domain (``await`` edges, task spawns, executor
escapes).  Codes REP112 (*unused-pragma*)
and REP113 (*unknown-pragma*) are reserved for the framework's own pragma
audit — like REP100 (*parse-error*) they have no ``Rule`` class and cannot
be suppressed by pragmas.
"""

from repro.tools.lint.rules.api_surface import ApiSurfaceRule
from repro.tools.lint.rules.blocking_in_coroutine import BlockingInCoroutineRule
from repro.tools.lint.rules.blocking_under_lock import BlockingUnderLockRule
from repro.tools.lint.rules.cache_keys import StableCacheKeyRule
from repro.tools.lint.rules.doc_refs import DocRefsRule
from repro.tools.lint.rules.dropped_task import DroppedTaskRule
from repro.tools.lint.rules.exact_arithmetic import ExactArithmeticRule
from repro.tools.lint.rules.generation_probe import GenerationProbeRule
from repro.tools.lint.rules.lock_discipline import LockDisciplineRule
from repro.tools.lint.rules.lock_order import LockOrderRule
from repro.tools.lint.rules.pool_boundary import PoolBoundaryRule
from repro.tools.lint.rules.resource_pairing import ResourcePairingRule
from repro.tools.lint.rules.shared_state import SharedStateRule
from repro.tools.lint.rules.silent_except import SilentExceptRule

__all__ = [
    "ApiSurfaceRule",
    "BlockingInCoroutineRule",
    "BlockingUnderLockRule",
    "DocRefsRule",
    "DroppedTaskRule",
    "ExactArithmeticRule",
    "GenerationProbeRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "PoolBoundaryRule",
    "ResourcePairingRule",
    "SharedStateRule",
    "SilentExceptRule",
    "StableCacheKeyRule",
]
