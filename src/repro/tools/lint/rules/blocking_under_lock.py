"""REP110: nothing that blocks may run while a state lock is held.

The state locks in this codebase (``LifecycleCache``, ``RequestCache``,
``ShardedEvaluator``, ``AsyncMetaqueryEngine``) guard micro-critical
sections: counter bumps, dict moves, telemetry snapshots.  Every consumer
— including the event loop threads the ROADMAP server track will put on
top — assumes those sections complete in microseconds.  A pool dispatch,
``Queue.get``, ``Thread.join``, ``subprocess``/``asyncio`` entry point, or
file I/O inside such a region turns every concurrent cache hit into a
convoy behind the slow operation, and a ``join`` on a worker that itself
needs the lock is a deadlock.

The check is transitive over the whole-program call graph: a locked
region that calls a helper which calls ``pool.map`` is flagged with the
full chain, not just direct calls.  Blocking primitives are recognised
conservatively — typed receivers for ``join``/``get``/``put`` (so
``str.join`` and ``dict.get`` never match), distinctive dotted stdlib
calls (``time.sleep``, ``subprocess.run``), pool-dispatch method names,
and file I/O (``open``, ``Path.read_text``).  The fix is always the same
shape: take what you need under the lock, drop the lock, then block
(see ``ShardedEvaluator.reset``, which terminates its pool *after*
swapping the pointer out under the lock).
"""

from __future__ import annotations

from typing import Iterable

from repro.tools.lint.callgraph import Program
from repro.tools.lint.diagnostics import Diagnostic
from repro.tools.lint.framework import Rule, register

__all__ = ["BlockingUnderLockRule"]


@register
class BlockingUnderLockRule(Rule):
    """No blocking primitive may be reachable while a state lock is held."""

    code = "REP110"
    name = "blocking-under-lock"
    description = (
        "no pool dispatch, queue/thread wait, asyncio entry point, or file "
        "I/O may be reachable (transitively) from inside a with-self._lock "
        "region"
    )
    program_level = True

    def check_program(self, program: Program) -> Iterable[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for fn in sorted(program.functions.values(), key=lambda f: f.qualname):
            for site in fn.calls:
                if not site.held:
                    continue
                held = ", ".join(sorted(site.held))
                if site.blocking is not None:
                    diagnostics.append(
                        Diagnostic(
                            path=fn.relpath,
                            line=site.node.lineno,
                            column=site.node.col_offset,
                            code=self.code,
                            rule=self.name,
                            message=(
                                f"{site.blocking} while holding {held}: move the "
                                "blocking operation outside the locked region"
                            ),
                        )
                    )
                    continue
                for callee in site.callees:
                    witness = program.blocking_witness(callee)
                    if witness is None:
                        continue
                    chain, descriptor = witness
                    path = " -> ".join(chain)
                    diagnostics.append(
                        Diagnostic(
                            path=fn.relpath,
                            line=site.node.lineno,
                            column=site.node.col_offset,
                            code=self.code,
                            rule=self.name,
                            message=(
                                f"call while holding {held} reaches {descriptor} "
                                f"via {path}: restructure so the lock is released "
                                "before blocking"
                            ),
                        )
                    )
                    break  # one witness per call site is enough
        return diagnostics
