"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["self_attr_base", "is_self_attr", "contains_call", "walk_functions"]


def self_attr_base(node: ast.AST) -> str | None:
    """The name of the ``self`` attribute at the base of an access chain.

    ``self._entries`` → ``"_entries"``; ``self._entries[key]`` →
    ``"_entries"``; ``self.stats.rejected`` → ``"stats"``;
    ``other._entries`` → ``None``.  Descends through subscripts and nested
    attributes until it reaches the attribute hanging directly off the
    ``self`` name (or gives up).
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def is_self_attr(node: ast.AST, attr: str) -> bool:
    """True for the exact expression ``self.<attr>``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def contains_call(body: list[ast.stmt], predicate) -> bool:
    """True when any :class:`ast.Call` in ``body`` satisfies ``predicate``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and predicate(node):
                return True
    return False


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the tree, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
