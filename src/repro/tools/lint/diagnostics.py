"""Diagnostics: what a lint rule reports and how it is rendered.

A :class:`Diagnostic` is one finding anchored to a ``file:line:column``
location, tagged with the rule's stable *code* (``REP1xx``) and
human-readable *name* (``exact-arithmetic``).  The two output formats are

* ``text`` — one ``path:line:col: CODE [name] message`` line per finding,
  the format editors and CI logs understand;
* ``json`` — a machine-readable list of objects (``python -m
  repro.tools.lint --format json``), consumed by tests and tooling;
* ``github`` — GitHub Actions workflow-command annotations
  (``::error file=...,line=...``), so a CI lint failure is pinned to the
  offending line directly in the pull-request diff view.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

__all__ = ["Diagnostic", "FORMATS", "render"]

FORMATS = ("text", "json", "github")


def _escape_data(value: str) -> str:
    """Escape a workflow-command data field (the message after ``::``)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (``file=``, ``title=``)."""
    return _escape_data(value).replace(":", "%3A").replace(",", "%2C")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, ordered by location for stable reports."""

    path: str  #: repo-relative (or absolute, outside the repo) file path
    line: int  #: 1-based line number; 0 for whole-file findings
    column: int  #: 0-based column offset
    code: str  #: stable rule code, e.g. ``"REP101"``
    rule: str  #: rule name, e.g. ``"exact-arithmetic"``
    message: str  #: what is wrong and, where short, how to fix it

    def format_text(self) -> str:
        """The one-line editor/CI rendering of this finding."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} [{self.rule}] {self.message}"

    def format_github(self) -> str:
        """The GitHub Actions ``::error`` workflow-command rendering.

        Columns are 0-based internally but 1-based in annotations; line 0
        (whole-file findings) anchors at line 1 so the annotation still
        attaches to the file.
        """
        line = self.line or 1
        return (
            f"::error file={_escape_property(self.path)},line={line},"
            f"col={self.column + 1},title={_escape_property(f'{self.code} {self.rule}')}"
            f"::{_escape_data(self.message)}"
        )

    def as_dict(self) -> dict[str, object]:
        """A JSON-serializable representation."""
        return asdict(self)


def render(diagnostics: list[Diagnostic], fmt: str = "text") -> str:
    """Render a finding list in one of the :data:`FORMATS`."""
    if fmt == "json":
        return json.dumps([d.as_dict() for d in sorted(diagnostics)], indent=2)
    if fmt == "github":
        return "\n".join(d.format_github() for d in sorted(diagnostics))
    if fmt != "text":
        raise ValueError(
            f"unknown lint output format {fmt!r}; use one of {', '.join(FORMATS)}"
        )
    return "\n".join(d.format_text() for d in sorted(diagnostics))
