"""Runtime event-loop monitor: stall recording for the asyncio server track.

REP114 (:mod:`repro.tools.lint.rules.blocking_in_coroutine`) statically
proves no *known* blocking primitive is reachable from a coroutine; this
module watches what actually happens.  An asyncio event loop runs every
ready callback — plain ``call_soon`` callbacks and coroutine task steps
alike — through ``asyncio.events.Handle._run``.  When the monitor is
installed, that method is wrapped with a timer: any single callback slice
that exceeds the **stall budget** is recorded as a :class:`Stall` naming
the offending callback (for a task step, the coroutine's qualified name
and defining ``file:line`` — the frame to go fix).  A stalled slice is
precisely the failure mode the static rule closes: while it runs, every
other connection, stream, and timer in the process waits.

Like the lock sanitizer, adoption is opt-in and zero-overhead when off:

* ``REPRO_LOOP_MONITOR=1`` arms :func:`maybe_install`, which the server's
  :meth:`MetaqueryServer.start <repro.server.service.MetaqueryServer.start>`
  and the server test suite's autouse fixture both call — production code
  never pays for the instrumentation unless asked;
* ``REPRO_LOOP_BUDGET`` (seconds, default ``0.25``) tunes the budget;
  :func:`install` takes an explicit override for tests;
* the registry is process-global and mutex-guarded, because stalls are
  recorded on the loop thread and asserted on the test thread.

The pytest side lives in ``tests/server/conftest.py``: an autouse fixture
installs the monitor when enabled, resets the registry before each test,
and fails any server test whose run stalled the loop past the budget — CI
runs the server suite under ``REPRO_LOOP_MONITOR=1`` so a regression that
re-introduces on-loop blocking work fails loudly, not as a latency
mystery.
"""

from __future__ import annotations

import asyncio.events
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "BUDGET_ENV",
    "DEFAULT_BUDGET",
    "ENV_FLAG",
    "Stall",
    "budget",
    "enabled",
    "install",
    "installed",
    "maybe_install",
    "report",
    "reset",
    "stalls",
    "uninstall",
]

ENV_FLAG = "REPRO_LOOP_MONITOR"
BUDGET_ENV = "REPRO_LOOP_BUDGET"
#: Seconds a single callback slice may run before it counts as a stall.
DEFAULT_BUDGET = 0.25


@dataclass(frozen=True)
class Stall:
    """One callback slice that held the event loop past the budget."""

    duration: float  #: seconds the slice ran
    budget: float  #: the budget it exceeded, at recording time
    callback: str  #: the offending callback (coroutine qualname + file:line)
    thread: str  #: name of the thread whose loop stalled

    def describe(self) -> str:
        """A one-line human-readable account of the stall."""
        return (
            f"event-loop stall: {self.callback} held the loop on thread "
            f"{self.thread!r} for {self.duration * 1000.0:.1f}ms "
            f"(budget {self.budget * 1000.0:.1f}ms)"
        )


def _describe_callback(callback: object) -> str:
    """Name the code a loop callback will run — the frame to go fix.

    Task steps expose their coroutine (``__self__.get_coro()``); plain
    callbacks expose ``__qualname__``/``__code__``.  Anything opaque
    falls back to ``repr``.
    """
    target = getattr(callback, "__self__", None)
    get_coro = getattr(target, "get_coro", None)
    if get_coro is not None:
        coro = get_coro()
        code = getattr(coro, "cr_code", None)
        name = getattr(coro, "__qualname__", None) or repr(coro)
        if code is not None:
            return f"{name} ({code.co_filename}:{code.co_firstlineno})"
        return str(name)
    code = getattr(callback, "__code__", None)
    name = getattr(callback, "__qualname__", None)
    if name is not None and code is not None:
        return f"{name} ({code.co_filename}:{code.co_firstlineno})"
    if name is not None:
        return str(name)
    return repr(callback)


class _Registry:
    """Process-global monitor state, guarded by a plain mutex."""

    def __init__(self) -> None:
        self.mutex = threading.Lock()
        self.stalls: list[Stall] = []
        self.slices = 0  #: callback slices observed since the last reset
        self.budget = DEFAULT_BUDGET
        self.installed = False

    def record(self, duration: float, callback_description: str) -> None:
        thread = threading.current_thread().name
        with self.mutex:
            self.stalls.append(
                Stall(
                    duration=duration,
                    budget=self.budget,
                    callback=callback_description,
                    thread=thread,
                )
            )

    def clear(self) -> None:
        with self.mutex:
            self.stalls.clear()
            self.slices = 0


_REGISTRY = _Registry()

#: The pristine ``Handle._run``, captured at import so the wrapper can
#: always delegate to it regardless of install/uninstall interleavings.
_ORIGINAL_RUN: Callable[[asyncio.events.Handle], None] = getattr(
    asyncio.events.Handle, "_run"
)


def _instrumented_run(handle: asyncio.events.Handle) -> None:
    """The wrapped ``Handle._run``: time one slice, record it if over budget.

    The callback is described *before* it runs — a stalled slice may be
    stalled because the callback's own state is wedged, and the evidence
    must not depend on it.
    """
    with _REGISTRY.mutex:
        _REGISTRY.slices += 1
        over = _REGISTRY.budget
    description = _describe_callback(getattr(handle, "_callback", None))
    start = time.perf_counter()
    try:
        _ORIGINAL_RUN(handle)
    finally:
        duration = time.perf_counter() - start
        if duration > over:
            _REGISTRY.record(duration, description)


def enabled() -> bool:
    """True when ``REPRO_LOOP_MONITOR=1`` is set in the environment now."""
    return os.environ.get(ENV_FLAG) == "1"


def _budget_from_env() -> float:
    raw = os.environ.get(BUDGET_ENV)
    if raw is None:
        return DEFAULT_BUDGET
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{BUDGET_ENV} must be a number of seconds, got {raw!r}"
        ) from None
    if value <= 0:
        raise ValueError(f"{BUDGET_ENV} must be positive, got {value!r}")
    return value


def budget() -> float:
    """The active stall budget in seconds."""
    with _REGISTRY.mutex:
        return _REGISTRY.budget


def installed() -> bool:
    """True while ``Handle._run`` is wrapped."""
    with _REGISTRY.mutex:
        return _REGISTRY.installed


def install(budget: float | None = None) -> None:
    """Wrap ``asyncio.events.Handle._run`` with the stall timer.

    Idempotent; a repeat call only updates the budget.  ``budget`` is in
    seconds and defaults to ``REPRO_LOOP_BUDGET`` or :data:`DEFAULT_BUDGET`.
    Affects every event loop in the process, including loops running on
    other threads — which is the point: the server harness runs its loop
    on a private thread.
    """
    resolved = _budget_from_env() if budget is None else float(budget)
    if resolved <= 0:
        raise ValueError(f"stall budget must be positive, got {resolved!r}")
    with _REGISTRY.mutex:
        _REGISTRY.budget = resolved
        if _REGISTRY.installed:
            return
        _REGISTRY.installed = True
    setattr(asyncio.events.Handle, "_run", _instrumented_run)


def uninstall() -> None:
    """Restore the original ``Handle._run`` (idempotent)."""
    with _REGISTRY.mutex:
        was_installed, _REGISTRY.installed = _REGISTRY.installed, False
    if was_installed:
        setattr(asyncio.events.Handle, "_run", _ORIGINAL_RUN)


def maybe_install() -> None:
    """Install iff ``REPRO_LOOP_MONITOR=1`` — the production hook.

    Called by :meth:`MetaqueryServer.start
    <repro.server.service.MetaqueryServer.start>` so flipping the env var
    instruments a served process with no code change; a no-op otherwise.
    """
    if enabled():
        install()


def reset() -> None:
    """Drop every recorded stall and the slice counter."""
    _REGISTRY.clear()


def stalls() -> tuple[Stall, ...]:
    """Every stall recorded since the last :func:`reset`."""
    with _REGISTRY.mutex:
        return tuple(_REGISTRY.stalls)


def report() -> dict[str, Any]:
    """A snapshot for test teardown and CI logs."""
    with _REGISTRY.mutex:
        return {
            "enabled": enabled(),
            "installed": _REGISTRY.installed,
            "budget": _REGISTRY.budget,
            "slices": _REGISTRY.slices,
            "stalls": [stall.describe() for stall in _REGISTRY.stalls],
        }
