"""Unbounded fan-in boolean circuits with AND, OR, NOT and MAJORITY gates.

The circuit model follows Definitions 3.3 and 3.4 of the paper: AC0 circuits
use AND/OR/NOT gates of unbounded fan-in with constant depth and polynomial
size; TC0 circuits use MAJORITY and NOT gates.  Circuits here are DAGs of
gates stored in topological order; named input gates are bound to bits at
evaluation time, which is how a circuit built for a database *schema* and
size is evaluated against a concrete database instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Hashable, Iterable, Mapping, Sequence

from repro.exceptions import CircuitError

__all__ = ["GateKind", "Gate", "BooleanCircuit"]


class GateKind(str, Enum):
    """The gate types of the AC0 / TC0 circuit model."""

    INPUT = "input"
    CONST = "const"
    NOT = "not"
    AND = "and"
    OR = "or"
    MAJORITY = "majority"


@dataclass(frozen=True)
class Gate:
    """One gate: its kind, its input wire ids, and (for inputs/constants) a payload.

    ``payload`` is the input name for INPUT gates and the constant bit for
    CONST gates; it is unused otherwise.
    """

    kind: GateKind
    inputs: tuple[int, ...] = ()
    payload: Hashable = None


class BooleanCircuit:
    """A boolean circuit: gates in topological order plus a designated output."""

    def __init__(self) -> None:
        self._gates: list[Gate] = []
        self._input_ids: dict[Hashable, int] = {}
        self.output: int | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, gate: Gate) -> int:
        for wire in gate.inputs:
            if not 0 <= wire < len(self._gates):
                raise CircuitError(f"gate input wire {wire} does not exist yet")
        self._gates.append(gate)
        return len(self._gates) - 1

    def input(self, name: Hashable) -> int:
        """An input gate (deduplicated by name)."""
        if name in self._input_ids:
            return self._input_ids[name]
        gate_id = self._add(Gate(GateKind.INPUT, (), name))
        self._input_ids[name] = gate_id
        return gate_id

    def const(self, value: bool) -> int:
        """A constant gate."""
        return self._add(Gate(GateKind.CONST, (), bool(value)))

    def not_(self, wire: int) -> int:
        """A NOT gate."""
        return self._add(Gate(GateKind.NOT, (wire,)))

    def and_(self, wires: Sequence[int]) -> int:
        """An unbounded fan-in AND gate (empty fan-in is the constant 1)."""
        if not wires:
            return self.const(True)
        return self._add(Gate(GateKind.AND, tuple(wires)))

    def or_(self, wires: Sequence[int]) -> int:
        """An unbounded fan-in OR gate (empty fan-in is the constant 0)."""
        if not wires:
            return self.const(False)
        return self._add(Gate(GateKind.OR, tuple(wires)))

    def majority(self, wires: Sequence[int]) -> int:
        """A MAJORITY gate: outputs 1 iff more than half of its inputs are 1."""
        if not wires:
            raise CircuitError("a MAJORITY gate needs at least one input")
        return self._add(Gate(GateKind.MAJORITY, tuple(wires)))

    def set_output(self, wire: int) -> None:
        """Designate the output wire."""
        if not 0 <= wire < len(self._gates):
            raise CircuitError(f"output wire {wire} does not exist")
        self.output = wire

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def gates(self) -> tuple[Gate, ...]:
        """All gates in topological order."""
        return tuple(self._gates)

    @property
    def input_names(self) -> tuple[Hashable, ...]:
        """The names of the input gates, in creation order."""
        return tuple(self._input_ids)

    def size(self) -> int:
        """Number of non-input, non-constant gates (the usual size measure)."""
        return sum(1 for g in self._gates if g.kind not in (GateKind.INPUT, GateKind.CONST))

    def gate_count(self) -> int:
        """Total number of gates including inputs and constants."""
        return len(self._gates)

    def depth(self) -> int:
        """Longest path from an input/constant to the output, counting logic gates."""
        if self.output is None:
            raise CircuitError("circuit has no output gate")
        depths = [0] * len(self._gates)
        for i, gate in enumerate(self._gates):
            if gate.kind in (GateKind.INPUT, GateKind.CONST):
                depths[i] = 0
            else:
                depths[i] = 1 + max((depths[w] for w in gate.inputs), default=0)
        return depths[self.output]

    def uses_majority(self) -> bool:
        """True when the circuit contains at least one MAJORITY gate (TC0 vs AC0)."""
        return any(g.kind is GateKind.MAJORITY for g in self._gates)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Mapping[Hashable, bool], default: bool | None = False) -> bool:
        """Evaluate the circuit on a named-input assignment.

        ``default`` supplies the value of input names missing from the
        mapping; pass ``None`` to make missing inputs an error instead.
        """
        if self.output is None:
            raise CircuitError("circuit has no output gate")
        values = [False] * len(self._gates)
        for i, gate in enumerate(self._gates):
            if gate.kind is GateKind.INPUT:
                if gate.payload in inputs:
                    values[i] = bool(inputs[gate.payload])
                elif default is None:
                    raise CircuitError(f"missing value for input {gate.payload!r}")
                else:
                    values[i] = default
            elif gate.kind is GateKind.CONST:
                values[i] = bool(gate.payload)
            elif gate.kind is GateKind.NOT:
                values[i] = not values[gate.inputs[0]]
            elif gate.kind is GateKind.AND:
                values[i] = all(values[w] for w in gate.inputs)
            elif gate.kind is GateKind.OR:
                values[i] = any(values[w] for w in gate.inputs)
            elif gate.kind is GateKind.MAJORITY:
                ones = sum(1 for w in gate.inputs if values[w])
                values[i] = ones * 2 > len(gate.inputs)
            else:  # pragma: no cover - exhaustive enum
                raise CircuitError(f"unknown gate kind {gate.kind}")
        return values[self.output]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BooleanCircuit(gates={self.gate_count()}, size={self.size()}, "
            f"inputs={len(self._input_ids)})"
        )
