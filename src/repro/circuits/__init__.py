"""Boolean and arithmetic circuit families for the data-complexity theorems.

Theorem 3.37 places threshold-0 metaquerying (fixed metaquery, varying
database) in AC0, and Theorem 3.38 places the general thresholded problem in
TC0; both proofs are constructive, and this package builds the actual
circuits:

* :mod:`~repro.circuits.circuit` — unbounded fan-in boolean circuits with
  AND / OR / NOT / MAJORITY gates, evaluation, size and depth accounting;
* :mod:`~repro.circuits.arithmetic` — ``#AC0`` arithmetic circuits (+, ×
  gates over ``N``) and GapAC0 functions (differences of two ``#AC0``
  functions, Definitions 3.5-3.7);
* :mod:`~repro.circuits.builders` — the constructions themselves: the
  tuple-wise database input encoding, the conjunctive-query satisfaction
  circuit, the metaquery threshold-0 circuit (an OR over all instantiations)
  and the Lemma 3.39 majority comparator deciding ``|Qn| / |Qd| > a/b``.

For a *fixed* metaquery the circuits produced have constant depth and size
polynomial in the database size — the property the Figure 5 data-complexity
benchmarks measure empirically.
"""

from repro.circuits.circuit import BooleanCircuit, Gate, GateKind
from repro.circuits.arithmetic import ArithmeticCircuit, ArithmeticGate, GapFunction
from repro.circuits.builders import (
    DatabaseEncoding,
    cq_satisfaction_circuit,
    index_threshold_circuit,
    metaquery_threshold0_circuit,
    tuple_count_circuit,
)

__all__ = [
    "GateKind",
    "Gate",
    "BooleanCircuit",
    "ArithmeticGate",
    "ArithmeticCircuit",
    "GapFunction",
    "DatabaseEncoding",
    "cq_satisfaction_circuit",
    "metaquery_threshold0_circuit",
    "tuple_count_circuit",
    "index_threshold_circuit",
]
