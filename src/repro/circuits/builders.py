"""Circuit constructions for the data-complexity theorems.

Everything here is parameterised by a :class:`DatabaseEncoding` — a fixed
database schema plus a fixed, ordered domain — which plays the role of the
"database size ``i``" in the uniform circuit families of Section 3.5: one
circuit is built per (schema, domain-size) pair and then evaluated on any
concrete database instance over that schema and domain via the tuple-wise
0/1 input encoding.

* :func:`cq_satisfaction_circuit` — the AC0 circuit deciding whether a fixed
  conjunctive query is satisfiable over an encoded database (the building
  block cited from [6] in Theorem 3.37's proof);
* :func:`metaquery_threshold0_circuit` — Theorem 3.37: an OR over all
  type-T instantiations of the per-instantiation satisfiability circuits of
  the certifying sets;
* :func:`tuple_count_circuit` — a ``#AC0`` circuit counting the satisfying
  substitutions of an atom set (all variables kept);
* :func:`index_threshold_circuit` — Lemma 3.39 / Theorem 3.38: a TC0 circuit
  (one MAJORITY gate over AC0 membership indicators) deciding
  ``I(rule) > a/b`` for ``I ∈ {cnf, cvr, sup}``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable, Mapping, Sequence

from repro.circuits.arithmetic import ArithmeticCircuit, GapFunction
from repro.circuits.circuit import BooleanCircuit
from repro.core.answers import validate_threshold
from repro.core.indices import certifying_set, get_index
from repro.core.instantiation import InstantiationType, enumerate_instantiations
from repro.core.metaquery import MetaQuery
from repro.datalog.atoms import Atom, variables_of
from repro.datalog.rules import HornRule
from repro.datalog.terms import Constant, Variable
from repro.exceptions import CircuitError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

__all__ = [
    "DatabaseEncoding",
    "cq_satisfaction_circuit",
    "metaquery_threshold0_circuit",
    "tuple_count_circuit",
    "confidence_gap_function",
    "index_threshold_circuit",
]


@dataclass(frozen=True)
class DatabaseEncoding:
    """A fixed schema and ordered domain defining the tuple-wise input encoding.

    Input bit names are ``(relation_name, tuple)`` pairs; a bit is 1 when the
    tuple belongs to the relation.  The number of bits is
    ``Σ_R |domain|^arity(R)`` — polynomial in the domain size for a fixed
    schema, which is what keeps the circuit families polynomial.
    """

    arities: tuple[tuple[str, int], ...]
    domain: tuple[Any, ...]

    def __init__(self, arities: Mapping[str, int], domain: Sequence[Any]) -> None:
        object.__setattr__(self, "arities", tuple(sorted(arities.items())))
        object.__setattr__(self, "domain", tuple(domain))
        if not self.domain:
            raise CircuitError("the encoding domain must be non-empty")

    @classmethod
    def for_database(cls, db: Database, domain: Sequence[Any] | None = None) -> "DatabaseEncoding":
        """Derive an encoding from a concrete database (schema + active domain)."""
        dom = tuple(domain) if domain is not None else tuple(sorted(db.active_domain(), key=str))
        return cls(db.arities(), dom)

    # ------------------------------------------------------------------
    def arity_of(self, relation: str) -> int:
        """Arity of a relation of the schema."""
        for name, arity in self.arities:
            if name == relation:
                return arity
        raise CircuitError(f"relation {relation!r} is not part of the encoding schema")

    @property
    def relation_names(self) -> tuple[str, ...]:
        """All relation names of the fixed schema."""
        return tuple(name for name, _ in self.arities)

    def potential_tuples(self, relation: str) -> Iterable[tuple[Any, ...]]:
        """Every tuple over the domain that could belong to the relation."""
        return itertools.product(self.domain, repeat=self.arity_of(relation))

    def input_bits(self) -> list[tuple[str, tuple[Any, ...]]]:
        """All input bit names, in a deterministic order."""
        return [
            (name, tup) for name, _ in self.arities for tup in self.potential_tuples(name)
        ]

    def bit_count(self) -> int:
        """Total number of input bits (the circuit-family input length)."""
        return sum(len(self.domain) ** arity for _, arity in self.arities)

    def encode(self, db: Database) -> dict[tuple[str, tuple[Any, ...]], bool]:
        """Encode a concrete database instance as an input-bit assignment."""
        stray = db.active_domain() - frozenset(self.domain)
        if stray:
            raise CircuitError(f"database constants outside the encoding domain: {sorted(map(str, stray))}")
        bits: dict[tuple[str, tuple[Any, ...]], bool] = {}
        for name, _ in self.arities:
            relation = db[name] if name in db else None
            rows = relation.tuples if relation is not None else frozenset()
            for tup in self.potential_tuples(name):
                bits[(name, tup)] = tup in rows
        return bits

    def schema_database(self) -> Database:
        """An empty database over the schema (used to enumerate instantiations)."""
        relations = [
            Relation(RelationSchema(name, [f"c{i}" for i in range(arity)]), ())
            for name, arity in self.arities
        ]
        return Database(relations, name="schema-only")


# ----------------------------------------------------------------------
# AC0: conjunctive-query satisfaction and threshold-0 metaquerying
# ----------------------------------------------------------------------
def _assignments(variables: Sequence[Variable], domain: Sequence[Any]) -> Iterable[dict[Variable, Any]]:
    for values in itertools.product(domain, repeat=len(variables)):
        yield dict(zip(variables, values))


def _ground_tuple(atom: Atom, assignment: Mapping[Variable, Any]) -> tuple[Any, ...] | None:
    """The tuple named by an atom under an assignment; None when a constant is off-domain."""
    values = []
    for t in atom.terms:
        if isinstance(t, Variable):
            values.append(assignment[t])
        else:
            values.append(t.value)
    return tuple(values)


def _atoms_conjunct(circuit: BooleanCircuit, atoms: Sequence[Atom], assignment: Mapping[Variable, Any], encoding: DatabaseEncoding) -> int | None:
    """The AND gate of the atoms' input bits under one assignment, or None when impossible."""
    wires = []
    domain = set(encoding.domain)
    for atom in atoms:
        if atom.predicate not in encoding.relation_names:
            return None
        if encoding.arity_of(atom.predicate) != atom.arity:
            return None
        tup = _ground_tuple(atom, assignment)
        if any(value not in domain for value in tup):
            return None
        wires.append(circuit.input((atom.predicate, tup)))
    return circuit.and_(wires)


def cq_satisfaction_circuit(
    atoms: Sequence[Atom],
    encoding: DatabaseEncoding,
    circuit: BooleanCircuit | None = None,
) -> BooleanCircuit:
    """An AC0 circuit deciding satisfiability of a fixed conjunctive query.

    The circuit is an OR, over all assignments of the query's variables to
    domain values, of the AND of the corresponding tuple bits — depth 2 and
    size ``O(|domain|^{#variables})``, i.e. polynomial in the database for a
    fixed query.
    """
    circuit = circuit or BooleanCircuit()
    variables = list(variables_of(atoms))
    disjuncts = []
    for assignment in _assignments(variables, encoding.domain):
        wire = _atoms_conjunct(circuit, atoms, assignment, encoding)
        if wire is not None:
            disjuncts.append(wire)
    circuit.set_output(circuit.or_(disjuncts))
    return circuit


def metaquery_threshold0_circuit(
    mq: MetaQuery,
    encoding: DatabaseEncoding,
    index: str = "cnf",
    itype: InstantiationType | int = InstantiationType.TYPE_0,
) -> BooleanCircuit:
    """Theorem 3.37: the AC0 circuit for ``⟨DB, MQ, I, 0, T⟩`` under data complexity.

    One satisfiability subcircuit per type-T instantiation (over the fixed
    schema), of the instantiation's certifying set for the chosen index, all
    fed into a single OR gate.
    """
    index_obj = get_index(index)
    circuit = BooleanCircuit()
    outputs = []
    schema_db = encoding.schema_database()
    for instantiation in enumerate_instantiations(mq, schema_db, itype):
        rule = instantiation.apply(mq)
        atoms = certifying_set(rule, index_obj)
        variables = list(variables_of(atoms))
        disjuncts = []
        for assignment in _assignments(variables, encoding.domain):
            wire = _atoms_conjunct(circuit, atoms, assignment, encoding)
            if wire is not None:
                disjuncts.append(wire)
        outputs.append(circuit.or_(disjuncts))
    circuit.set_output(circuit.or_(outputs))
    return circuit


# ----------------------------------------------------------------------
# #AC0: counting circuits
# ----------------------------------------------------------------------
def tuple_count_circuit(atoms: Sequence[Atom], encoding: DatabaseEncoding) -> ArithmeticCircuit:
    """A #AC0 circuit computing ``|J(atoms)|`` (all variables kept).

    One product gate per assignment of the atom set's variables, all summed;
    depth 2, size polynomial in the domain for a fixed atom set.
    """
    circuit = ArithmeticCircuit()
    variables = list(variables_of(atoms))
    domain = set(encoding.domain)
    products = []
    for assignment in _assignments(variables, encoding.domain):
        factors = []
        possible = True
        for atom in atoms:
            if atom.predicate not in encoding.relation_names or encoding.arity_of(atom.predicate) != atom.arity:
                possible = False
                break
            tup = _ground_tuple(atom, assignment)
            if any(value not in domain for value in tup):
                possible = False
                break
            factors.append(circuit.input((atom.predicate, tup)))
        if possible:
            products.append(circuit.product(factors))
    circuit.set_output(circuit.sum(products))
    return circuit


def confidence_gap_function(rule: HornRule, k: Fraction, encoding: DatabaseEncoding) -> GapFunction:
    """The GapAC0 function ``b·|Qn| − a·|Qd|`` of Lemma 3.39 for the confidence index.

    Requires the rule to be range-restricted (head variables contained in the
    body variables), in which case both counts range over the full body
    variable set and stay within #AC0 without the characteristic-function
    detour.
    """
    if not rule.is_range_restricted():
        raise CircuitError("the confidence gap function requires a range-restricted rule")
    a, b = k.numerator, k.denominator
    numerator_atoms = list(rule.body_atoms) + [rule.head]
    positive_scaled = _scaled_count(numerator_atoms, b, encoding)
    negative_scaled = _scaled_count(list(rule.body_atoms), a, encoding)
    return GapFunction(positive=positive_scaled, negative=negative_scaled)


def _scaled_count(atoms: Sequence[Atom], factor: int, encoding: DatabaseEncoding) -> ArithmeticCircuit:
    """A #AC0 circuit computing ``factor * |J(atoms)|``."""
    circuit = ArithmeticCircuit()
    variables = list(variables_of(atoms))
    domain = set(encoding.domain)
    products = []
    for assignment in _assignments(variables, encoding.domain):
        factors = []
        possible = True
        for atom in atoms:
            if atom.predicate not in encoding.relation_names or encoding.arity_of(atom.predicate) != atom.arity:
                possible = False
                break
            tup = _ground_tuple(atom, assignment)
            if any(value not in domain for value in tup):
                possible = False
                break
            factors.append(circuit.input((atom.predicate, tup)))
        if possible:
            product = circuit.product(factors)
            products.extend([product] * factor)
    circuit.set_output(circuit.sum(products))
    return circuit


# ----------------------------------------------------------------------
# TC0: the Lemma 3.39 majority comparator
# ----------------------------------------------------------------------
def _projection_indicators(
    circuit: BooleanCircuit,
    atoms: Sequence[Atom],
    onto: Sequence[Variable],
    encoding: DatabaseEncoding,
) -> list[int]:
    """One AC0 indicator wire per potential tuple of ``π_onto(J(atoms))``.

    The indicator for a tuple ``t`` is an OR over all extensions of ``t`` to
    the remaining variables of an AND of the corresponding tuple bits — the
    multi-output circuit ``C'(Q)_i`` from Theorem 3.38's proof.
    """
    onto = list(onto)
    others = [v for v in variables_of(atoms) if v not in onto]
    indicators = []
    for onto_values in itertools.product(encoding.domain, repeat=len(onto)):
        base = dict(zip(onto, onto_values))
        disjuncts = []
        for extension in _assignments(others, encoding.domain):
            assignment = {**base, **extension}
            wire = _atoms_conjunct(circuit, atoms, assignment, encoding)
            if wire is not None:
                disjuncts.append(wire)
        indicators.append(circuit.or_(disjuncts))
    return indicators


def _majority_comparator(
    circuit: BooleanCircuit,
    numerator_wires: Sequence[int],
    denominator_wires: Sequence[int],
    k: Fraction,
) -> int:
    """A single-MAJORITY-gate wire deciding ``b·|num| > a·|den|`` with ``k = a/b``.

    ``numerator_wires`` / ``denominator_wires`` are indicator wires whose set
    bits count ``|num|`` and ``|den|``.  The construction pads with constants
    so the MAJORITY threshold lands exactly on ``a·|den|``.
    """
    a, b = k.numerator, k.denominator
    big_n, big_m = len(numerator_wires), len(denominator_wires)
    inputs: list[int] = []
    for wire in numerator_wires:
        inputs.extend([wire] * b)
    for wire in denominator_wires:
        inputs.extend([circuit.not_(wire)] * a)
    padding_ones = max(0, b * big_n - a * big_m)
    padding_zeros = a * big_m + padding_ones - b * big_n
    inputs.extend(circuit.const(True) for _ in range(padding_ones))
    inputs.extend(circuit.const(False) for _ in range(padding_zeros))
    return circuit.majority(inputs)


def index_threshold_circuit(
    rule: HornRule,
    index: str,
    k: Fraction | float,
    encoding: DatabaseEncoding,
) -> BooleanCircuit:
    """Theorem 3.38 / Lemma 3.39: a TC0 circuit deciding ``I(rule) > k``.

    The circuit has constant depth for a fixed rule: AC0 indicator layers for
    the potential result tuples of the relevant project--join expressions,
    one MAJORITY comparator per ratio, and (for support) an OR over the
    per-body-atom comparators.
    """
    k = validate_threshold(k, exc=CircuitError)
    name = get_index(index).name
    circuit = BooleanCircuit()

    if name == "cnf":
        numerator = _projection_indicators(circuit, rule.atoms, list(rule.body_variables), encoding)
        denominator = _projection_indicators(circuit, rule.body_atoms, list(rule.body_variables), encoding)
        circuit.set_output(_majority_comparator(circuit, numerator, denominator, k))
        return circuit
    if name == "cvr":
        numerator = _projection_indicators(circuit, rule.atoms, list(rule.head_variables), encoding)
        denominator = _projection_indicators(circuit, rule.head_atoms, list(rule.head_variables), encoding)
        circuit.set_output(_majority_comparator(circuit, numerator, denominator, k))
        return circuit
    if name == "sup":
        comparators = []
        for atom in rule.body_atoms:
            numerator = _projection_indicators(circuit, rule.body_atoms, list(atom.variables), encoding)
            denominator = _projection_indicators(circuit, [atom], list(atom.variables), encoding)
            comparators.append(_majority_comparator(circuit, numerator, denominator, k))
        circuit.set_output(circuit.or_(comparators))
        return circuit
    raise CircuitError(f"no threshold circuit construction for index {name!r}")
