"""#AC0 arithmetic circuits and GapAC0 functions (Definitions 3.5-3.7).

A ``#AC0`` circuit is a constant-depth, polynomial-size circuit over the
natural numbers with unbounded fan-in ``+`` and ``×`` gates, whose leaves
are the constants 0/1 or literals ``x_i`` / ``1 - x_i`` over boolean inputs.
A GapAC0 function is a difference of two ``#AC0`` functions; ``PAC0`` — the
languages expressible as "GapAC0 function > 0" — coincides with TC0
(Proposition 3.8), which is how Lemma 3.39 turns index-threshold tests into
majority circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, Mapping, Sequence

from repro.exceptions import CircuitError

__all__ = ["ArithmeticGateKind", "ArithmeticGate", "ArithmeticCircuit", "GapFunction"]


class ArithmeticGateKind(str, Enum):
    """Gate kinds allowed in a #AC0 circuit."""

    CONST = "const"        # constant 0 or 1
    INPUT = "input"        # boolean input used as the number 0/1
    NEGATED_INPUT = "neg"  # 1 - x for a boolean input x
    SUM = "sum"
    PRODUCT = "product"


@dataclass(frozen=True)
class ArithmeticGate:
    """One gate of an arithmetic circuit."""

    kind: ArithmeticGateKind
    inputs: tuple[int, ...] = ()
    payload: Hashable = None


class ArithmeticCircuit:
    """A #AC0 circuit: +/× gates over 0/1 leaves, evaluated in ``N``."""

    def __init__(self) -> None:
        self._gates: list[ArithmeticGate] = []
        self.output: int | None = None

    def _add(self, gate: ArithmeticGate) -> int:
        for wire in gate.inputs:
            if not 0 <= wire < len(self._gates):
                raise CircuitError(f"gate input wire {wire} does not exist yet")
        self._gates.append(gate)
        return len(self._gates) - 1

    # ------------------------------------------------------------------
    def const(self, value: int) -> int:
        """A constant leaf; only 0 and 1 are allowed (Definition 3.5)."""
        if value not in (0, 1):
            raise CircuitError("#AC0 circuits only allow the constants 0 and 1")
        return self._add(ArithmeticGate(ArithmeticGateKind.CONST, (), value))

    def input(self, name: Hashable) -> int:
        """A boolean input used as the number 0 or 1."""
        return self._add(ArithmeticGate(ArithmeticGateKind.INPUT, (), name))

    def negated_input(self, name: Hashable) -> int:
        """The value ``1 - x`` for a boolean input ``x``."""
        return self._add(ArithmeticGate(ArithmeticGateKind.NEGATED_INPUT, (), name))

    def sum(self, wires: Sequence[int]) -> int:
        """An unbounded fan-in + gate (empty fan-in is 0)."""
        if not wires:
            return self.const(0)
        return self._add(ArithmeticGate(ArithmeticGateKind.SUM, tuple(wires)))

    def product(self, wires: Sequence[int]) -> int:
        """An unbounded fan-in × gate (empty fan-in is 1)."""
        if not wires:
            return self.const(1)
        return self._add(ArithmeticGate(ArithmeticGateKind.PRODUCT, tuple(wires)))

    def number(self, value: int) -> int:
        """A gate computing an arbitrary natural constant from 0/1 leaves.

        Following the construction cited in the proof of Lemma 3.39, the
        binary expansion of ``value`` is realised with one + gate over
        products of 1-leaves (each product computing a power of two would
        need doubling; here we simply sum ``value`` constant-1 leaves, which
        keeps the circuit constant-depth and size linear in ``value`` — the
        thresholds the engine uses have small numerators/denominators).
        """
        if value < 0:
            raise CircuitError("#AC0 circuits compute natural numbers only")
        if value == 0:
            return self.const(0)
        ones = [self.const(1) for _ in range(value)]
        return self.sum(ones)

    def set_output(self, wire: int) -> None:
        """Designate the output gate."""
        if not 0 <= wire < len(self._gates):
            raise CircuitError(f"output wire {wire} does not exist")
        self.output = wire

    # ------------------------------------------------------------------
    @property
    def gates(self) -> tuple[ArithmeticGate, ...]:
        """All gates in topological order."""
        return tuple(self._gates)

    def size(self) -> int:
        """Number of + and × gates."""
        return sum(
            1 for g in self._gates if g.kind in (ArithmeticGateKind.SUM, ArithmeticGateKind.PRODUCT)
        )

    def depth(self) -> int:
        """Longest leaf-to-output path counting + and × gates."""
        if self.output is None:
            raise CircuitError("circuit has no output gate")
        depths = [0] * len(self._gates)
        for i, gate in enumerate(self._gates):
            if gate.inputs:
                depths[i] = 1 + max(depths[w] for w in gate.inputs)
        return depths[self.output]

    def evaluate(self, inputs: Mapping[Hashable, bool], default: bool = False) -> int:
        """Evaluate the circuit over ``N`` for a boolean input assignment."""
        if self.output is None:
            raise CircuitError("circuit has no output gate")
        values = [0] * len(self._gates)
        for i, gate in enumerate(self._gates):
            if gate.kind is ArithmeticGateKind.CONST:
                values[i] = int(gate.payload)
            elif gate.kind is ArithmeticGateKind.INPUT:
                values[i] = 1 if inputs.get(gate.payload, default) else 0
            elif gate.kind is ArithmeticGateKind.NEGATED_INPUT:
                values[i] = 0 if inputs.get(gate.payload, default) else 1
            elif gate.kind is ArithmeticGateKind.SUM:
                values[i] = sum(values[w] for w in gate.inputs)
            elif gate.kind is ArithmeticGateKind.PRODUCT:
                product = 1
                for w in gate.inputs:
                    product *= values[w]
                values[i] = product
            else:  # pragma: no cover - exhaustive enum
                raise CircuitError(f"unknown gate kind {gate.kind}")
        return values[self.output]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArithmeticCircuit(gates={len(self._gates)}, size={self.size()})"


@dataclass(frozen=True)
class GapFunction:
    """A GapAC0 function: the difference of two #AC0 circuits (Definition 3.6)."""

    positive: ArithmeticCircuit
    negative: ArithmeticCircuit

    def evaluate(self, inputs: Mapping[Hashable, bool], default: bool = False) -> int:
        """The (possibly negative) integer value of the gap function."""
        return self.positive.evaluate(inputs, default) - self.negative.evaluate(inputs, default)

    def accepts(self, inputs: Mapping[Hashable, bool], default: bool = False) -> bool:
        """The PAC0 acceptance condition: ``f(x) > 0`` (Definition 3.7)."""
        return self.evaluate(inputs, default) > 0

    def size(self) -> int:
        """Combined gate count of the two halves."""
        return self.positive.size() + self.negative.size()

    def depth(self) -> int:
        """Max depth of the two halves."""
        return max(self.positive.depth(), self.negative.depth())
