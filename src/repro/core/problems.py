"""Decision-problem wrappers for the complexity experiments.

The paper's complexity results (Figure 5) are about the decision problem
``⟨DB, MQ, I, k, T⟩``: *does some type-T instantiation of MQ over DB push
index I strictly above k?*  This module packages one such instance as an
object so the reduction modules and the Figure 5 benchmarks can construct,
classify and solve instances uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.core.acyclicity import classify
from repro.core.answers import MetaqueryAnswer, validate_threshold
from repro.core.indices import PlausibilityIndex, get_index
from repro.core.instantiation import InstantiationType
from repro.core.metaquery import MetaQuery
from repro.core.naive import naive_decide, naive_witness
from repro.relational.database import Database

__all__ = ["MetaqueryDecisionProblem"]


@dataclass
class MetaqueryDecisionProblem:
    """One instance ``⟨DB, MQ, I, k, T⟩`` of the metaquerying decision problem."""

    db: Database
    mq: MetaQuery
    index: PlausibilityIndex
    k: Fraction
    itype: InstantiationType
    label: str = field(default="")

    def __init__(
        self,
        db: Database,
        mq: MetaQuery,
        index: str | PlausibilityIndex,
        k: Fraction | float | int = 0,
        itype: InstantiationType | int = InstantiationType.TYPE_0,
        label: str = "",
    ) -> None:
        self.db = db
        self.mq = mq
        self.index = get_index(index)
        self.k = validate_threshold(k)
        self.itype = InstantiationType.coerce(itype)
        self.label = label

    # ------------------------------------------------------------------
    def decide(self) -> bool:
        """Solve the instance (guess-and-check over all instantiations)."""
        return naive_decide(self.db, self.mq, self.index, self.k, self.itype)

    def witness(self) -> MetaqueryAnswer | None:
        """A witnessing instantiation for a YES instance, or None."""
        return naive_witness(self.db, self.mq, self.index, self.k, self.itype)

    # ------------------------------------------------------------------
    def structure(self) -> str:
        """``"acyclic"``, ``"semi-acyclic"`` or ``"cyclic"`` — the Figure 5 row family."""
        return classify(self.mq)

    def figure5_row(self) -> str:
        """A human-readable description of which Figure 5 row the instance falls in."""
        structure = self.structure() if self.structure() != "cyclic" else "general"
        threshold = "k=0" if self.k == 0 else "0<=k<1"
        return f"{structure}, type-{int(self.itype)}, {self.index.name}, {threshold}"

    def size(self) -> dict[str, int]:
        """Instance-size statistics used by the scaling benchmarks."""
        return {
            "relations": len(self.db),
            "tuples": self.db.total_tuples(),
            "largest_relation": self.db.largest_relation_size(),
            "body_schemes": len(self.mq.body),
            "predicate_variables": len(self.mq.predicate_variables),
            "ordinary_variables": len(self.mq.ordinary_variables),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" [{self.label}]" if self.label else ""
        return f"<{self.db.name}, {self.mq}, {self.index.name}, {self.k}, type-{int(self.itype)}>{tag}"
