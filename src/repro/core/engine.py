"""A small facade over the two metaquery engines.

``MetaqueryEngine`` owns a database and exposes the request pipeline
(:meth:`~MetaqueryEngine.prepare` → ``PreparedMetaquery.stream()`` /
``collect()``) plus the classic one-shot calls ``find_rules`` / ``decide``
/ ``witness``, which are thin shims over that pipeline.  The ``algorithm``
switch:

* ``"naive"`` — enumerate-and-test (the membership-proof procedure);
* ``"findrules"`` — the Figure 4 algorithm;
* ``"auto"`` — FindRules whenever at least one threshold is enabled,
  otherwise naive (FindRules' pruning needs a threshold to be sound).

The engine also owns the persistent acceleration state shared by every
call:

* an :class:`~repro.datalog.context.EvaluationContext` (``cache=True``,
  the default), so repeated metaqueries over the same database reuse
  memoized atom relations, joins and fractions;
* with ``batch=True`` (also the default), a persistent
  :class:`~repro.datalog.batching.BatchEvaluator` that evaluates whole
  shape groups of instantiations from one materialized canonical join;
* with ``workers > 1``, a persistent
  :class:`~repro.datalog.sharding.ShardedEvaluator` whose worker pool is
  reused across calls and released by :meth:`MetaqueryEngine.close` (or a
  ``with`` block).

In-place database mutations *between* calls are safe: the database's
per-relation generation counters let every cache invalidate itself
incrementally (only entries touching mutated relations are dropped, worker
pools are refreshed by shipping the changed relations, and the
request-level answer cache compares generation vectors on lookup).
:meth:`invalidate_cache` remains as the explicit full reset.  Mutating the
database while a call is *in flight* is still unsupported.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds
from repro.core.indices import PlausibilityIndex, get_index
from repro.core.instantiation import InstantiationType
from repro.core.metaquery import MetaQuery, parse_metaquery
from repro.core.naive import naive_decide, naive_witness
from repro.core.requests import (
    ALGORITHMS,
    MetaqueryRequest,
    PreparedMetaquery,
    prepare_request,
)
from repro.datalog.batching import BatchEvaluator
from repro.datalog.context import EvaluationContext
from repro.datalog.lifecycle import CacheLimit, RequestCache
from repro.datalog.sharding import ShardedEvaluator
from repro.exceptions import EngineError
from repro.relational import columnar as columnar_switch
from repro.relational.database import Database

__all__ = ["ALGORITHMS", "CacheLimit", "MetaqueryEngine"]


def _require_bool(value: object, name: str) -> bool:
    """Reject truthy non-booleans: ``cache="no"`` silently enabling caching
    is exactly the kind of misconfiguration the request API should catch."""
    if not isinstance(value, bool):
        raise EngineError(
            f"{name} must be a bool, got {type(value).__name__} ({value!r})"
        )
    return value


class MetaqueryEngine:
    """Answer metaqueries over one database instance.

    The four acceleration switches are independent and compose; all are
    observationally invisible (same answers, same order, same exact
    :class:`~fractions.Fraction` values) — they only change how fast the
    answers arrive.

    Parameters
    ----------
    db:
        The database to mine.  May be mutated in place *between* calls —
        the caches detect it through the generation counters and invalidate
        only what the mutation touched; never mutate it mid-call.
    default_itype:
        The instantiation type used when a call does not specify one
        (type 0, the paper's Definition 2.2, by default).
    cache:
        Memoize atom relations, joins and fractions across calls in a
        persistent :class:`~repro.datalog.context.EvaluationContext`
        (default on).
    fast_path:
        Enable the acyclic Yannakakis full-reducer fast path in
        ``join_atoms`` (default on; independent of ``cache``).
    batch:
        Evaluate shape groups of instantiations in one batched pass over a
        persistent :class:`~repro.datalog.batching.BatchEvaluator`
        (default on; independent of ``cache`` and ``fast_path``).
    workers:
        Shard shape groups across a ``multiprocessing`` pool of this many
        worker processes (default 1 = serial, no pool is ever spawned).
        The pool is created lazily on the first parallel call, persists
        across calls, and is released by :meth:`close` — engines with
        ``workers > 1`` are best used as context managers.
    cache_limit:
        Bound the memoization caches for long-running use: an int caps the
        total entry count across the context's atoms/joins/fractions and
        the batcher's shape groups (they share one LRU store), a
        ``(max_entries, max_tuples)`` pair or
        :class:`~repro.datalog.lifecycle.CacheLimit` also caps the summed
        cached-relation sizes.  Evicted entries recompute on demand —
        answers never change, only speed.  Worker processes apply the same
        limit to their private stores.  Default ``None``: unbounded, the
        historical behaviour.
    columnar:
        Run the relational algebra on the dictionary-encoded columnar
        kernels (:mod:`repro.relational.columnar`) instead of per-tuple
        set operations.  ``None`` (default) defers to the *ambient*
        switch at each call — ``REPRO_COLUMNAR`` / :func:`use_columnar`
        contexts active when a metaquery runs, on unless disabled —
        mirroring the ablation style
        of ``cache=`` / ``batch=`` / ``workers=``.  Like them it is
        observationally invisible: answers, order and exact Fractions are
        byte-identical either way.  With ``workers > 1`` the setting is
        forwarded to the pool workers.
    request_cache:
        Size of the request-level answer cache (completed
        :class:`AnswerSet` objects keyed by the prepared request, guarded
        by the database's generation vector so any mutation invalidates
        them automatically).  Repeat requests replay the recorded answers
        — an answer-count-bounded copy instead of re-running the
        exponential search.  ``None`` or ``0`` disables it; default 128
        entries.

    Examples
    --------
    >>> from repro.workloads.telecom import db1
    >>> engine = MetaqueryEngine(db1())
    >>> answers = engine.find_rules("R(X,Z) <- P(X,Y), Q(Y,Z)",
    ...                             Thresholds(support=0.2), itype=1)
    >>> answers.algorithm
    'findrules'

    Parallel mining with an explicit lifecycle::

        with MetaqueryEngine(db, workers=4) as engine:
            answers = engine.find_rules(mq, Thresholds(support=0.2))
        # pool released here; answers identical to the workers=1 run
    """

    def __init__(
        self,
        db: Database,
        default_itype: InstantiationType | int = InstantiationType.TYPE_0,
        cache: bool = True,
        fast_path: bool = True,
        batch: bool = True,
        workers: int = 1,
        cache_limit: CacheLimit | int | tuple | None = None,
        request_cache: int | None = 128,
        columnar: bool | None = None,
    ) -> None:
        self.db = db
        self.default_itype = InstantiationType.coerce(default_itype)
        cache = _require_bool(cache, "cache")
        fast_path = _require_bool(fast_path, "fast_path")
        batch = _require_bool(batch, "batch")
        # The columnar-kernel switch is kept tri-state: ``None`` defers to
        # the *ambient* switch (``REPRO_COLUMNAR`` / ``use_columnar``)
        # resolved at each call through the ``columnar`` property — so
        # ``with use_columnar(False): engine.decide(...)`` is honoured for
        # an engine built outside the block, matching the module-level
        # functions.  An explicit True/False stays pinned.  Worker
        # processes (``workers > 1``) snapshot the resolution at engine
        # construction instead: their process default is set once by the
        # pool initializer.
        self._columnar_option = (
            None if columnar is None else _require_bool(columnar, "columnar")
        )
        # bool is an int subclass: reject True/False before the range check
        # so `workers=False` reads as a type error, not "workers must be >= 1".
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise EngineError(
                f"workers must be an int, got {type(workers).__name__} ({workers!r})"
            )
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.cache_limit = CacheLimit.coerce(cache_limit)
        if request_cache is not None and (
            isinstance(request_cache, bool) or not isinstance(request_cache, int)
        ):
            raise EngineError(
                f"request_cache must be an int or None, got {type(request_cache).__name__}"
            )
        if request_cache is not None and request_cache < 0:
            raise EngineError(f"request_cache must be >= 0, got {request_cache}")
        # The context doubles as the configuration carrier: with cache=False
        # it stores nothing but still propagates the fast_path switch.
        self.context = EvaluationContext(
            db, fast_path=fast_path, caching=cache, cache_limit=self.cache_limit
        )
        self.batch = batch
        # Persistent across calls, like the context, so repeated metaqueries
        # reuse materialized shape groups.  Shares the context's lifecycle
        # store, so cache_limit caps atoms + joins + fractions + groups with
        # one global LRU order.
        self.batcher = BatchEvaluator(db, ctx=self.context) if batch else None
        # Persistent worker pool (lazily started); None on the serial path so
        # workers=1 can never spawn processes.
        self.workers = workers
        self.sharder = (
            ShardedEvaluator(
                db, self.workers, fast_path=fast_path, cache=cache, batch=batch,
                cache_limit=self.cache_limit, columnar=self.columnar,
            )
            if self.workers > 1
            else None
        )
        #: Completed answer sets, auto-invalidated by the db generation
        #: vector; consulted by PreparedMetaquery.stream()/collect().
        self.request_cache = RequestCache(request_cache) if request_cache else None

    @property
    def columnar(self) -> bool:
        """The columnar switch as resolved *right now*.

        Pinned when the engine was built with an explicit
        ``columnar=True/False``; with the default ``columnar=None`` it
        follows the ambient switch (``REPRO_COLUMNAR``,
        :func:`repro.relational.columnar.use_columnar`) at each access,
        so per-call ablation contexts apply to deferred engines too.
        """
        return columnar_switch.resolve(self._columnar_option)

    def invalidate_cache(self) -> None:
        """Drop every memoized result — the explicit full reset.

        No longer *required* after in-place mutation: the generation
        counters let the context/batcher drop exactly the entries touching
        mutated relations, the sharder ships the changed relations to its
        workers with the next dispatch, and the request cache compares
        generation vectors on lookup.  This method remains the manual
        nuclear option: it clears the context and batcher stores, drops the
        request cache and restarts the worker pool.
        """
        self.context.clear()
        if self.batcher is not None:
            self.batcher.clear()
        if self.sharder is not None:
            self.sharder.reset()
        if self.request_cache is not None:
            self.request_cache.clear()

    def stats(self) -> dict[str, dict[str, int]]:
        """Telemetry counters of the engine's acceleration subsystems.

        Returns a dictionary with up to five sections:

        * ``"cache"`` — the :class:`~repro.datalog.context.CacheStats`
          hit/miss counters (always present).  With ``workers > 1`` the
          per-task counter deltas reported back by the worker processes are
          aggregated in, so sharded runs no longer read as ~zero cache
          activity (each worker's private context does the actual work);
        * ``"batch"`` — the batcher's group counters (worker deltas
          aggregated in likewise) plus ``group_count``, the number of shape
          groups live in *this* process (only with ``batch=True``);
        * ``"lifecycle"`` — eviction/invalidation counters of the shared
          store (worker deltas included) plus live ``entries``/``tuples``
          gauges of the parent store (always present);
        * ``"request"`` — answer-cache hits/misses/evictions/invalidations
          (only when the request cache is enabled);
        * ``"shard"`` — pool/dispatch/sync counters (only with
          ``workers > 1``).

        Counters accumulate across calls; ``invalidate_cache()`` drops the
        cached state but deliberately keeps the counters.
        """

        def merged(own: dict[str, int], section: str) -> dict[str, int]:
            if self.sharder is None:
                return own
            # dict() snapshot: a concurrent request thread may be merging
            # new counter keys into worker_counters while we iterate.
            for key, value in dict(self.sharder.worker_counters.get(section, {})).items():
                own[key] = own.get(key, 0) + value
            return own

        stats: dict[str, dict[str, int]] = {
            "cache": merged(self.context.stats.as_dict(), "cache")
        }
        if self.batcher is not None:
            stats["batch"] = {
                **merged(self.batcher.stats.as_dict(), "batch"),
                "group_count": self.batcher.group_count,
            }
        stats["lifecycle"] = {
            **merged(self.context.store.stats_dict(), "lifecycle"),
            **self.context.store.gauges(),
        }
        if self.request_cache is not None:
            stats["request"] = self.request_cache.stats_dict()
        if self.sharder is not None:
            stats["shard"] = self.sharder.stats.as_dict()
        return stats

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (no-op for serial engines).  Idempotent.

        The engine remains usable for serial evaluation afterwards: a
        closed sharder is ignored by the dispatch helpers, so calls fall
        back to the ``workers=1`` path rather than failing.
        """
        if self.sharder is not None:
            self.sharder.close()

    def __enter__(self) -> "MetaqueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Release worker processes on normal exit and on exceptions alike.
        self.close()

    # ------------------------------------------------------------------
    def parse(self, text: str, name: str | None = None) -> MetaQuery:
        """Parse a metaquery, treating the database's relation names as such."""
        return parse_metaquery(text, relation_names=self.db.relation_names, name=name)

    # ------------------------------------------------------------------
    def request(
        self,
        mq: MetaqueryRequest | MetaQuery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int | None = None,
        algorithm: str = "auto",
    ) -> MetaqueryRequest:
        """Coerce the classic ``(mq, thresholds, itype, algorithm)`` spelling
        into a validated :class:`MetaqueryRequest` (passed through if ``mq``
        already is one; ``itype=None`` means the engine's default)."""
        if isinstance(mq, MetaqueryRequest):
            # A request already carries thresholds/itype/algorithm; silently
            # ignoring competing overrides would return wrong (unfiltered /
            # wrongly-typed) answers, so reject the ambiguity outright.
            if thresholds is not None or itype is not None or algorithm != "auto":
                raise EngineError(
                    "thresholds/itype/algorithm cannot be overridden when passing a "
                    "MetaqueryRequest; build a new request with the desired values"
                )
            return mq
        return MetaqueryRequest(
            mq,
            thresholds=thresholds,
            itype=self.default_itype if itype is None else itype,
            algorithm=algorithm,
        )

    def prepare(
        self,
        mq: MetaqueryRequest | MetaQuery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int | None = None,
        algorithm: str = "auto",
    ) -> PreparedMetaquery:
        """Parse, classify and plan a request once; reuse it across calls.

        The returned :class:`~repro.core.requests.PreparedMetaquery` caches
        everything that does not depend on the instantiation space — the
        parsed metaquery, the resolved algorithm, the acyclicity class and
        (for FindRules) the hypertree body decomposition — so repeated or
        parametrized mining skips re-planning.  Call
        :meth:`~repro.core.requests.PreparedMetaquery.stream` for
        incremental answers or
        :meth:`~repro.core.requests.PreparedMetaquery.collect` for the
        materialized :class:`AnswerSet`.
        """
        return prepare_request(self, self.request(mq, thresholds, itype, algorithm))

    def stream(
        self,
        mq: MetaqueryRequest | MetaQuery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int | None = None,
        algorithm: str = "auto",
    ) -> Iterator[MetaqueryAnswer]:
        """Stream threshold-passing answers incrementally.

        ``engine.stream(...)`` is ``engine.prepare(...).stream()``: answers
        arrive as the engine confirms them, in an order byte-identical to
        :meth:`find_rules`, and breaking out early is cheap.
        """
        return self.prepare(mq, thresholds, itype, algorithm).stream()

    def find_rules(
        self,
        mq: MetaqueryRequest | MetaQuery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int | None = None,
        algorithm: str = "auto",
    ) -> AnswerSet:
        """All instantiated rules passing the thresholds.

        ``mq`` may be a :class:`MetaQuery`, its textual form or a
        :class:`MetaqueryRequest`.  A thin shim over the request pipeline —
        ``find_rules(...) == prepare(...).collect()``, i.e. the materialized
        stream.  The returned :class:`AnswerSet` carries the algorithm that
        actually ran in its ``algorithm`` attribute (``"auto"`` is resolved
        at prepare time), so ablation runs cannot mislabel which engine
        produced the numbers.
        """
        return self.prepare(mq, thresholds, itype, algorithm).collect()

    # ------------------------------------------------------------------
    def decide(
        self,
        mq: MetaQuery | str,
        index: str | PlausibilityIndex,
        k: Fraction | float | int = 0,
        itype: InstantiationType | int | None = None,
    ) -> bool:
        """The decision problem ``⟨DB, MQ, I, k, T⟩``: does some instantiation exceed ``k``?"""
        if isinstance(mq, str):
            mq = self.parse(mq)
        itype = self.default_itype if itype is None else InstantiationType.coerce(itype)
        with columnar_switch.use_columnar(self.columnar):
            return naive_decide(
                self.db, mq, index, k, itype,
                ctx=self.context, batch=self.batch, batcher=self.batcher,
                sharder=self.sharder,
            )

    def witness(
        self,
        mq: MetaQuery | str,
        index: str | PlausibilityIndex,
        k: Fraction | float | int = 0,
        itype: InstantiationType | int | None = None,
    ) -> MetaqueryAnswer | None:
        """A witnessing answer for :meth:`decide`, or None on a NO instance."""
        if isinstance(mq, str):
            mq = self.parse(mq)
        itype = self.default_itype if itype is None else InstantiationType.coerce(itype)
        with columnar_switch.use_columnar(self.columnar):
            return naive_witness(
                self.db, mq, get_index(index), k, itype,
                ctx=self.context, batch=self.batch, batcher=self.batcher,
                sharder=self.sharder,
            )
