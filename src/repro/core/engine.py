"""A small facade over the two metaquery engines.

``MetaqueryEngine`` owns a database and exposes ``find_rules`` /
``decide`` with an ``algorithm`` switch:

* ``"naive"`` — enumerate-and-test (the membership-proof procedure);
* ``"findrules"`` — the Figure 4 algorithm;
* ``"auto"`` — FindRules whenever at least one threshold is enabled,
  otherwise naive (FindRules' pruning needs a threshold to be sound).

The engine also owns a persistent
:class:`~repro.datalog.context.EvaluationContext` (``cache=True``, the
default) shared by every call, so repeated metaqueries over the same
database reuse memoized atom relations, joins and fractions, and — with
``batch=True``, also the default — a persistent
:class:`~repro.datalog.batching.BatchEvaluator` that evaluates whole
shape groups of instantiations from one materialized canonical join.  The
database is treated as read-only; call :meth:`invalidate_cache` after
mutating it in place.
"""

from __future__ import annotations

import logging
from fractions import Fraction

from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds
from repro.core.findrules import find_rules
from repro.core.indices import PlausibilityIndex, get_index
from repro.core.instantiation import InstantiationType
from repro.core.metaquery import MetaQuery, parse_metaquery
from repro.core.naive import naive_decide, naive_find_rules, naive_witness
from repro.datalog.batching import BatchEvaluator
from repro.datalog.context import EvaluationContext
from repro.relational.database import Database

logger = logging.getLogger(__name__)

#: The algorithm names accepted by :meth:`MetaqueryEngine.find_rules`.
ALGORITHMS = ("auto", "naive", "findrules")


class MetaqueryEngine:
    """Answer metaqueries over one database instance.

    Parameters
    ----------
    db:
        The database to mine.
    default_itype:
        The instantiation type used when a call does not specify one.
    cache:
        Memoize evaluation results across calls (default on).
    fast_path:
        Enable the acyclic Yannakakis fast path in ``join_atoms`` (default
        on; independent of ``cache``).
    batch:
        Evaluate shape groups of instantiations in one batched pass
        (default on; independent of ``cache`` and ``fast_path``).
    """

    def __init__(
        self,
        db: Database,
        default_itype: InstantiationType | int = InstantiationType.TYPE_0,
        cache: bool = True,
        fast_path: bool = True,
        batch: bool = True,
    ) -> None:
        self.db = db
        self.default_itype = InstantiationType.coerce(default_itype)
        # The context doubles as the configuration carrier: with cache=False
        # it stores nothing but still propagates the fast_path switch.
        self.context = EvaluationContext(db, fast_path=fast_path, caching=cache)
        self.batch = batch
        # Persistent across calls, like the context, so repeated metaqueries
        # reuse materialized shape groups.
        self.batcher = BatchEvaluator(db, ctx=self.context) if batch else None

    def invalidate_cache(self) -> None:
        """Drop memoized results (required after mutating the database in place)."""
        self.context.clear()
        if self.batcher is not None:
            self.batcher.clear()

    # ------------------------------------------------------------------
    def parse(self, text: str, name: str | None = None) -> MetaQuery:
        """Parse a metaquery, treating the database's relation names as such."""
        return parse_metaquery(text, relation_names=self.db.relation_names, name=name)

    # ------------------------------------------------------------------
    def find_rules(
        self,
        mq: MetaQuery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int | None = None,
        algorithm: str = "auto",
    ) -> AnswerSet:
        """All instantiated rules passing the thresholds.

        ``mq`` may be a :class:`MetaQuery` or its textual form.  The returned
        :class:`AnswerSet` carries the algorithm that actually ran in its
        ``algorithm`` attribute (``"auto"`` is resolved before dispatch), so
        ablation runs cannot mislabel which engine produced the numbers.
        """
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; use 'auto', 'naive' or 'findrules'"
            )
        if isinstance(mq, str):
            mq = self.parse(mq)
        itype = self.default_itype if itype is None else InstantiationType.coerce(itype)
        thresholds = thresholds or Thresholds.none()

        if algorithm == "auto":
            has_threshold = any(
                t is not None for t in (thresholds.support, thresholds.confidence, thresholds.cover)
            )
            algorithm = "findrules" if has_threshold else "naive"
            logger.info(
                "find_rules: algorithm 'auto' resolved to %r (%s)",
                algorithm,
                "thresholds enabled" if has_threshold else
                "all thresholds None; FindRules' pruning needs a threshold to be sound",
            )
        if algorithm == "naive":
            answers = naive_find_rules(
                self.db, mq, thresholds, itype,
                ctx=self.context, batch=self.batch, batcher=self.batcher,
            )
        else:
            answers = find_rules(
                self.db, mq, thresholds, itype,
                ctx=self.context, batch=self.batch, batcher=self.batcher,
            )
        answers.algorithm = algorithm
        return answers

    # ------------------------------------------------------------------
    def decide(
        self,
        mq: MetaQuery | str,
        index: str | PlausibilityIndex,
        k: Fraction | float | int = 0,
        itype: InstantiationType | int | None = None,
    ) -> bool:
        """The decision problem ``⟨DB, MQ, I, k, T⟩``: does some instantiation exceed ``k``?"""
        if isinstance(mq, str):
            mq = self.parse(mq)
        itype = self.default_itype if itype is None else InstantiationType.coerce(itype)
        return naive_decide(
            self.db, mq, index, k, itype,
            ctx=self.context, batch=self.batch, batcher=self.batcher,
        )

    def witness(
        self,
        mq: MetaQuery | str,
        index: str | PlausibilityIndex,
        k: Fraction | float | int = 0,
        itype: InstantiationType | int | None = None,
    ) -> MetaqueryAnswer | None:
        """A witnessing answer for :meth:`decide`, or None on a NO instance."""
        if isinstance(mq, str):
            mq = self.parse(mq)
        itype = self.default_itype if itype is None else InstantiationType.coerce(itype)
        return naive_witness(
            self.db, mq, get_index(index), k, itype,
            ctx=self.context, batch=self.batch, batcher=self.batcher,
        )
