"""A small facade over the two metaquery engines.

``MetaqueryEngine`` owns a database and exposes ``find_rules`` /
``decide`` with an ``algorithm`` switch:

* ``"naive"`` — enumerate-and-test (the membership-proof procedure);
* ``"findrules"`` — the Figure 4 algorithm;
* ``"auto"`` — FindRules whenever at least one threshold is enabled,
  otherwise naive (FindRules' pruning needs a threshold to be sound).

The engine also owns the persistent acceleration state shared by every
call:

* an :class:`~repro.datalog.context.EvaluationContext` (``cache=True``,
  the default), so repeated metaqueries over the same database reuse
  memoized atom relations, joins and fractions;
* with ``batch=True`` (also the default), a persistent
  :class:`~repro.datalog.batching.BatchEvaluator` that evaluates whole
  shape groups of instantiations from one materialized canonical join;
* with ``workers > 1``, a persistent
  :class:`~repro.datalog.sharding.ShardedEvaluator` whose worker pool is
  reused across calls and released by :meth:`MetaqueryEngine.close` (or a
  ``with`` block).

The database is treated as read-only; call :meth:`invalidate_cache` after
mutating it in place (it also restarts the worker pool, whose processes
hold their own database snapshots).
"""

from __future__ import annotations

import logging
from fractions import Fraction

from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds
from repro.core.findrules import find_rules
from repro.core.indices import PlausibilityIndex, get_index
from repro.core.instantiation import InstantiationType
from repro.core.metaquery import MetaQuery, parse_metaquery
from repro.core.naive import naive_decide, naive_find_rules, naive_witness
from repro.datalog.batching import BatchEvaluator
from repro.datalog.context import EvaluationContext
from repro.datalog.sharding import ShardedEvaluator
from repro.relational.database import Database

logger = logging.getLogger(__name__)

#: The algorithm names accepted by :meth:`MetaqueryEngine.find_rules`.
ALGORITHMS = ("auto", "naive", "findrules")


class MetaqueryEngine:
    """Answer metaqueries over one database instance.

    The four acceleration switches are independent and compose; all are
    observationally invisible (same answers, same order, same exact
    :class:`~fractions.Fraction` values) — they only change how fast the
    answers arrive.

    Parameters
    ----------
    db:
        The database to mine.  Treated as read-only; call
        :meth:`invalidate_cache` after mutating it in place.
    default_itype:
        The instantiation type used when a call does not specify one
        (type 0, the paper's Definition 2.2, by default).
    cache:
        Memoize atom relations, joins and fractions across calls in a
        persistent :class:`~repro.datalog.context.EvaluationContext`
        (default on).
    fast_path:
        Enable the acyclic Yannakakis full-reducer fast path in
        ``join_atoms`` (default on; independent of ``cache``).
    batch:
        Evaluate shape groups of instantiations in one batched pass over a
        persistent :class:`~repro.datalog.batching.BatchEvaluator`
        (default on; independent of ``cache`` and ``fast_path``).
    workers:
        Shard shape groups across a ``multiprocessing`` pool of this many
        worker processes (default 1 = serial, no pool is ever spawned).
        The pool is created lazily on the first parallel call, persists
        across calls, and is released by :meth:`close` — engines with
        ``workers > 1`` are best used as context managers.

    Examples
    --------
    >>> from repro.workloads.telecom import db1
    >>> engine = MetaqueryEngine(db1())
    >>> answers = engine.find_rules("R(X,Z) <- P(X,Y), Q(Y,Z)",
    ...                             Thresholds(support=0.2), itype=1)
    >>> answers.algorithm
    'findrules'

    Parallel mining with an explicit lifecycle::

        with MetaqueryEngine(db, workers=4) as engine:
            answers = engine.find_rules(mq, Thresholds(support=0.2))
        # pool released here; answers identical to the workers=1 run
    """

    def __init__(
        self,
        db: Database,
        default_itype: InstantiationType | int = InstantiationType.TYPE_0,
        cache: bool = True,
        fast_path: bool = True,
        batch: bool = True,
        workers: int = 1,
    ) -> None:
        self.db = db
        self.default_itype = InstantiationType.coerce(default_itype)
        # The context doubles as the configuration carrier: with cache=False
        # it stores nothing but still propagates the fast_path switch.
        self.context = EvaluationContext(db, fast_path=fast_path, caching=cache)
        self.batch = batch
        # Persistent across calls, like the context, so repeated metaqueries
        # reuse materialized shape groups.
        self.batcher = BatchEvaluator(db, ctx=self.context) if batch else None
        # Persistent worker pool (lazily started); None on the serial path so
        # workers=1 can never spawn processes.
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.sharder = (
            ShardedEvaluator(db, self.workers, fast_path=fast_path, cache=cache, batch=batch)
            if self.workers > 1
            else None
        )

    def invalidate_cache(self) -> None:
        """Drop memoized results (required after mutating the database in place).

        Clears the context and batcher caches and restarts the worker pool
        (each worker process holds its own snapshot of the database, taken
        when the pool started, plus its own private caches).
        """
        self.context.clear()
        if self.batcher is not None:
            self.batcher.clear()
        if self.sharder is not None:
            self.sharder.reset()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (no-op for serial engines).  Idempotent.

        The engine remains usable for serial evaluation afterwards: a
        closed sharder is ignored by the dispatch helpers, so calls fall
        back to the ``workers=1`` path rather than failing.
        """
        if self.sharder is not None:
            self.sharder.close()

    def __enter__(self) -> "MetaqueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Release worker processes on normal exit and on exceptions alike.
        self.close()

    # ------------------------------------------------------------------
    def parse(self, text: str, name: str | None = None) -> MetaQuery:
        """Parse a metaquery, treating the database's relation names as such."""
        return parse_metaquery(text, relation_names=self.db.relation_names, name=name)

    # ------------------------------------------------------------------
    def find_rules(
        self,
        mq: MetaQuery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int | None = None,
        algorithm: str = "auto",
    ) -> AnswerSet:
        """All instantiated rules passing the thresholds.

        ``mq`` may be a :class:`MetaQuery` or its textual form.  The returned
        :class:`AnswerSet` carries the algorithm that actually ran in its
        ``algorithm`` attribute (``"auto"`` is resolved before dispatch), so
        ablation runs cannot mislabel which engine produced the numbers.
        """
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; use 'auto', 'naive' or 'findrules'"
            )
        if isinstance(mq, str):
            mq = self.parse(mq)
        itype = self.default_itype if itype is None else InstantiationType.coerce(itype)
        thresholds = thresholds or Thresholds.none()

        if algorithm == "auto":
            has_threshold = any(
                t is not None for t in (thresholds.support, thresholds.confidence, thresholds.cover)
            )
            algorithm = "findrules" if has_threshold else "naive"
            logger.info(
                "find_rules: algorithm 'auto' resolved to %r (%s)",
                algorithm,
                "thresholds enabled" if has_threshold else
                "all thresholds None; FindRules' pruning needs a threshold to be sound",
            )
        if algorithm == "naive":
            answers = naive_find_rules(
                self.db, mq, thresholds, itype,
                ctx=self.context, batch=self.batch, batcher=self.batcher,
                sharder=self.sharder,
            )
        else:
            answers = find_rules(
                self.db, mq, thresholds, itype,
                ctx=self.context, batch=self.batch, batcher=self.batcher,
                sharder=self.sharder,
            )
        answers.algorithm = algorithm
        return answers

    # ------------------------------------------------------------------
    def decide(
        self,
        mq: MetaQuery | str,
        index: str | PlausibilityIndex,
        k: Fraction | float | int = 0,
        itype: InstantiationType | int | None = None,
    ) -> bool:
        """The decision problem ``⟨DB, MQ, I, k, T⟩``: does some instantiation exceed ``k``?"""
        if isinstance(mq, str):
            mq = self.parse(mq)
        itype = self.default_itype if itype is None else InstantiationType.coerce(itype)
        return naive_decide(
            self.db, mq, index, k, itype,
            ctx=self.context, batch=self.batch, batcher=self.batcher,
            sharder=self.sharder,
        )

    def witness(
        self,
        mq: MetaQuery | str,
        index: str | PlausibilityIndex,
        k: Fraction | float | int = 0,
        itype: InstantiationType | int | None = None,
    ) -> MetaqueryAnswer | None:
        """A witnessing answer for :meth:`decide`, or None on a NO instance."""
        if isinstance(mq, str):
            mq = self.parse(mq)
        itype = self.default_itype if itype is None else InstantiationType.coerce(itype)
        return naive_witness(
            self.db, mq, get_index(index), k, itype,
            ctx=self.context, batch=self.batch, batcher=self.batcher,
            sharder=self.sharder,
        )
