"""The FindRules algorithm of Figure 4.

Given a database, a metaquery and thresholds ``k_sup``, ``k_cvr``, ``k_cnf``,
FindRules returns every type-T instantiation whose support, cover and
confidence all exceed their thresholds.  It decomposes the work as the paper
prescribes (Section 4):

1. compute a complete hypertree decomposition of the metaquery *body* (the
   decomposition only depends on the literal schemes, so by Proposition 4.9
   it is shared by every instantiation);
2. ``findBodies`` — visit the decomposition bottom-up, instantiating the
   literal schemes of each node, materialising
   ``r[i] = π_χ(p)(J(σ(λ(p))))`` and semijoining it with the children's
   relations; empty intermediate relations prune the whole branch;
3. once the root is reached, run the *second half* of the full reducer to
   obtain the reduced relations ``s[..]``;
4. ``findHeads`` — check the support threshold from the reduced relations,
   materialise the body join ``b``, and for every head instantiation that
   agrees with the body instantiation test cover (``|h ⋉ b| / |h|``) and
   confidence (``|b ⋉ h'| / |b|``).

Four ablation switches quantify the design choices (used by the ablation
benchmarks): ``prune_empty`` disables step 2's pruning,
``use_full_reducer`` replaces step 3's semijoin program by recomputing the
body join from scratch (support is then read off that recomputed join —
the half-reduced node relations would overestimate it), ``batch``
controls whether step 4 answers the head instantiations from a shared
:class:`~repro.datalog.batching.BatchEvaluator` shape group or by per-head
semijoins, and ``workers`` distributes whole first-level ``findBodies``
branches across a :class:`~repro.datalog.sharding.ShardedEvaluator`
worker pool (byte-identical answers, see :func:`_sharded_find_rules`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Sequence

from repro.core.acyclicity import body_scheme_labels, body_variable_sets
from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds
from repro.core.indices import support_from_join
from repro.core.instantiation import (
    Instantiation,
    InstantiationType,
    enumerate_scheme_instantiations,
)
from repro.core.metaquery import LiteralScheme, MetaQuery
from repro.datalog.atoms import Atom
from repro.datalog.batching import BatchEvaluator, body_shape
from repro.datalog.context import EvaluationContext
from repro.datalog.evaluation import atom_relation, join_atoms
from repro.datalog.sharding import (
    ReorderBuffer,
    ShardedEvaluator,
    partition,
    resolve_sharder,
    worker_state,
)
from repro.exceptions import MetaqueryError
from repro.hypergraph.decomposition import HypertreeDecomposition, HypertreeNode, decompose
from repro.relational.algebra import natural_join_all
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "body_decomposition",
    "iter_find_rules",
    "find_rules",
    "support_via_decomposition",
]


def body_decomposition(mq: MetaQuery, max_width: int | None = None) -> HypertreeDecomposition:
    """A complete hypertree decomposition of the metaquery body.

    The decomposition is over the *ordinary* variables of the body literal
    schemes, labelled ``("body", i)``; Proposition 4.9 guarantees that the
    same decomposition remains valid for every instantiation.
    """
    return decompose(body_variable_sets(mq), max_width=max_width)


def _ratio(numerator: int, denominator: int) -> Fraction:
    """The fraction convention of Definition 2.6: 0 whenever the numerator is 0."""
    if numerator == 0 or denominator == 0:
        return Fraction(0)
    return Fraction(numerator, denominator)


class _FindRulesRun:
    """One execution of FindRules over a fixed database/metaquery/thresholds."""

    def __init__(
        self,
        db: Database,
        mq: MetaQuery,
        thresholds: Thresholds,
        itype: InstantiationType,
        prune_empty: bool,
        use_full_reducer: bool,
        decomposition: HypertreeDecomposition | None,
        ctx: EvaluationContext | None = None,
        batcher: BatchEvaluator | None = None,
    ) -> None:
        self.db = db
        self.mq = mq
        self.thresholds = thresholds
        self.itype = itype
        self.use_full_reducer = use_full_reducer
        self.ctx = ctx
        self.batcher = batcher if (batcher is not None and batcher.applies_to(db)) else None

        no_filtering = (
            thresholds.support is None
            and thresholds.confidence is None
            and thresholds.cover is None
        )
        # Pruning empty intermediate relations is sound only when at least one
        # strict threshold is enabled (all indices are 0 on an empty body join).
        self.prune_empty = prune_empty and not no_filtering

        self.decomposition = decomposition or body_decomposition(mq)
        # Bottom-up visit order of the decomposition nodes; the paper's ν.
        preorder = self.decomposition.nodes
        self.order: list[HypertreeNode] = list(reversed(preorder))
        self.position: dict[int, int] = {id(node): i for i, node in enumerate(self.order)}
        self.parent: dict[int, HypertreeNode | None] = {id(self.decomposition.root): None}
        for node in preorder:
            for child in node.children:
                self.parent[id(child)] = node

        self.label_to_scheme: dict[object, LiteralScheme] = dict(body_scheme_labels(mq))
        # Node where each body literal scheme is covered (varo ⊆ χ, scheme ∈ λ).
        self.covering_position: dict[object, int] = {}
        for label in self.label_to_scheme:
            node = self.decomposition.covering_node(label)
            self.covering_position[label] = self.position[id(node)]

    # ------------------------------------------------------------------
    def node_schemes(self, node: HypertreeNode) -> list[LiteralScheme]:
        """The literal schemes in ``λ(node)``, in label order."""
        return [self.label_to_scheme[label] for label in sorted(node.lam, key=str)]

    def instantiated_node_relation(self, node: HypertreeNode, sigma: Instantiation) -> Relation | None:
        """``π_χ(node)(J(σ(λ(node))))`` or None when some atom is not evaluable."""
        atoms = []
        for scheme in self.node_schemes(node):
            atom = sigma.image(scheme)
            if atom.predicate not in self.db or self.db[atom.predicate].arity != atom.arity:
                return None
            atoms.append(atom)
        joined = join_atoms(atoms, self.db, self.ctx)
        chi_columns = [c for c in joined.columns if c in node.chi]
        return joined.project(chi_columns)

    # ------------------------------------------------------------------
    def run(self) -> AnswerSet:
        """Execute the algorithm and return the materialized answer set."""
        return AnswerSet(self.iter_run(), algorithm="findrules")

    def iter_run(self) -> Iterator[MetaqueryAnswer]:
        """The generator core: answers are yielded as branches confirm them.

        The emission order is exactly the order :meth:`run` materializes —
        answers stream out the moment ``findHeads`` accepts them, instead of
        after the whole search finishes.
        """
        yield from self._find_bodies(0, Instantiation({}), {})

    def _find_bodies(
        self, index: int, sigma_b: Instantiation, relations: dict[int, Relation]
    ) -> Iterator[MetaqueryAnswer]:
        """The recursive ``findBodies`` procedure (first half of the reducer)."""
        if index >= len(self.order):
            yield from self._reduce_and_find_heads(sigma_b, relations)
            return
        node = self.order[index]
        schemes = self.node_schemes(node)
        for sigma_i in enumerate_scheme_instantiations(schemes, self.db, self.itype, base=sigma_b):
            yield from self._expand(index, sigma_b, sigma_i, relations)

    def _expand(
        self,
        index: int,
        sigma_b: Instantiation,
        sigma_i: Instantiation,
        relations: dict[int, Relation],
    ) -> Iterator[MetaqueryAnswer]:
        """One ``findBodies`` branch: extend ``sigma_b`` by ``sigma_i`` at one node.

        Factored out of :meth:`_find_bodies` so the sharded path can replay
        a pre-enumerated first-level instantiation inside a worker process.
        """
        node = self.order[index]
        combined = sigma_b.compose(sigma_i)
        relation = self.instantiated_node_relation(node, combined)
        if relation is None:
            return
        for child in node.children:
            child_pos = self.position[id(child)]
            relation = relation.semijoin(relations[child_pos])
        if self.prune_empty and relation.is_empty():
            return
        relations[index] = relation
        yield from self._find_bodies(index + 1, combined, relations)

    def first_level_instantiations(self) -> list[Instantiation]:
        """The first-level (deepest-node) instantiations, in serial order.

        These are the branch roots of the ``findBodies`` search — the unit
        the sharded path distributes.  They are enumerated once, in the
        parent, because the type-2 padding counter advances across the
        enumeration: re-enumerating a subset inside a worker would assign
        different ``_T2_*`` names and break byte-identity with the serial
        path.  Deeper levels re-enumerate deterministically per branch (the
        padding source depends only on the branch's base instantiation).
        """
        if not self.order:
            return []
        schemes = self.node_schemes(self.order[0])
        return list(
            enumerate_scheme_instantiations(
                schemes, self.db, self.itype, base=Instantiation({})
            )
        )

    def _reduce_and_find_heads(
        self, sigma_b: Instantiation, relations: dict[int, Relation]
    ) -> Iterator[MetaqueryAnswer]:
        """Second half of the full reducer followed by ``findHeads``.

        In the ``use_full_reducer=False`` ablation arm the top-down pass is
        skipped entirely and ``findHeads`` works from the recomputed body
        join; the half-reduced node relations must *not* be used for support
        (they overestimate it — see ``_find_heads``).
        """
        n = len(self.order)
        reduced: dict[int, Relation] = {n - 1: relations[n - 1]}
        for j in range(n - 2, -1, -1):
            parent = self.parent[id(self.order[j])]
            assert parent is not None  # only the root (last position) has no parent
            parent_pos = self.position[id(parent)]
            if self.use_full_reducer:
                reduced[j] = relations[j].semijoin(reduced[parent_pos])
            else:
                reduced[j] = relations[j]
        yield from self._find_heads(sigma_b, reduced)

    # ------------------------------------------------------------------
    def _support_of_body(self, sigma_b: Instantiation, reduced: dict[int, Relation]) -> Fraction:
        """Exact support of the instantiated body, computed from the reduced relations."""
        best = Fraction(0)
        for label, scheme in self.label_to_scheme.items():
            atom = sigma_b.image(scheme)
            base = atom_relation(atom, self.db, self.ctx)
            denominator = len(base)
            if denominator == 0:
                continue
            pos = self.covering_position[label]
            joined = reduced[pos].natural_join(base)
            numerator = len(joined.project(base.columns))
            value = _ratio(numerator, denominator)
            if value > best:
                best = value
        return best

    def _body_join(self, body_atoms: Sequence[Atom], reduced: dict[int, Relation]) -> Relation:
        """The body join ``b = J(σ_b(body(MQ)))`` assembled from the reduced relations.

        The node relations are projected onto ``χ`` — the *metaquery's*
        ordinary variables — so any type-2 padding column was dropped during
        ``findBodies``.  Definition 2.6 counts over the full ``J(b)``
        (padding variables included: a body atom whose padding positions
        take several values contributes several joint tuples), so atoms
        with projected-away variables are joined back in; the reduced
        χ-join acts as the filter.  Without padding this is exactly the
        plain join of the reduced relations.
        """
        body = natural_join_all(list(reduced.values()))
        padded = [
            atom
            for atom in body_atoms
            if any(v.name not in body.columns for v in atom.variables)
        ]
        if padded:
            body = natural_join_all(
                [body] + [atom_relation(a, self.db, self.ctx) for a in padded]
            )
        return body

    def _find_heads(
        self, sigma_b: Instantiation, reduced: dict[int, Relation]
    ) -> Iterator[MetaqueryAnswer]:
        """The ``findHeads`` procedure: support gate, then cover/confidence tests."""
        body_atoms = [sigma_b.image(s) for s in self.label_to_scheme.values()]
        # Batched arm: the shape group is materialized once — seeded lazily,
        # so on a group hit the body join is not rebuilt — and every
        # agreeing head instantiation is answered from the shared key
        # indexes instead of per-head semijoins.  ``body`` is only
        # materialized on the unbatched path (the group replaces it).
        group = body = None
        if self.use_full_reducer:
            support_value = self._support_of_body(sigma_b, reduced)
            if self.thresholds.support is not None and not support_value > self.thresholds.support:
                return
            if self.batcher is not None:
                group = self.batcher.body_group(
                    body_atoms, precomputed=lambda: self._body_join(body_atoms, reduced)
                )
            else:
                body = self._body_join(body_atoms, reduced)
        else:
            # Ablation: recompute the body join from the raw atom relations.
            # Support must come from this recomputed join too — the node
            # relations are only *half*-reduced here (no top-down semijoin
            # pass), so reading support off them can overestimate it and
            # admit instantiations the reference engine rejects.
            def recompute() -> Relation:
                return natural_join_all(
                    [atom_relation(a, self.db, self.ctx) for a in body_atoms]
                )

            if self.batcher is not None:
                group = self.batcher.body_group(body_atoms, precomputed=recompute)
                support_value = group.support
            else:
                body = recompute()
                support_value = support_from_join(body_atoms, body, self.db, self.ctx)
            if self.thresholds.support is not None and not support_value > self.thresholds.support:
                return

        for sigma_h in enumerate_scheme_instantiations([self.mq.head], self.db, self.itype, base=sigma_b):
            sigma = sigma_b.compose(sigma_h)
            head_atom = sigma.image(self.mq.head)
            if head_atom.predicate not in self.db or self.db[head_atom.predicate].arity != head_atom.arity:
                continue
            if group is not None:
                cover_value, confidence_value = self.batcher.head_indices(group, head_atom)
                if self.thresholds.cover is not None and not cover_value > self.thresholds.cover:
                    continue
                if self.thresholds.confidence is not None and not confidence_value > self.thresholds.confidence:
                    continue
            else:
                head = atom_relation(head_atom, self.db, self.ctx)
                head_reduced = head.semijoin(body)
                cover_value = _ratio(len(head_reduced), len(head))
                if self.thresholds.cover is not None and not cover_value > self.thresholds.cover:
                    continue
                confidence_value = _ratio(len(body.semijoin(head_reduced)), len(body))
                if self.thresholds.confidence is not None and not confidence_value > self.thresholds.confidence:
                    continue
            rule = sigma.apply(self.mq)
            yield MetaqueryAnswer(
                instantiation=sigma,
                rule=rule,
                support=support_value,
                confidence=confidence_value,
                cover=cover_value,
            )


# ----------------------------------------------------------------------
# sharded execution (module-level task so the pool can pickle it by name)
# ----------------------------------------------------------------------
#: One sharded FindRules payload: the run configuration plus this shard's
#: ``(position, first_level_instantiation)`` jobs.
_BranchPayload = tuple[
    MetaQuery, Thresholds, InstantiationType, bool, bool, list[tuple[int, Instantiation]]
]


def _shard_branches_task(payload: _BranchPayload) -> list[tuple[int, list[MetaqueryAnswer]]]:
    """Worker task: run whole ``findBodies`` branches of one shard.

    The worker rebuilds the run (its hypertree decomposition is a pure
    function of the metaquery, so it matches the parent's) over its private
    context/batcher pair, then replays each pre-enumerated first-level
    instantiation.  Answers come back tagged with the branch position so
    the parent can restore the exact serial emission order.
    """
    mq, thresholds, itype, prune_empty, use_full_reducer, jobs = payload
    db, ctx, batcher = worker_state()
    run = _FindRulesRun(
        db, mq, thresholds, itype, prune_empty, use_full_reducer, None, ctx, batcher
    )
    out: list[tuple[int, list[MetaqueryAnswer]]] = []
    for position, sigma_i in jobs:
        out.append((position, list(run._expand(0, Instantiation({}), sigma_i, {}))))
    return out


def _sharded_iter_find_rules(
    run: _FindRulesRun, sharder: ShardedEvaluator
) -> Iterator[MetaqueryAnswer]:
    """Distribute a run's first-level branches over the pool, stream the merge.

    Branches are sharded by the normalized shape of their instantiated
    first-node atoms (the same key family the batching layer groups by), so
    branches whose node joins coincide land on the same worker and share
    its caches.  Shard results arrive in completion order and pass through
    a position-keyed :class:`~repro.datalog.sharding.ReorderBuffer`, so
    answers are emitted incrementally as branches finish while the overall
    order stays byte-identical to :meth:`_FindRulesRun.iter_run`.
    """
    first_level = run.first_level_instantiations()
    if not first_level:
        yield from run.iter_run()
        return
    schemes = run.node_schemes(run.order[0])
    keys = [
        body_shape([sigma_i.image(s) for s in schemes])[0] for sigma_i in first_level
    ]
    buckets = partition(first_level, keys, sharder.workers)
    payloads = [
        (run.mq, run.thresholds, run.itype, run.prune_empty, run.use_full_reducer, bucket)
        for bucket in buckets
    ]
    buffer = ReorderBuffer()
    for chunk in sharder.imap_unordered(
        _shard_branches_task, payloads, item_count=len(first_level)
    ):
        for position, answers in chunk:
            buffer.push(position, answers)
        for answers in buffer.drain():
            yield from answers
    assert not buffer, "sharded FindRules merge left unconsumed branch positions"


def iter_find_rules(
    db: Database,
    mq: MetaQuery,
    thresholds: Thresholds | None = None,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    prune_empty: bool = True,
    use_full_reducer: bool = True,
    decomposition: HypertreeDecomposition | None = None,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
    workers: int = 1,
    sharder: ShardedEvaluator | None = None,
) -> Iterator[MetaqueryAnswer]:
    """Stream FindRules answers incrementally (the generator core).

    Same parameters and *exactly* the same answers in the same order as
    :func:`find_rules` — this is the function :func:`find_rules` collects.
    Validation (purity for type-0/1) happens eagerly at call time, before
    the first answer is requested; the returned iterator then yields each
    answer as ``findHeads`` confirms it (serially per branch, or as shard
    chunks complete and pass through the reorder buffer with
    ``workers > 1``).  Abandoning the iterator early closes an ephemeral
    pool via the generator's ``finally`` clause.
    """
    thresholds = thresholds or Thresholds.none()
    itype = InstantiationType.coerce(itype)
    if itype in (InstantiationType.TYPE_0, InstantiationType.TYPE_1) and not mq.is_pure():
        raise MetaqueryError(f"type-{int(itype)} instantiations require a pure metaquery")
    if ctx is None and cache:
        ctx = EvaluationContext(db)
    if batcher is None and batch:
        batcher = BatchEvaluator(db, ctx)
    run = _FindRulesRun(
        db, mq, thresholds, itype, prune_empty, use_full_reducer, decomposition, ctx, batcher
    )
    if decomposition is None:
        resolved, owned = resolve_sharder(
            db, workers, sharder,
            fast_path=ctx.fast_path if ctx is not None else True,
            cache=cache, batch=batch,
        )
        if resolved is not None:
            return _close_after(_sharded_iter_find_rules(run, resolved), resolved, owned)
    return run.iter_run()


def _close_after(
    answers: Iterator[MetaqueryAnswer], sharder: ShardedEvaluator, owned: bool
) -> Iterator[MetaqueryAnswer]:
    """Yield from ``answers``, closing an owned ephemeral sharder at the end.

    The ``finally`` clause also runs when the consumer abandons the stream
    (generator close / garbage collection), so early-stopped one-shot
    ``workers > 1`` calls never leak a pool.
    """
    try:
        yield from answers
    finally:
        if owned:
            sharder.close()


def find_rules(
    db: Database,
    mq: MetaQuery,
    thresholds: Thresholds | None = None,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    prune_empty: bool = True,
    use_full_reducer: bool = True,
    decomposition: HypertreeDecomposition | None = None,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
    workers: int = 1,
    sharder: ShardedEvaluator | None = None,
) -> AnswerSet:
    """Run the FindRules algorithm (Figure 4) and materialize every answer.

    A thin collector over :func:`iter_find_rules` — ``find_rules(...)`` is
    ``AnswerSet(iter_find_rules(...))``, so the streaming and materialized
    paths can never drift apart.

    Parameters
    ----------
    db, mq:
        The database instance and the metaquery.
    thresholds:
        Support / confidence / cover thresholds; ``None`` disables all
        filtering (then the result coincides with the naive engine's).
    itype:
        The instantiation type (0, 1 or 2).
    prune_empty:
        Prune branches whose intermediate node relation is empty (sound as
        soon as at least one threshold is enabled).
    use_full_reducer:
        Use the semijoin-program machinery of Section 4; when False the body
        join is recomputed from the raw relations (ablation baseline).
    decomposition:
        A pre-computed body decomposition to reuse across calls.
    cache, ctx:
        Evaluation caching (default on): per-node joins, atom relations and
        head relations are memoized in an
        :class:`~repro.datalog.context.EvaluationContext` shared across the
        whole search, so branches revisiting the same (node, relation
        choice) combination reuse the materialized relation.  An explicit
        ``ctx`` (e.g. the engine's persistent one) overrides ``cache``.
    batch, batcher:
        Batched instantiation evaluation (default on): ``findHeads`` seeds a
        :class:`~repro.datalog.batching.BatchEvaluator` shape group with the
        materialized body join and answers every agreeing head
        instantiation from the group's shared key indexes in one grouped
        semijoin pass.  An explicit ``batcher`` (e.g. the engine's
        persistent one) overrides ``batch``; pass ``batch=False`` for the
        per-head ablation baseline.
    workers, sharder:
        Sharded execution (default off): with ``workers > 1`` (or an
        explicit open :class:`~repro.datalog.sharding.ShardedEvaluator`)
        the first-level ``findBodies`` branches are distributed across a
        worker pool, sharded by instantiated-node shape, and the merged
        answer set is byte-identical to the serial run's.  Runs with an
        explicit ``decomposition`` stay serial (workers rebuild their own
        decomposition from the metaquery, which must match the parent's).
    """
    return AnswerSet(
        iter_find_rules(
            db, mq, thresholds, itype,
            prune_empty=prune_empty, use_full_reducer=use_full_reducer,
            decomposition=decomposition, cache=cache, ctx=ctx,
            batch=batch, batcher=batcher, workers=workers, sharder=sharder,
        ),
        algorithm="findrules",
    )


def support_via_decomposition(
    rule_body_atoms: Sequence[Atom], db: Database, ctx: EvaluationContext | None = None
) -> Fraction:
    """Compute ``sup`` of an (already instantiated) body via Theorem 4.12's recipe.

    Builds the hypertree decomposition of the body, materialises the node
    relations, fully reduces them and reads off ``max_i |reduced_i| / |r_i|``.
    Exposed separately so the Theorem 4.12 benchmark can time exactly this
    pipeline.
    """
    labelled = {f"a{i}": frozenset(v.name for v in atom.variables) for i, atom in enumerate(rule_body_atoms)}
    decomposition = decompose(labelled)
    atom_by_label = {f"a{i}": atom for i, atom in enumerate(rule_body_atoms)}

    preorder = decomposition.nodes
    order = list(reversed(preorder))
    position = {id(node): i for i, node in enumerate(order)}
    parent: dict[int, HypertreeNode | None] = {id(decomposition.root): None}
    for node in preorder:
        for child in node.children:
            parent[id(child)] = node

    relations: dict[int, Relation] = {}
    for i, node in enumerate(order):
        atoms = [atom_by_label[label] for label in sorted(node.lam, key=str)]
        joined = natural_join_all([atom_relation(a, db, ctx) for a in atoms])
        rel = joined.project([c for c in joined.columns if c in node.chi])
        for child in node.children:
            rel = rel.semijoin(relations[position[id(child)]])
        relations[i] = rel

    n = len(order)
    reduced: dict[int, Relation] = {n - 1: relations[n - 1]}
    for j in range(n - 2, -1, -1):
        par = parent[id(order[j])]
        assert par is not None
        reduced[j] = relations[j].semijoin(reduced[position[id(par)]])

    best = Fraction(0)
    for label, atom in atom_by_label.items():
        node = decomposition.covering_node(label)
        base = atom_relation(atom, db, ctx)
        if len(base) == 0:
            continue
        joined = reduced[position[id(node)]].natural_join(base)
        value = _ratio(len(joined.project(base.columns)), len(base))
        if value > best:
            best = value
    return best
