"""Acyclicity and semi-acyclicity of metaqueries (Definition 3.31).

The hypergraph ``H(MQ)`` has one vertex per variable of the metaquery —
*both* predicate variables and ordinary variables — and one hyperedge per
literal scheme, spanning that scheme's variables.  The semi-hypergraph
``SH(MQ)`` keeps only the ordinary variables.  ``MQ`` is *acyclic* when
``H(MQ)`` is acyclic and *semi-acyclic* when ``SH(MQ)`` is acyclic; every
acyclic metaquery is semi-acyclic, but not vice versa (the paper's
``N(X) <- N(Y), E(X,Y)`` example).

Edge labels are ``("head", 0)`` and ``("body", i)`` so duplicate literal
schemes remain distinct hyperedges.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.metaquery import LiteralScheme, MetaQuery
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "scheme_labels",
    "body_scheme_labels",
    "metaquery_hypergraph",
    "metaquery_semi_hypergraph",
    "is_acyclic_metaquery",
    "is_semi_acyclic_metaquery",
    "classify",
    "body_variable_sets",
    "conjunctive_query_hypergraph",
]

SchemeLabel = tuple[str, int]


def scheme_labels(mq: MetaQuery) -> list[tuple[SchemeLabel, LiteralScheme]]:
    """Stable labels for every literal-scheme occurrence of a metaquery."""
    labelled: list[tuple[SchemeLabel, LiteralScheme]] = [(("head", 0), mq.head)]
    for i, scheme in enumerate(mq.body):
        labelled.append((("body", i), scheme))
    return labelled


def body_scheme_labels(mq: MetaQuery) -> list[tuple[SchemeLabel, LiteralScheme]]:
    """Labels for the body literal schemes only (used by FindRules)."""
    return [(("body", i), scheme) for i, scheme in enumerate(mq.body)]


def metaquery_hypergraph(mq: MetaQuery) -> Hypergraph:
    """``H(MQ)``: vertices are all (predicate and ordinary) variables."""
    edges = {}
    for label, scheme in scheme_labels(mq):
        edges[label] = frozenset(scheme.all_variables)
    return Hypergraph(edges)


def metaquery_semi_hypergraph(mq: MetaQuery) -> Hypergraph:
    """``SH(MQ)``: vertices are the ordinary variables only."""
    edges = {}
    for label, scheme in scheme_labels(mq):
        edges[label] = frozenset(v.name for v in scheme.ordinary_variables)
    return Hypergraph(edges)


def is_acyclic_metaquery(mq: MetaQuery) -> bool:
    """True when ``H(MQ)`` is acyclic."""
    return is_acyclic(metaquery_hypergraph(mq))


def is_semi_acyclic_metaquery(mq: MetaQuery) -> bool:
    """True when ``SH(MQ)`` is acyclic.

    Every acyclic metaquery is also semi-acyclic (dropping the predicate
    variables can only make ear removal easier).
    """
    return is_acyclic(metaquery_semi_hypergraph(mq))


def classify(mq: MetaQuery) -> str:
    """Return ``"acyclic"``, ``"semi-acyclic"`` or ``"cyclic"``.

    The classification drives which rows of the Figure 5 complexity table
    apply and which engine strategy FindRules can use.
    """
    if is_acyclic_metaquery(mq):
        return "acyclic"
    if is_semi_acyclic_metaquery(mq):
        return "semi-acyclic"
    return "cyclic"


def body_variable_sets(mq: MetaQuery) -> dict[SchemeLabel, frozenset[str]]:
    """``{body label: ordinary-variable names}`` — input to the decomposition."""
    return {
        label: frozenset(v.name for v in scheme.ordinary_variables)
        for label, scheme in body_scheme_labels(mq)
    }


def conjunctive_query_hypergraph(variable_sets: Iterable[Iterable[str]]) -> Hypergraph:
    """Hypergraph of a plain conjunctive query given per-atom variable sets."""
    return Hypergraph({f"a{i}": frozenset(vs) for i, vs in enumerate(variable_sets)})
