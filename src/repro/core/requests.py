"""The request pipeline: validated requests, prepared metaqueries, streaming.

The engine facade historically exposed one blocking call per problem
(``find_rules`` parses, plans, evaluates and returns only when the slowest
shape group finishes).  This module redesigns that call path around three
explicit stages:

1. :class:`MetaqueryRequest` — an immutable, validated bundle of *what* to
   mine: metaquery text (or parsed object), :class:`Thresholds`,
   instantiation type and algorithm choice.  Invalid inputs fail at
   construction with :class:`~repro.exceptions.EngineError`, not deep
   inside evaluation.
2. :meth:`MetaqueryEngine.prepare(request) <repro.core.engine.MetaqueryEngine.prepare>`
   → :class:`PreparedMetaquery` — parse, classify (acyclicity), resolve
   ``"auto"`` to a concrete engine and plan (the hypertree body
   decomposition for FindRules) exactly once.  A prepared metaquery is
   reusable: repeated or parametrized mining over the same engine skips
   re-planning.
3. :meth:`PreparedMetaquery.stream` — an iterator of
   :class:`~repro.core.answers.MetaqueryAnswer`, emitted incrementally as
   instantiations / branches / shards are confirmed, in an order
   byte-identical to the materialized :meth:`PreparedMetaquery.collect`
   (a position-keyed :class:`~repro.datalog.sharding.ReorderBuffer`
   re-serializes out-of-order shard completions).  ``collect()`` is
   literally ``AnswerSet.collect(stream())``, so the two can never drift.

The FindRules algorithm (Figure 4) and the naive enumerate-and-test
procedure are both naturally incremental — answers are confirmed one
instantiation / branch at a time — which is what makes time-to-first-answer
a meaningful latency metric for interactive mining (see
``benchmarks/run_stream_latency.py``).

:mod:`repro.core.aio` builds the asyncio front-end on top of this module.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.core.acyclicity import classify
from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds
from repro.core.instantiation import InstantiationType
from repro.core.metaquery import MetaQuery
from repro.exceptions import EngineError, MetaqueryError
from repro.relational import columnar

__all__ = [
    "resolve_algorithm",
    "MetaqueryRequest",
    "PreparedMetaquery",
    "prepare_request",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.core.engine import MetaqueryEngine
    from repro.hypergraph.decomposition import HypertreeDecomposition

logger = logging.getLogger(__name__)

#: The algorithm names a request may carry (``"auto"`` resolves at prepare
#: time: FindRules when at least one threshold is enabled — its pruning
#: needs a threshold to be sound — otherwise naive).
ALGORITHMS = ("auto", "naive", "findrules")


def resolve_algorithm(algorithm: str, thresholds: Thresholds) -> str:
    """Resolve ``"auto"`` to the concrete engine for the given thresholds."""
    if algorithm != "auto":
        return algorithm
    has_threshold = any(
        t is not None for t in (thresholds.support, thresholds.confidence, thresholds.cover)
    )
    resolved = "findrules" if has_threshold else "naive"
    logger.info(
        "prepare: algorithm 'auto' resolved to %r (%s)",
        resolved,
        "thresholds enabled" if has_threshold else
        "all thresholds None; FindRules' pruning needs a threshold to be sound",
    )
    return resolved


@dataclass(frozen=True)
class MetaqueryRequest:
    """An immutable, validated metaquery request.

    Bundles everything a single mining problem needs — the metaquery (text
    or a parsed :class:`~repro.core.metaquery.MetaQuery`), the
    :class:`~repro.core.answers.Thresholds`, the instantiation type and the
    algorithm choice — and validates all of it at construction:

    * ``metaquery`` must be a non-empty string or a ``MetaQuery``;
    * ``thresholds`` may be ``None`` (no filtering) or a ``Thresholds``;
    * ``itype`` is coerced through :meth:`InstantiationType.coerce`;
    * ``algorithm`` must be one of :data:`ALGORITHMS`.

    Violations raise :class:`~repro.exceptions.EngineError` here, at the
    API boundary, instead of surfacing as obscure failures mid-evaluation.
    Requests are engine-independent (parsing needs the database's relation
    names, so it happens in ``engine.prepare``) and hashable, so they can
    key request-level caches.

    Examples
    --------
    >>> request = MetaqueryRequest("R(X,Z) <- P(X,Y), Q(Y,Z)",
    ...                            thresholds=Thresholds(support=0.2), itype=1)
    >>> request.algorithm
    'auto'
    >>> MetaqueryRequest("", itype=0)
    Traceback (most recent call last):
    ...
    repro.exceptions.EngineError: metaquery text must be non-empty
    """

    metaquery: MetaQuery | str
    thresholds: Thresholds
    itype: InstantiationType
    algorithm: str

    def __init__(
        self,
        metaquery: MetaQuery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int = InstantiationType.TYPE_0,
        algorithm: str = "auto",
    ) -> None:
        if isinstance(metaquery, str):
            if not metaquery.strip():
                raise EngineError("metaquery text must be non-empty")
        elif not isinstance(metaquery, MetaQuery):
            raise EngineError(
                f"metaquery must be a MetaQuery or its textual form, "
                f"got {type(metaquery).__name__}"
            )
        if thresholds is None:
            thresholds = Thresholds.none()
        elif not isinstance(thresholds, Thresholds):
            raise EngineError(
                f"thresholds must be a Thresholds or None, got {type(thresholds).__name__}"
            )
        try:
            itype = InstantiationType.coerce(itype)
        except Exception as exc:
            raise EngineError(f"invalid instantiation type: {itype!r}") from exc
        if algorithm not in ALGORITHMS:
            raise EngineError(
                f"unknown algorithm {algorithm!r}; use 'auto', 'naive' or 'findrules'"
            )
        object.__setattr__(self, "metaquery", metaquery)
        object.__setattr__(self, "thresholds", thresholds)
        object.__setattr__(self, "itype", itype)
        object.__setattr__(self, "algorithm", algorithm)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.metaquery}   [{self.thresholds}, type-{int(self.itype)}, "
            f"algorithm={self.algorithm}]"
        )


class PreparedMetaquery:
    """A parsed, classified and planned metaquery bound to one engine.

    Produced by :meth:`MetaqueryEngine.prepare`; do not construct directly.
    Preparation runs the per-metaquery work that is independent of the
    instantiation space exactly once:

    * parsing (with the engine database's relation names);
    * algorithm resolution (``"auto"`` → ``"naive"``/``"findrules"``);
    * purity validation for type-0/1 instantiations (fail fast, before any
      evaluation);
    * acyclicity classification (:attr:`classification`);
    * the hypertree body decomposition for FindRules
      (:attr:`decomposition`), reused by every serial run.

    A prepared metaquery stays valid for the lifetime of its engine — it
    reads the engine's *current* context/batcher/sharder at stream time, so
    ``invalidate_cache()`` and ``close()`` behave exactly as they do for
    one-shot calls — and may be streamed or collected any number of times.

    Attributes
    ----------
    request:
        The originating :class:`MetaqueryRequest`.
    mq:
        The parsed :class:`~repro.core.metaquery.MetaQuery`.
    algorithm:
        The resolved concrete algorithm, ``"naive"`` or ``"findrules"``.
    classification:
        ``"acyclic"`` / ``"semi-acyclic"`` / ``"cyclic"`` (Definition 3.31).
    decomposition:
        The FindRules body decomposition, or ``None`` for the naive engine.
    """

    __slots__ = ("engine", "request", "mq", "algorithm", "classification", "decomposition")

    def __init__(
        self,
        engine: "MetaqueryEngine",
        request: MetaqueryRequest,
        mq: MetaQuery,
        algorithm: str,
        classification: str,
        decomposition: "HypertreeDecomposition | None",
    ) -> None:
        self.engine = engine
        self.request = request
        self.mq = mq
        self.algorithm = algorithm
        self.classification = classification
        self.decomposition = decomposition

    # ------------------------------------------------------------------
    def _answer_cache_key(self) -> tuple[MetaQuery, Thresholds, int, str]:
        """The request-cache key: the *prepared* identity of this metaquery.

        Built from the parsed metaquery (so the textual and parsed
        spellings of one request share an entry), the thresholds, the
        instantiation type and the resolved algorithm.  The database's
        mutation state is deliberately not part of the key — the
        :class:`~repro.datalog.lifecycle.RequestCache` guards entries with
        the generation vector instead, dropping stale ones on lookup.
        """
        return (self.mq, self.request.thresholds, int(self.request.itype), self.algorithm)

    def stream(self) -> Iterator[MetaqueryAnswer]:
        """Yield threshold-passing answers incrementally, in ``collect`` order.

        Answers are emitted as the engine confirms them: per instantiation
        on the serial naive path, per ``findHeads`` acceptance on the serial
        FindRules path, and per completed shard (through the reorder
        buffer, order byte-identical to serial) when the engine has an
        active worker pool.  Breaking out of the loop early is supported
        and cheap — remaining work on a persistent pool is simply never
        consumed.

        With the engine's request cache enabled, a repeat of an already
        completed request replays the recorded answers (same order — the
        emission order is deterministic) without re-evaluating, and a
        stream consumed to exhaustion records its answers for future
        repeats; early-stopped streams record nothing.
        """
        cache = self.engine.request_cache
        if cache is None:
            yield from self._evaluate()
            return
        key = self._answer_cache_key()
        vector = self.engine.db.generation_vector()
        cached = cache.get(key, vector)
        if cached is not None:
            yield from cached
            return
        collected: list[MetaqueryAnswer] = []
        for answer in self._evaluate():
            collected.append(answer)
            yield answer
        cache.put(key, vector, AnswerSet(collected, algorithm=self.algorithm))

    def _evaluate(self) -> Iterator[MetaqueryAnswer]:
        """The uncached evaluation core; each call runs an independent search.

        The engine's ``columnar`` setting is pinned around each pull of the
        underlying generator (:func:`repro.relational.columnar.iterate_with`)
        rather than held open across yields — a generator shares its
        caller's context, so a plain context manager would leak the
        override to whoever is consuming the stream.
        """
        return columnar.iterate_with(self.engine.columnar, self._evaluate_inner)

    def _evaluate_inner(self) -> Iterator[MetaqueryAnswer]:
        # Late imports keep the module free of a requests → naive/findrules →
        # engine import cycle at load time.
        from repro.core.findrules import iter_find_rules
        from repro.core.naive import iter_answers

        engine = self.engine
        request = self.request
        thresholds = request.thresholds
        if self.algorithm == "naive":
            for answer in iter_answers(
                engine.db, self.mq, request.itype,
                ctx=engine.context, batch=engine.batch, batcher=engine.batcher,
                sharder=engine.sharder,
            ):
                if thresholds.accepts(answer.support, answer.confidence, answer.cover):
                    yield answer
            return
        sharded = engine.sharder is not None and engine.sharder.active
        yield from iter_find_rules(
            engine.db, self.mq, thresholds, request.itype,
            # The prepared decomposition is reused on serial runs; sharded
            # runs pass None because workers rebuild their own (identical)
            # decomposition from the metaquery, and an explicit one pins
            # iter_find_rules to the serial path.
            decomposition=None if sharded else self.decomposition,
            ctx=engine.context, batch=engine.batch, batcher=engine.batcher,
            sharder=engine.sharder,
        )

    def collect(self) -> AnswerSet:
        """Materialize the stream into an :class:`AnswerSet` (tagged with
        the algorithm that actually ran) — byte-identical to the stream.

        A repeat of an already completed request is served from the
        engine's request cache without re-evaluating — an
        answer-count-bounded copy instead of an exponential search — as
        long as the database's generation vector still matches the one the
        evaluation started from.  The cache keeps private snapshots and
        every call returns a fresh :class:`AnswerSet`, so mutating a result
        in place (``AnswerSet.append``) cannot poison later replays.
        """
        cache = self.engine.request_cache
        if cache is None:
            return AnswerSet.collect(self._evaluate(), algorithm=self.algorithm)
        key = self._answer_cache_key()
        vector = self.engine.db.generation_vector()
        cached = cache.get(key, vector)
        if cached is not None:
            return AnswerSet(cached, algorithm=cached.algorithm)
        answers = AnswerSet.collect(self._evaluate(), algorithm=self.algorithm)
        cache.put(key, vector, AnswerSet(answers, algorithm=self.algorithm))
        return answers

    def __iter__(self) -> Iterator[MetaqueryAnswer]:
        """Iterating a prepared metaquery streams it."""
        return self.stream()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreparedMetaquery({self.mq}, algorithm={self.algorithm!r}, "
            f"classification={self.classification!r})"
        )


def prepare_request(engine: "MetaqueryEngine", request: MetaqueryRequest) -> PreparedMetaquery:
    """The engine-side prepare step (exposed via ``MetaqueryEngine.prepare``).

    Parses against the engine's database, resolves the algorithm, validates
    purity for type-0/1 instantiations, classifies the metaquery and —
    for FindRules — computes the body decomposition.
    """
    from repro.core.findrules import body_decomposition

    mq = request.metaquery
    if isinstance(mq, str):
        mq = engine.parse(mq)
    algorithm = resolve_algorithm(request.algorithm, request.thresholds)
    if int(request.itype) in (0, 1) and not mq.is_pure():
        raise MetaqueryError(
            f"type-{int(request.itype)} instantiations require a pure metaquery"
        )
    classification = classify(mq)
    decomposition = body_decomposition(mq) if algorithm == "findrules" else None
    return PreparedMetaquery(engine, request, mq, algorithm, classification, decomposition)
