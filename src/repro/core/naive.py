"""The naive metaquery engine: enumerate every instantiation and test it.

This is the guess-and-check procedure implicit in the membership proofs of
Section 3.3 (Theorem 3.21 and Theorem 3.24): enumerate every type-T
instantiation, compute the requested indices by explicit joins and keep the
instantiations passing the thresholds.  It is exponential in the metaquery
size but serves two purposes:

* it is the reference implementation against which FindRules is tested, and
* it is the baseline of the Figure 4 benchmarks.

All entry points accept three independent acceleration switches:

* ``cache=`` (default on) — a shared
  :class:`~repro.datalog.context.EvaluationContext` memoizes atom
  relations, body joins and fractions across instantiations, so e.g. the
  body join of a rule is computed once rather than once per head
  instantiation;
* ``batch=`` (default on) — a
  :class:`~repro.datalog.batching.BatchEvaluator` groups instantiations
  sharing a normalized body shape, materializes each group's canonical
  join once and answers every member (all head instantiations of one
  body, support included) from the group's shared key indexes instead of
  issuing per-pair join queries;
* ``workers=`` (default 1, i.e. off) — a
  :class:`~repro.datalog.sharding.ShardedEvaluator` distributes whole
  shape groups across a ``multiprocessing`` worker pool; every worker
  owns a private context/batcher pair and the merged answers are
  byte-identical to the serial path's (same enumeration, same order,
  same exact fractions).  ``workers=1`` never spawns a pool.

Pass ``cache=False``/``batch=False`` (or explicit ``ctx=``/``batcher=``/
``sharder=`` objects, which win over the switches) for the ablation
baselines.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds, validate_threshold
from repro.core.indices import (
    CONFIDENCE,
    COVER,
    SUPPORT,
    PlausibilityIndex,
    all_indices,
    get_index,
    index_is_positive,
)
from repro.core.instantiation import Instantiation, InstantiationType, enumerate_instantiations
from repro.core.metaquery import MetaQuery
from repro.datalog.batching import BatchEvaluator, body_shape
from repro.datalog.context import EvaluationContext
from repro.datalog.rules import HornRule
from repro.datalog.sharding import (
    ReorderBuffer,
    ShardedEvaluator,
    partition,
    resolve_sharder,
    worker_state,
)
from repro.relational.database import Database

__all__ = ["iter_answers", "naive_find_rules", "naive_decide", "naive_witness"]


def _rule_is_evaluable(rule: HornRule, db: Database) -> bool:
    """Every predicate of the rule must name a database relation of matching arity."""
    for atom in rule.atoms:
        if atom.predicate not in db:
            return False
        if db[atom.predicate].arity != atom.arity:
            return False
    return True


def _make_context(
    db: Database, cache: bool, ctx: EvaluationContext | None
) -> EvaluationContext | None:
    """Resolve the caching switch: an explicit context wins, else build one."""
    if ctx is not None:
        return ctx
    return EvaluationContext(db) if cache else None


def _make_batcher(
    db: Database,
    batch: bool,
    batcher: BatchEvaluator | None,
    ctx: EvaluationContext | None,
) -> BatchEvaluator | None:
    """Resolve the batching switch: an explicit (valid) evaluator wins."""
    if batcher is not None and batcher.applies_to(db):
        return batcher
    return BatchEvaluator(db, ctx) if batch else None


#: Resolve the sharding switch (see :func:`repro.datalog.sharding.resolve_sharder`);
#: named like the sibling :func:`_make_context` / :func:`_make_batcher` resolvers.
_make_sharder = resolve_sharder


def _rule_indices(
    rule: HornRule,
    db: Database,
    ctx: EvaluationContext | None,
    batcher: BatchEvaluator | None,
) -> tuple[Fraction, Fraction, Fraction]:
    """``(sup, cnf, cvr)`` of one rule, batched when an evaluator is given."""
    if batcher is not None:
        group = batcher.body_group(rule.body_atoms)
        cover, confidence = batcher.head_indices(group, rule.head)
        return group.support, confidence, cover
    values = all_indices(rule, db, ctx)
    return values["sup"], values["cnf"], values["cvr"]


def _enumerate_evaluable(
    db: Database, mq: MetaQuery, itype: InstantiationType | int
) -> Iterator[tuple[Instantiation, HornRule]]:
    """Instantiations (with their rules) whose predicates the database can evaluate."""
    for instantiation in enumerate_instantiations(mq, db, itype):
        rule = instantiation.apply(mq)
        if _rule_is_evaluable(rule, db):
            yield instantiation, rule


# ----------------------------------------------------------------------
# sharded worker tasks (module-level so the pool can pickle them by name)
# ----------------------------------------------------------------------
def _shard_indices_task(
    bucket: list[tuple[int, HornRule]],
) -> list[tuple[int, Fraction, Fraction, Fraction]]:
    """Worker task: evaluate one shard's ``(position, rule)`` items.

    Runs inside a pool process; all rules of one shape group are in the same
    bucket, so the worker's private batcher materializes each group's
    canonical join exactly once, as the serial batched path would.
    """
    db, ctx, batcher = worker_state()
    out = []
    for position, rule in bucket:
        support, confidence, cover = _rule_indices(rule, db, ctx, batcher)
        out.append((position, support, confidence, cover))
    return out


def _index_exceeds(
    rule: HornRule,
    index_obj: PlausibilityIndex,
    k: Fraction,
    db: Database,
    ctx: EvaluationContext | None,
    batcher: BatchEvaluator | None,
) -> bool:
    """``index_obj(rule) > k`` via the cheapest applicable path.

    Shared by the serial and sharded first-hit searches.  For the three
    standard indices the batched path answers the test from the body's
    shape group; at ``k = 0`` it degenerates to the certifying-set
    satisfiability test of Proposition 3.20 (``sup > 0`` iff the body join
    is non-empty, ``cnf/cvr > 0`` iff some body key meets a head key) —
    exactly the shortcut the unbatched path takes via
    :func:`~repro.core.indices.index_is_positive`.  Custom indices always
    go through their own ``compute`` callable.
    """
    standard = index_obj is SUPPORT or index_obj is CONFIDENCE or index_obj is COVER
    if batcher is not None and standard:
        group = batcher.body_group(rule.body_atoms)
        if index_obj is SUPPORT:
            return group.size > 0 if k == 0 else group.support > k
        if k == 0:
            return batcher.head_joins(group, rule.head)
        cover, confidence = batcher.head_indices(group, rule.head)
        return (cover if index_obj is COVER else confidence) > k
    if k == 0:
        return index_is_positive(rule, index_obj, db, ctx)
    return index_obj(rule, db, ctx) > k


def _shard_first_hit_task(
    payload: tuple[list[tuple[int, HornRule]], str, Fraction],
) -> int | None:
    """Worker task: the first position in this shard with ``index > k``.

    Applies :func:`_index_exceeds` with the worker's private evaluator
    pair; buckets arrive in ascending position order, so the worker can
    short-circuit on its first hit and the parent takes the minimum over
    shards.
    """
    bucket, index_name, k = payload
    db, ctx, batcher = worker_state()
    index_obj = get_index(index_name)
    for position, rule in bucket:
        if _index_exceeds(rule, index_obj, k, db, ctx, batcher):
            return position
    return None


def _shard_items(
    db: Database, mq: MetaQuery, itype: InstantiationType | int, sharder: ShardedEvaluator
) -> tuple[list[tuple[Instantiation, HornRule]], list[list[tuple[int, HornRule]]]]:
    """Enumerate serially, then partition the rules by body-shape group key.

    Enumeration stays in the parent so type-2 padding counters advance
    exactly as on the serial path (the names are part of byte-identity);
    only the small instantiated rules are pickled to the workers.
    """
    items = list(_enumerate_evaluable(db, mq, itype))
    rules = [rule for _, rule in items]
    keys = [body_shape(rule.body_atoms)[0] for rule in rules]
    return items, partition(rules, keys, sharder.workers)


def _sharded_answers(
    db: Database, mq: MetaQuery, itype: InstantiationType | int, sharder: ShardedEvaluator
) -> Iterator[MetaqueryAnswer]:
    """The sharded arm of :func:`iter_answers`: stream shards through a reorder buffer.

    Shard chunks arrive in completion order (``imap_unordered``); each
    evaluated position is parked in a
    :class:`~repro.datalog.sharding.ReorderBuffer` and answers are emitted
    the moment the serial-order prefix is complete — incremental delivery
    with an emission order byte-identical to the serial path's.
    """
    items, buckets = _shard_items(db, mq, itype, sharder)
    buffer = ReorderBuffer()
    for chunk in sharder.imap_unordered(_shard_indices_task, buckets, item_count=len(items)):
        for position, support, confidence, cover in chunk:
            instantiation, rule = items[position]
            buffer.push(
                position,
                MetaqueryAnswer(
                    instantiation=instantiation,
                    rule=rule,
                    support=support,
                    confidence=confidence,
                    cover=cover,
                ),
            )
        yield from buffer.drain()
    assert not buffer, "sharded merge left unconsumed answer positions"


def _sharded_first_hit(
    db: Database,
    mq: MetaQuery,
    index_obj: PlausibilityIndex,
    k: Fraction,
    itype: InstantiationType | int,
    sharder: ShardedEvaluator,
) -> tuple[Instantiation, HornRule] | None:
    """Sharded :func:`_first_hit`: per-shard short-circuit, global min position.

    Every shard stops at its own first hit; the minimum over shards is the
    globally first hitting position of the serial enumeration order, so the
    witness is identical to the serial path's.
    """
    items, buckets = _shard_items(db, mq, itype, sharder)
    payloads = [(bucket, index_obj.name, k) for bucket in buckets]
    hits = [
        hit
        for hit in sharder.map(_shard_first_hit_task, payloads, item_count=len(items))
        if hit is not None
    ]
    if not hits:
        return None
    return items[min(hits)]


def iter_answers(
    db: Database,
    mq: MetaQuery,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
    workers: int = 1,
    sharder: ShardedEvaluator | None = None,
) -> Iterator[MetaqueryAnswer]:
    """Yield an answer (with all three indices) for every evaluable instantiation.

    With ``workers > 1`` (or an explicit ``sharder``) the instantiations are
    evaluated by the worker pool and yielded in the exact serial order: the
    sharded arm enumerates up front (padding determinism), dispatches the
    shards and streams results through a position-keyed reorder buffer, so
    answers are emitted as shards complete and are byte-identical to the
    serial path's.  This generator is the core the streaming API
    (``PreparedMetaquery.stream``) builds on.
    """
    resolved, owned = _make_sharder(
        db, workers, sharder,
        fast_path=ctx.fast_path if ctx is not None else True,
        cache=cache, batch=batch,
    )
    if resolved is not None:
        try:
            yield from _sharded_answers(db, mq, itype, resolved)
        finally:
            if owned:
                resolved.close()
        return
    ctx = _make_context(db, cache, ctx)
    batcher = _make_batcher(db, batch, batcher, ctx)
    for instantiation, rule in _enumerate_evaluable(db, mq, itype):
        support, confidence, cover = _rule_indices(rule, db, ctx, batcher)
        yield MetaqueryAnswer(
            instantiation=instantiation,
            rule=rule,
            support=support,
            confidence=confidence,
            cover=cover,
        )


def naive_find_rules(
    db: Database,
    mq: MetaQuery,
    thresholds: Thresholds | None = None,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
    workers: int = 1,
    sharder: ShardedEvaluator | None = None,
) -> AnswerSet:
    """All instantiations whose indices pass the thresholds.

    ``thresholds=None`` keeps every instantiation (useful for inspecting the
    full answer space of a small database).
    """
    thresholds = thresholds or Thresholds.none()
    answers = AnswerSet(algorithm="naive")
    for answer in iter_answers(
        db, mq, itype, cache=cache, ctx=ctx, batch=batch, batcher=batcher,
        workers=workers, sharder=sharder,
    ):
        if thresholds.accepts(answer.support, answer.confidence, answer.cover):
            answers.append(answer)
    return answers


def _first_hit(
    db: Database,
    mq: MetaQuery,
    index_obj: PlausibilityIndex,
    k: Fraction,
    itype: InstantiationType | int,
    ctx: EvaluationContext | None,
    batcher: BatchEvaluator | None,
):
    """The first instantiation with ``I(σ(MQ)) > k``, shared by decide/witness.

    Returns ``(instantiation, rule)`` or ``None``; the per-rule test is
    :func:`_index_exceeds` (batched shape-group path for the standard
    indices, certifying-set shortcut at ``k = 0``, ``compute`` callable
    for custom indices).
    """
    for instantiation, rule in _enumerate_evaluable(db, mq, itype):
        if _index_exceeds(rule, index_obj, k, db, ctx, batcher):
            return instantiation, rule
    return None


def naive_decide(
    db: Database,
    mq: MetaQuery,
    index: str | PlausibilityIndex,
    k: Fraction | float | int,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
    workers: int = 1,
    sharder: ShardedEvaluator | None = None,
) -> bool:
    """Decide the metaquerying problem ``⟨DB, MQ, I, k, T⟩`` (Section 3.2).

    True iff some type-T instantiation has ``I(σ(MQ)) > k``.  For ``k = 0``
    the certifying-set shortcut of Proposition 3.20 is used, which only needs
    Boolean conjunctive-query satisfiability rather than counting.

    With ``workers > 1`` the instantiation space is sharded by body shape;
    every shard short-circuits at its first hit and the answer is the same
    as the serial path's.  Custom (non sup/cnf/cvr) indices always run
    serially — their ``compute`` callables may not survive pickling.
    """
    index_obj = get_index(index)
    k = validate_threshold(k)
    if index_obj is SUPPORT or index_obj is CONFIDENCE or index_obj is COVER:
        resolved, owned = _make_sharder(
            db, workers, sharder,
            fast_path=ctx.fast_path if ctx is not None else True,
            cache=cache, batch=batch,
        )
        if resolved is not None:
            try:
                return _sharded_first_hit(db, mq, index_obj, k, itype, resolved) is not None
            finally:
                if owned:
                    resolved.close()
    ctx = _make_context(db, cache, ctx)
    batcher = _make_batcher(db, batch, batcher, ctx)
    return _first_hit(db, mq, index_obj, k, itype, ctx, batcher) is not None


def naive_witness(
    db: Database,
    mq: MetaQuery,
    index: str | PlausibilityIndex,
    k: Fraction | float | int,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
    workers: int = 1,
    sharder: ShardedEvaluator | None = None,
) -> MetaqueryAnswer | None:
    """A witnessing answer for the decision problem, or None when it is a NO instance.

    Mirrors :func:`naive_decide` exactly — the same ``0 <= k < 1``
    validation, the same certifying-set shortcut of Proposition 3.20 at
    ``k = 0``, the same per-rule ``index > k`` test (which also works
    for custom indices outside {sup, cnf, cvr}) and the same sharded
    first-hit search with ``workers > 1`` — so the two can never disagree
    on the same instance (``naive_witness`` is not None iff
    ``naive_decide`` is True).
    """
    index_obj = get_index(index)
    k = validate_threshold(k)
    ctx = _make_context(db, cache, ctx)
    batcher = _make_batcher(db, batch, batcher, ctx)
    found = None
    searched_sharded = False
    if index_obj is SUPPORT or index_obj is CONFIDENCE or index_obj is COVER:
        resolved, owned = _make_sharder(
            db, workers, sharder,
            fast_path=ctx.fast_path if ctx is not None else True,
            cache=cache, batch=batch,
        )
        if resolved is not None:
            try:
                found = _sharded_first_hit(db, mq, index_obj, k, itype, resolved)
                searched_sharded = True
            finally:
                if owned:
                    resolved.close()
    if not searched_sharded:
        found = _first_hit(db, mq, index_obj, k, itype, ctx, batcher)
    if found is None:
        return None
    instantiation, rule = found
    support, confidence, cover = _rule_indices(rule, db, ctx, batcher)
    return MetaqueryAnswer(
        instantiation=instantiation,
        rule=rule,
        support=support,
        confidence=confidence,
        cover=cover,
    )
