"""The naive metaquery engine: enumerate every instantiation and test it.

This is the guess-and-check procedure implicit in the membership proofs of
Section 3.3 (Theorem 3.21 and Theorem 3.24): enumerate every type-T
instantiation, compute the requested indices by explicit joins and keep the
instantiations passing the thresholds.  It is exponential in the metaquery
size but serves two purposes:

* it is the reference implementation against which FindRules is tested, and
* it is the baseline of the Figure 4 benchmarks.

All entry points accept ``cache=`` (default on): a shared
:class:`~repro.datalog.context.EvaluationContext` memoizes atom relations,
body joins and fractions across instantiations, so e.g. the body join of a
rule is computed once rather than once per head instantiation.  Pass
``cache=False`` (or ``ctx=None`` explicitly with ``cache=False``) for the
uncached ablation baseline.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds, validate_threshold
from repro.core.indices import PlausibilityIndex, all_indices, get_index, index_is_positive
from repro.core.instantiation import InstantiationType, enumerate_instantiations
from repro.core.metaquery import MetaQuery
from repro.datalog.context import EvaluationContext
from repro.datalog.rules import HornRule
from repro.relational.database import Database


def _rule_is_evaluable(rule: HornRule, db: Database) -> bool:
    """Every predicate of the rule must name a database relation of matching arity."""
    for atom in rule.atoms:
        if atom.predicate not in db:
            return False
        if db[atom.predicate].arity != atom.arity:
            return False
    return True


def _make_context(
    db: Database, cache: bool, ctx: EvaluationContext | None
) -> EvaluationContext | None:
    """Resolve the caching switch: an explicit context wins, else build one."""
    if ctx is not None:
        return ctx
    return EvaluationContext(db) if cache else None


def iter_answers(
    db: Database,
    mq: MetaQuery,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
) -> Iterator[MetaqueryAnswer]:
    """Yield an answer (with all three indices) for every evaluable instantiation."""
    ctx = _make_context(db, cache, ctx)
    for instantiation in enumerate_instantiations(mq, db, itype):
        rule = instantiation.apply(mq)
        if not _rule_is_evaluable(rule, db):
            continue
        values = all_indices(rule, db, ctx)
        yield MetaqueryAnswer(
            instantiation=instantiation,
            rule=rule,
            support=values["sup"],
            confidence=values["cnf"],
            cover=values["cvr"],
        )


def naive_find_rules(
    db: Database,
    mq: MetaQuery,
    thresholds: Thresholds | None = None,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
) -> AnswerSet:
    """All instantiations whose indices pass the thresholds.

    ``thresholds=None`` keeps every instantiation (useful for inspecting the
    full answer space of a small database).
    """
    thresholds = thresholds or Thresholds.none()
    answers = AnswerSet(algorithm="naive")
    for answer in iter_answers(db, mq, itype, cache=cache, ctx=ctx):
        if thresholds.accepts(answer.support, answer.confidence, answer.cover):
            answers.append(answer)
    return answers


def naive_decide(
    db: Database,
    mq: MetaQuery,
    index: str | PlausibilityIndex,
    k: Fraction | float | int,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
) -> bool:
    """Decide the metaquerying problem ``⟨DB, MQ, I, k, T⟩`` (Section 3.2).

    True iff some type-T instantiation has ``I(σ(MQ)) > k``.  For ``k = 0``
    the certifying-set shortcut of Proposition 3.20 is used, which only needs
    Boolean conjunctive-query satisfiability rather than counting.
    """
    index_obj = get_index(index)
    k = validate_threshold(k)
    ctx = _make_context(db, cache, ctx)
    for instantiation in enumerate_instantiations(mq, db, itype):
        rule = instantiation.apply(mq)
        if not _rule_is_evaluable(rule, db):
            continue
        if k == 0:
            if index_is_positive(rule, index_obj, db, ctx):
                return True
        else:
            if index_obj(rule, db, ctx) > k:
                return True
    return False


def naive_witness(
    db: Database,
    mq: MetaQuery,
    index: str | PlausibilityIndex,
    k: Fraction | float | int,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
) -> MetaqueryAnswer | None:
    """A witnessing answer for the decision problem, or None when it is a NO instance.

    Mirrors :func:`naive_decide` exactly — the same ``0 <= k < 1``
    validation, the same certifying-set shortcut of Proposition 3.20 at
    ``k = 0``, and the same per-rule ``index > k`` test (which also works
    for custom indices outside {sup, cnf, cvr}) — so the two can never
    disagree on the same instance (``naive_witness`` is not None iff
    ``naive_decide`` is True).
    """
    index_obj = get_index(index)
    k = validate_threshold(k)
    ctx = _make_context(db, cache, ctx)
    for instantiation in enumerate_instantiations(mq, db, itype):
        rule = instantiation.apply(mq)
        if not _rule_is_evaluable(rule, db):
            continue
        if k == 0:
            # Certifying-set shortcut: witness by satisfiability alone, then
            # compute the indices once for the report.
            hit = index_is_positive(rule, index_obj, db, ctx)
        else:
            hit = index_obj(rule, db, ctx) > k
        if hit:
            values = all_indices(rule, db, ctx)
            return MetaqueryAnswer(
                instantiation=instantiation,
                rule=rule,
                support=values["sup"],
                confidence=values["cnf"],
                cover=values["cvr"],
            )
    return None
