"""The naive metaquery engine: enumerate every instantiation and test it.

This is the guess-and-check procedure implicit in the membership proofs of
Section 3.3 (Theorem 3.21 and Theorem 3.24): enumerate every type-T
instantiation, compute the requested indices by explicit joins and keep the
instantiations passing the thresholds.  It is exponential in the metaquery
size but serves two purposes:

* it is the reference implementation against which FindRules is tested, and
* it is the baseline of the Figure 4 benchmarks.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds
from repro.core.indices import PlausibilityIndex, all_indices, get_index, index_is_positive
from repro.core.instantiation import InstantiationType, enumerate_instantiations
from repro.core.metaquery import MetaQuery
from repro.datalog.rules import HornRule
from repro.relational.database import Database


def _rule_is_evaluable(rule: HornRule, db: Database) -> bool:
    """Every predicate of the rule must name a database relation of matching arity."""
    for atom in rule.atoms:
        if atom.predicate not in db:
            return False
        if db[atom.predicate].arity != atom.arity:
            return False
    return True


def iter_answers(
    db: Database,
    mq: MetaQuery,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
) -> Iterator[MetaqueryAnswer]:
    """Yield an answer (with all three indices) for every evaluable instantiation."""
    for instantiation in enumerate_instantiations(mq, db, itype):
        rule = instantiation.apply(mq)
        if not _rule_is_evaluable(rule, db):
            continue
        values = all_indices(rule, db)
        yield MetaqueryAnswer(
            instantiation=instantiation,
            rule=rule,
            support=values["sup"],
            confidence=values["cnf"],
            cover=values["cvr"],
        )


def naive_find_rules(
    db: Database,
    mq: MetaQuery,
    thresholds: Thresholds | None = None,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
) -> AnswerSet:
    """All instantiations whose indices pass the thresholds.

    ``thresholds=None`` keeps every instantiation (useful for inspecting the
    full answer space of a small database).
    """
    thresholds = thresholds or Thresholds.none()
    answers = AnswerSet()
    for answer in iter_answers(db, mq, itype):
        if thresholds.accepts(answer.support, answer.confidence, answer.cover):
            answers.append(answer)
    return answers


def naive_decide(
    db: Database,
    mq: MetaQuery,
    index: str | PlausibilityIndex,
    k: Fraction | float | int,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
) -> bool:
    """Decide the metaquerying problem ``⟨DB, MQ, I, k, T⟩`` (Section 3.2).

    True iff some type-T instantiation has ``I(σ(MQ)) > k``.  For ``k = 0``
    the certifying-set shortcut of Proposition 3.20 is used, which only needs
    Boolean conjunctive-query satisfiability rather than counting.
    """
    index_obj = get_index(index)
    k = k if isinstance(k, Fraction) else Fraction(k).limit_denominator(10**9)
    if not 0 <= k < 1:
        raise ValueError(f"threshold must satisfy 0 <= k < 1, got {k}")
    for instantiation in enumerate_instantiations(mq, db, itype):
        rule = instantiation.apply(mq)
        if not _rule_is_evaluable(rule, db):
            continue
        if k == 0:
            if index_is_positive(rule, index_obj, db):
                return True
        else:
            if index_obj(rule, db) > k:
                return True
    return False


def naive_witness(
    db: Database,
    mq: MetaQuery,
    index: str | PlausibilityIndex,
    k: Fraction | float | int,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
) -> MetaqueryAnswer | None:
    """A witnessing answer for the decision problem, or None when it is a NO instance."""
    index_obj = get_index(index)
    k = k if isinstance(k, Fraction) else Fraction(k).limit_denominator(10**9)
    for answer in iter_answers(db, mq, itype):
        if answer.index(index_obj.name) > k:
            return answer
    return None
