"""The naive metaquery engine: enumerate every instantiation and test it.

This is the guess-and-check procedure implicit in the membership proofs of
Section 3.3 (Theorem 3.21 and Theorem 3.24): enumerate every type-T
instantiation, compute the requested indices by explicit joins and keep the
instantiations passing the thresholds.  It is exponential in the metaquery
size but serves two purposes:

* it is the reference implementation against which FindRules is tested, and
* it is the baseline of the Figure 4 benchmarks.

All entry points accept two independent acceleration switches (both
default on):

* ``cache=`` — a shared :class:`~repro.datalog.context.EvaluationContext`
  memoizes atom relations, body joins and fractions across instantiations,
  so e.g. the body join of a rule is computed once rather than once per
  head instantiation;
* ``batch=`` — a :class:`~repro.datalog.batching.BatchEvaluator` groups
  instantiations sharing a normalized body shape, materializes each
  group's canonical join once and answers every member (all head
  instantiations of one body, support included) from the group's shared
  key indexes instead of issuing per-pair join queries.

Pass ``cache=False``/``batch=False`` (or explicit ``ctx=``/``batcher=``
objects, which win over the booleans) for the ablation baselines.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator

from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds, validate_threshold
from repro.core.indices import (
    CONFIDENCE,
    COVER,
    SUPPORT,
    PlausibilityIndex,
    all_indices,
    get_index,
    index_is_positive,
)
from repro.core.instantiation import InstantiationType, enumerate_instantiations
from repro.core.metaquery import MetaQuery
from repro.datalog.batching import BatchEvaluator
from repro.datalog.context import EvaluationContext
from repro.datalog.rules import HornRule
from repro.relational.database import Database


def _rule_is_evaluable(rule: HornRule, db: Database) -> bool:
    """Every predicate of the rule must name a database relation of matching arity."""
    for atom in rule.atoms:
        if atom.predicate not in db:
            return False
        if db[atom.predicate].arity != atom.arity:
            return False
    return True


def _make_context(
    db: Database, cache: bool, ctx: EvaluationContext | None
) -> EvaluationContext | None:
    """Resolve the caching switch: an explicit context wins, else build one."""
    if ctx is not None:
        return ctx
    return EvaluationContext(db) if cache else None


def _make_batcher(
    db: Database,
    batch: bool,
    batcher: BatchEvaluator | None,
    ctx: EvaluationContext | None,
) -> BatchEvaluator | None:
    """Resolve the batching switch: an explicit (valid) evaluator wins."""
    if batcher is not None and batcher.applies_to(db):
        return batcher
    return BatchEvaluator(db, ctx) if batch else None


def _rule_indices(
    rule: HornRule,
    db: Database,
    ctx: EvaluationContext | None,
    batcher: BatchEvaluator | None,
) -> tuple[Fraction, Fraction, Fraction]:
    """``(sup, cnf, cvr)`` of one rule, batched when an evaluator is given."""
    if batcher is not None:
        group = batcher.body_group(rule.body_atoms)
        cover, confidence = batcher.head_indices(group, rule.head)
        return group.support, confidence, cover
    values = all_indices(rule, db, ctx)
    return values["sup"], values["cnf"], values["cvr"]


def iter_answers(
    db: Database,
    mq: MetaQuery,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
) -> Iterator[MetaqueryAnswer]:
    """Yield an answer (with all three indices) for every evaluable instantiation."""
    ctx = _make_context(db, cache, ctx)
    batcher = _make_batcher(db, batch, batcher, ctx)
    for instantiation in enumerate_instantiations(mq, db, itype):
        rule = instantiation.apply(mq)
        if not _rule_is_evaluable(rule, db):
            continue
        support, confidence, cover = _rule_indices(rule, db, ctx, batcher)
        yield MetaqueryAnswer(
            instantiation=instantiation,
            rule=rule,
            support=support,
            confidence=confidence,
            cover=cover,
        )


def naive_find_rules(
    db: Database,
    mq: MetaQuery,
    thresholds: Thresholds | None = None,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
) -> AnswerSet:
    """All instantiations whose indices pass the thresholds.

    ``thresholds=None`` keeps every instantiation (useful for inspecting the
    full answer space of a small database).
    """
    thresholds = thresholds or Thresholds.none()
    answers = AnswerSet(algorithm="naive")
    for answer in iter_answers(db, mq, itype, cache=cache, ctx=ctx, batch=batch, batcher=batcher):
        if thresholds.accepts(answer.support, answer.confidence, answer.cover):
            answers.append(answer)
    return answers


def _first_hit(
    db: Database,
    mq: MetaQuery,
    index_obj: PlausibilityIndex,
    k: Fraction,
    itype: InstantiationType | int,
    ctx: EvaluationContext | None,
    batcher: BatchEvaluator | None,
):
    """The first instantiation with ``I(σ(MQ)) > k``, shared by decide/witness.

    Returns ``(instantiation, rule)`` or ``None``.  For the three
    standard indices the batched path answers each test from the body's
    shape group; at ``k = 0`` it degenerates to the certifying-set
    satisfiability test of Proposition 3.20 (``sup > 0`` iff the body join
    is non-empty, ``cnf/cvr > 0`` iff some body key meets a head key) —
    exactly the shortcut the unbatched path takes via
    :func:`~repro.core.indices.index_is_positive`.  Custom indices always
    go through their own ``compute`` callable.
    """
    standard = index_obj is SUPPORT or index_obj is CONFIDENCE or index_obj is COVER
    for instantiation in enumerate_instantiations(mq, db, itype):
        rule = instantiation.apply(mq)
        if not _rule_is_evaluable(rule, db):
            continue
        if batcher is not None and standard:
            group = batcher.body_group(rule.body_atoms)
            if index_obj is SUPPORT:
                hit = group.size > 0 if k == 0 else group.support > k
            elif k == 0:
                hit = batcher.head_joins(group, rule.head)
            else:
                cover, confidence = batcher.head_indices(group, rule.head)
                hit = (cover if index_obj is COVER else confidence) > k
        elif k == 0:
            hit = index_is_positive(rule, index_obj, db, ctx)
        else:
            hit = index_obj(rule, db, ctx) > k
        if hit:
            return instantiation, rule
    return None


def naive_decide(
    db: Database,
    mq: MetaQuery,
    index: str | PlausibilityIndex,
    k: Fraction | float | int,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
) -> bool:
    """Decide the metaquerying problem ``⟨DB, MQ, I, k, T⟩`` (Section 3.2).

    True iff some type-T instantiation has ``I(σ(MQ)) > k``.  For ``k = 0``
    the certifying-set shortcut of Proposition 3.20 is used, which only needs
    Boolean conjunctive-query satisfiability rather than counting.
    """
    index_obj = get_index(index)
    k = validate_threshold(k)
    ctx = _make_context(db, cache, ctx)
    batcher = _make_batcher(db, batch, batcher, ctx)
    return _first_hit(db, mq, index_obj, k, itype, ctx, batcher) is not None


def naive_witness(
    db: Database,
    mq: MetaQuery,
    index: str | PlausibilityIndex,
    k: Fraction | float | int,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
    cache: bool = True,
    ctx: EvaluationContext | None = None,
    batch: bool = True,
    batcher: BatchEvaluator | None = None,
) -> MetaqueryAnswer | None:
    """A witnessing answer for the decision problem, or None when it is a NO instance.

    Mirrors :func:`naive_decide` exactly — the same ``0 <= k < 1``
    validation, the same certifying-set shortcut of Proposition 3.20 at
    ``k = 0``, and the same per-rule ``index > k`` test (which also works
    for custom indices outside {sup, cnf, cvr}) — so the two can never
    disagree on the same instance (``naive_witness`` is not None iff
    ``naive_decide`` is True).
    """
    index_obj = get_index(index)
    k = validate_threshold(k)
    ctx = _make_context(db, cache, ctx)
    batcher = _make_batcher(db, batch, batcher, ctx)
    found = _first_hit(db, mq, index_obj, k, itype, ctx, batcher)
    if found is None:
        return None
    instantiation, rule = found
    support, confidence, cover = _rule_indices(rule, db, ctx, batcher)
    return MetaqueryAnswer(
        instantiation=instantiation,
        rule=rule,
        support=support,
        confidence=confidence,
        cover=cover,
    )
