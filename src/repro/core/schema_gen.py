"""Schema-driven generation of candidate metaqueries.

The paper's introduction notes that metaqueries "can be specified by human
experts or alternatively, they can be automatically generated from the
database schema".  This module implements that second mode: given a database
schema it emits a stream of syntactically sensible metaquery templates
(chains, stars, inclusion patterns) whose pattern arities are drawn from the
arities actually present in the schema.  The schema-driven-discovery example
and a couple of benchmarks use it to build realistic mining workloads.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.core.metaquery import LiteralScheme, MetaQuery
from repro.datalog.terms import Variable
from repro.relational.schema import DatabaseSchema

__all__ = [
    "generate_chain_metaqueries",
    "generate_star_metaqueries",
    "generate_inclusion_metaqueries",
    "generate_metaqueries",
]


def _variables(count: int) -> list[Variable]:
    """The first ``count`` template variables ``X1, X2, ...``."""
    return [Variable(f"X{i + 1}") for i in range(count)]


def generate_chain_metaqueries(length: int, arity: int = 2) -> Iterator[MetaQuery]:
    """Transitivity-style chain templates of a given body length.

    A chain of length ``m`` with binary patterns is::

        P0(X1, X2) <- P1(X1, X2), P2(X2, X3), ..., Pm(Xm, X(m+1))

    The head ranges over the first body pattern's variables, which keeps the
    metaquery hypergraph acyclic (Definition 3.31); these are the acyclic
    workhorses of the tractable-case experiments (Figure 5 row 4).  For
    ``arity > 2`` the extra positions are filled with per-literal fresh
    variables, which keeps the template acyclic.
    """
    if length < 1:
        return
    variables = _variables(length + 1)
    body: list[LiteralScheme] = []
    extra_counter = itertools.count(1)
    for i in range(length):
        terms: list[Variable] = [variables[i], variables[i + 1]]
        while len(terms) < arity:
            terms.append(Variable(f"Z{next(extra_counter)}"))
        body.append(LiteralScheme.pattern(f"P{i + 1}", terms))
    head_terms: list[Variable] = [variables[0], variables[1]]
    while len(head_terms) < arity:
        head_terms.append(Variable(f"Z{next(extra_counter)}"))
    head = LiteralScheme.pattern("P0", head_terms)
    yield MetaQuery(head, body, name=f"chain-{length}")


def generate_star_metaqueries(rays: int) -> Iterator[MetaQuery]:
    """Star templates: one hub variable shared by every body pattern.

    ``P0(H, X1) <- P1(H, X1), P2(H, X2), ..., Pk(H, Xk)`` — acyclic for any
    number of rays.
    """
    if rays < 1:
        return
    hub = Variable("H")
    body = [LiteralScheme.pattern(f"P{i + 1}", [hub, Variable(f"X{i + 1}")]) for i in range(rays)]
    head = LiteralScheme.pattern("P0", [hub, Variable("X1")])
    yield MetaQuery(head, body, name=f"star-{rays}")


def generate_inclusion_metaqueries(schema: DatabaseSchema) -> Iterator[MetaQuery]:
    """Unary inclusion templates ``I(X) <- O(X)`` lifted to the schema's arities.

    For every pair of arities ``(a, b)`` present in the schema, emits a
    template whose head pattern has arity ``a`` and whose single body pattern
    has arity ``b``, sharing their first variable — the shape used by the
    cover-driven view-reengineering example (Section 2.2's ``I(X) <- O(X)``).
    """
    arities = sorted({schema[name].arity for name in schema.relation_names})
    x = Variable("X")
    counter = itertools.count(1)
    for head_arity in arities:
        for body_arity in arities:
            head_terms = [x] + [Variable(f"H{next(counter)}") for _ in range(head_arity - 1)]
            body_terms = [x] + [Variable(f"B{next(counter)}") for _ in range(body_arity - 1)]
            yield MetaQuery(
                LiteralScheme.pattern("I", head_terms),
                [LiteralScheme.pattern("O", body_terms)],
                name=f"inclusion-{head_arity}-{body_arity}",
            )


def generate_metaqueries(
    schema: DatabaseSchema,
    max_body_length: int = 3,
    shapes: Sequence[str] = ("chain", "star", "inclusion"),
) -> list[MetaQuery]:
    """Generate a deduplicated batch of candidate metaqueries for a schema.

    ``shapes`` selects which template families to include.  Chain and star
    templates are generated for every body length from 1 to
    ``max_body_length`` and for every arity present in the schema (chains
    only); the inclusion family is schema-arity driven.
    """
    arities = sorted({schema[name].arity for name in schema.relation_names})
    result: list[MetaQuery] = []
    seen: set[tuple] = set()

    def push(mq: MetaQuery) -> None:
        key = (mq.head, mq.body)
        if key not in seen:
            seen.add(key)
            result.append(mq)

    for length in range(1, max_body_length + 1):
        if "chain" in shapes:
            for arity in arities:
                if arity >= 2:
                    for mq in generate_chain_metaqueries(length, arity=arity):
                        push(mq)
        if "star" in shapes:
            for mq in generate_star_metaqueries(length):
                push(mq)
    if "inclusion" in shapes:
        for mq in generate_inclusion_metaqueries(schema):
            push(mq)
    return result
