"""Answers to metaqueries: instantiated rules together with their indices."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.instantiation import Instantiation
from repro.datalog.rules import HornRule

__all__ = [
    "exact_fraction",
    "validate_threshold",
    "Thresholds",
    "MetaqueryAnswer",
    "AnswerSet",
]


def exact_fraction(value: float | int | str | Fraction) -> Fraction:
    """Coerce a threshold to an *exact* :class:`Fraction`.

    Floats are converted through their shortest round-trip decimal
    representation (``Fraction(str(value))``), so ``0.3`` becomes exactly
    ``3/10`` and ``1e-10`` exactly ``1/10**10``.  Never use
    ``limit_denominator``: rounding a threshold can silently flip the
    paper's strict ``I(σ(MQ)) > k`` comparisons (e.g. a denominator cap of
    ``10**9`` collapses ``1e-10`` to ``0``, turning a ``> 1e-10`` test into
    ``> 0``).  Fractions pass through unchanged; ints and numeric strings go
    straight to :class:`Fraction`.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, float):
        return Fraction(str(value))
    return Fraction(value)


def validate_threshold(
    value: float | int | str | Fraction, exc: type[Exception] = ValueError
) -> Fraction:
    """Exactly coerce a decision threshold and enforce the paper's ``0 <= k < 1``.

    ``exc`` lets callers raise their domain-specific exception type.
    """
    k = exact_fraction(value)
    if not 0 <= k < 1:
        raise exc(f"threshold must satisfy 0 <= k < 1, got {k}")
    return k


def _as_fraction(value: float | int | str | Fraction | None) -> Fraction | None:
    if value is None:
        return None
    return exact_fraction(value)


@dataclass(frozen=True)
class Thresholds:
    """User-provided admissibility thresholds for the three indices.

    Each threshold ``k`` filters answers by the *strict* comparison
    ``index > k`` (matching the decision problems of Section 3.2).  A value
    of ``None`` disables filtering on that index; note that ``None`` and
    ``0`` differ: ``0`` still excludes rules whose index is exactly zero.
    Floats are coerced to exact fractions through their shortest decimal
    representation (see :func:`exact_fraction`), so ``support=0.2`` means
    exactly ``sup > 1/5`` — never a rounded binary float.

    Thresholds also steer :meth:`MetaqueryEngine.find_rules`'s
    ``algorithm="auto"`` dispatch: with at least one threshold enabled the
    engine runs FindRules (whose pruning needs a threshold to be sound),
    with ``Thresholds.none()`` it falls back to the naive engine.

    Examples
    --------
    >>> t = Thresholds(support=0.2, confidence=0.5)
    >>> t.support
    Fraction(1, 5)
    >>> t.accepts(Fraction(1, 4), Fraction(3, 4), Fraction(0))
    True
    >>> t.accepts(Fraction(1, 5), Fraction(3, 4), Fraction(0))  # strict >
    False
    """

    support: Fraction | None = None
    confidence: Fraction | None = None
    cover: Fraction | None = None

    def __init__(
        self,
        support: float | Fraction | None = None,
        confidence: float | Fraction | None = None,
        cover: float | Fraction | None = None,
    ) -> None:
        object.__setattr__(self, "support", _as_fraction(support))
        object.__setattr__(self, "confidence", _as_fraction(confidence))
        object.__setattr__(self, "cover", _as_fraction(cover))

    @classmethod
    def none(cls) -> "Thresholds":
        """No filtering at all (every instantiation is reported)."""
        return cls(None, None, None)

    @classmethod
    def positive(cls) -> "Thresholds":
        """All three indices strictly positive (the threshold-0 problems)."""
        return cls(0, 0, 0)

    def accepts(self, support: Fraction, confidence: Fraction, cover: Fraction) -> bool:
        """True when the given index values pass every enabled threshold."""
        if self.support is not None and not support > self.support:
            return False
        if self.confidence is not None and not confidence > self.confidence:
            return False
        if self.cover is not None and not cover > self.cover:
            return False
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for label, value in (("sup", self.support), ("cnf", self.confidence), ("cvr", self.cover)):
            if value is not None:
                parts.append(f"{label}>{value}")
        return ", ".join(parts) or "no thresholds"


@dataclass(frozen=True)
class MetaqueryAnswer:
    """One answer: an instantiation, the induced Horn rule, and its indices."""

    instantiation: Instantiation
    rule: HornRule
    support: Fraction
    confidence: Fraction
    cover: Fraction

    def indices(self) -> dict[str, Fraction]:
        """The three index values as a dictionary keyed by short name."""
        return {"sup": self.support, "cnf": self.confidence, "cvr": self.cover}

    def index(self, name: str) -> Fraction:
        """Look up one index value by its short name (``sup``/``cnf``/``cvr``)."""
        return self.indices()[name]

    def __str__(self) -> str:
        return (
            f"{self.rule}   [sup={float(self.support):.3f}, "
            f"cnf={float(self.confidence):.3f}, cvr={float(self.cover):.3f}]"
        )


class AnswerSet:
    """A collection of metaquery answers with convenience filters and reports.

    ``algorithm`` records which engine actually produced the answers
    (``"naive"`` or ``"findrules"``); :meth:`MetaqueryEngine.find_rules`
    sets it so that ``algorithm="auto"`` runs cannot be mislabelled in
    benchmark ablations.  It is ``None`` for hand-built sets.

    Answers keep the engine's emission order, which is deterministic for a
    given database/metaquery/type — identical across the ``cache``,
    ``fast_path``, ``batch`` and ``workers`` ablation arms — so two answer
    sets from equivalent runs compare byte-for-byte; the ablation
    benchmarks and sharding property tests rely on exactly that.

    Examples
    --------
    >>> answers = engine.find_rules(mq, Thresholds(support=0.2))  # doctest: +SKIP
    >>> answers.sorted_by("cnf").best("cnf")                      # doctest: +SKIP
    >>> print(answers.above(Thresholds.positive()).to_table())    # doctest: +SKIP
    """

    def __init__(
        self, answers: Iterable[MetaqueryAnswer] = (), algorithm: str | None = None
    ) -> None:
        self._answers = list(answers)
        self.algorithm = algorithm

    @classmethod
    def collect(
        cls, stream: Iterable[MetaqueryAnswer], algorithm: str | None = None
    ) -> "AnswerSet":
        """Materialize a (possibly streaming) answer iterator into a set.

        The inverse of streaming: ``AnswerSet.collect(prepared.stream())``
        is byte-identical to the one-shot ``find_rules`` result, because the
        streaming paths emit in exactly the materialized order.  Spelled as
        a named constructor so call sites read as the request lifecycle's
        final step (request → prepare → stream → *collect*).
        """
        return cls(stream, algorithm=algorithm)

    def __len__(self) -> int:
        return len(self._answers)

    def __iter__(self) -> Iterator[MetaqueryAnswer]:
        return iter(self._answers)

    def __getitem__(self, index: int) -> MetaqueryAnswer:
        return self._answers[index]

    def __bool__(self) -> bool:
        return bool(self._answers)

    def append(self, answer: MetaqueryAnswer) -> None:
        """Add one answer."""
        self._answers.append(answer)

    def rules(self) -> list[HornRule]:
        """The instantiated Horn rules, in answer order."""
        return [answer.rule for answer in self._answers]

    def filter(self, predicate: Callable[[MetaqueryAnswer], bool]) -> "AnswerSet":
        """A new answer set keeping only answers satisfying the predicate."""
        return AnswerSet((a for a in self._answers if predicate(a)), algorithm=self.algorithm)

    def above(self, thresholds: Thresholds) -> "AnswerSet":
        """Answers passing the given thresholds."""
        return self.filter(lambda a: thresholds.accepts(a.support, a.confidence, a.cover))

    def sorted_by(self, index_name: str, descending: bool = True) -> "AnswerSet":
        """Answers sorted by one index (``sup``/``cnf``/``cvr``)."""
        return AnswerSet(
            sorted(self._answers, key=lambda a: a.index(index_name), reverse=descending),
            algorithm=self.algorithm,
        )

    def best(self, index_name: str) -> MetaqueryAnswer | None:
        """The single best answer for an index, or None when empty."""
        ordered = self.sorted_by(index_name)
        return ordered[0] if ordered else None

    def contains_rule(self, rule: HornRule) -> bool:
        """True when an answer's rule equals the given rule (atom-set equality)."""
        target = (rule.head, frozenset(rule.body))
        return any((a.rule.head, frozenset(a.rule.body)) == target for a in self._answers)

    def to_table(self, max_rows: int | None = None) -> str:
        """A plain-text table of the answers (used by examples and benches)."""
        lines = [f"{'rule':<60} {'sup':>7} {'cnf':>7} {'cvr':>7}"]
        rows = self._answers if max_rows is None else self._answers[:max_rows]
        for answer in rows:
            # Display-only rounding; the stored indexes stay exact Fractions.
            sup, cnf, cvr = float(answer.support), float(answer.confidence), float(answer.cover)  # repro-lint: disable=exact-arithmetic
            lines.append(
                f"{str(answer.rule):<60} {sup:>7.3f} {cnf:>7.3f} {cvr:>7.3f}"
            )
        if max_rows is not None and len(self._answers) > max_rows:
            lines.append(f"... ({len(self._answers) - max_rows} more answers)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AnswerSet({len(self._answers)} answers)"
