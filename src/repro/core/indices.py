"""Plausibility indices: support, confidence, cover (Definitions 2.5-2.7).

All indices are built on the *fraction* operator

``R ↑ S = |π_att(R)(J(R) ⋈ J(S))| / |J(R)|``

with the convention that the fraction is 0 whenever the numerator is 0
(which also covers the ``|J(R)| = 0`` corner case).  Values are exact
:class:`fractions.Fraction` objects so that threshold comparisons such as
``cnf(r) > (k'-1)/2^h`` in the NP^PP reduction are decided without rounding
error.

The module also implements *certifying sets* (Definition 3.19 and
Proposition 3.20): for each index, the subset of the rule's atoms whose
satisfiability is equivalent to the index being strictly positive.  They are
used by the threshold-0 decision procedures and by the complexity
experiments.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Sequence

from repro.datalog.atoms import Atom, variables_of
from repro.datalog.evaluation import atom_relation, is_satisfiable, join_atoms
from repro.datalog.rules import ConjunctiveQuery, HornRule
from repro.exceptions import IndexError_
from repro.relational import indexes
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "fraction",
    "confidence",
    "cover",
    "support",
    "support_from_join",
    "all_indices",
    "PlausibilityIndex",
    "get_index",
    "certifying_set",
    "index_is_positive",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.context import EvaluationContext


def fraction(
    r_atoms: Sequence[Atom],
    s_atoms: Sequence[Atom],
    db: Database,
    ctx: "EvaluationContext | None" = None,
) -> Fraction:
    """The fraction of ``R`` in ``S`` (Definition 2.6): ``R ↑ S``.

    ``r_atoms`` and ``s_atoms`` are the two atom sets; the database supplies
    their relations.  Returns an exact rational in ``[0, 1]``.  With a
    context, the value is memoized keyed by the normalized shape of the atom
    pair, and the component joins take the context's caches and acyclicity
    fast path.
    """
    if not r_atoms:
        raise IndexError_("the left-hand atom set of a fraction must be non-empty")
    if not s_atoms:
        raise IndexError_("the right-hand atom set of a fraction must be non-empty")
    if ctx is not None and ctx.applies_to(db):
        return ctx.fraction(r_atoms, s_atoms, lambda: _fraction_direct(r_atoms, s_atoms, db, ctx))
    return _fraction_direct(r_atoms, s_atoms, db, None)


def _fraction_direct(
    r_atoms: Sequence[Atom],
    s_atoms: Sequence[Atom],
    db: Database,
    ctx: "EvaluationContext | None",
) -> Fraction:
    jr = join_atoms(r_atoms, db, ctx)
    if jr.is_empty():
        return Fraction(0)
    js = join_atoms(s_atoms, db, ctx)
    joined = jr.natural_join(js)
    att_r = [v.name for v in variables_of(r_atoms)]
    numerator = len(joined.project(att_r)) if att_r else (1 if not joined.is_empty() else 0)
    if numerator == 0:
        return Fraction(0)
    return Fraction(numerator, len(jr))


def confidence(rule: HornRule, db: Database, ctx: "EvaluationContext | None" = None) -> Fraction:
    """``cnf(r) = b(r) ↑ h(r)``: how often a satisfied body implies the head."""
    return fraction(rule.body_atoms, rule.head_atoms, db, ctx)


def cover(rule: HornRule, db: Database, ctx: "EvaluationContext | None" = None) -> Fraction:
    """``cvr(r) = h(r) ↑ b(r)``: the share of head tuples the body implies."""
    return fraction(rule.head_atoms, rule.body_atoms, db, ctx)


def support(rule: HornRule, db: Database, ctx: "EvaluationContext | None" = None) -> Fraction:
    """``sup(r) = max_{a ∈ b(r)} ({a} ↑ b(r))``.

    The best fraction, over the body atoms, of an atom's tuples that take
    part in the body join.
    """
    best = Fraction(0)
    for atom in rule.body_atoms:
        value = fraction([atom], rule.body_atoms, db, ctx)
        if value > best:
            best = value
    return best


def support_from_join(
    body_atoms: Sequence[Atom],
    body_join: Relation,
    db: Database,
    ctx: "EvaluationContext | None" = None,
) -> Fraction:
    """``sup`` of an instantiated body, read off an already-materialized ``J(b)``.

    Since every body atom ``a`` satisfies ``J({a}) ⋈ J(b) = J(b)``, the
    fraction ``{a} ↑ b`` is ``|π_var(a)(J(b))| / |J({a})|`` — no further
    joins are needed once the body join is in hand.  Agrees exactly with
    :func:`support` (the projection of a non-empty relation onto zero
    columns has cardinality 1, matching the ground-atom convention of
    :func:`fraction`).  The projection cardinality is the key count of the
    join's cached hash index on the atom's variable columns, so repeated
    calls over one join (or its renamed views) share the index.
    :meth:`repro.datalog.batching.BatchEvaluator._support` is the
    canonical-column twin of this loop.
    """
    best = Fraction(0)
    for atom in body_atoms:
        base = atom_relation(atom, db, ctx)
        denominator = len(base)
        if denominator == 0:
            continue
        names = [v.name for v in atom.variables]
        numerator = len(indexes.index_for(body_join, names))
        if numerator == 0:
            continue
        value = Fraction(numerator, denominator)
        if value > best:
            best = value
    return best


def all_indices(rule: HornRule, db: Database, ctx: "EvaluationContext | None" = None) -> dict[str, Fraction]:
    """Support, confidence and cover of a rule, as a dictionary."""
    return {
        "sup": support(rule, db, ctx),
        "cnf": confidence(rule, db, ctx),
        "cvr": cover(rule, db, ctx),
    }


# ----------------------------------------------------------------------
# pluggable index objects
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlausibilityIndex:
    """A named plausibility index: ``(rule, database[, context]) -> [0, 1]``.

    The paper's Definition 2.5 only requires the value to be a rational in
    ``[0, 1]``; user-defined indices may be registered alongside the three
    standard ones.  ``compute`` may accept an optional third argument, the
    :class:`~repro.datalog.context.EvaluationContext`; plain two-argument
    ``(rule, db)`` callables are also supported (they simply cannot share
    the caches).
    """

    name: str
    compute: Callable[..., Fraction]

    def __post_init__(self) -> None:
        # How to hand the context to ``compute``: as a third positional
        # argument, as the ``ctx=`` keyword, or not at all.  Keyword-only
        # ``ctx`` parameters (common on ``functools.partial``-bound
        # callables, whose reported signature turns bound parameters
        # keyword-only) must be detected explicitly: counting positional
        # parameters alone either drops cache sharing or passes a third
        # positional argument the callable rejects with a TypeError.
        try:
            parameters = inspect.signature(self.compute).parameters.values()
        except (TypeError, ValueError):  # builtins/callables without a signature
            ctx_mode = "positional"
        else:
            positional = sum(
                p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD) for p in parameters
            )
            if positional >= 3 or any(p.kind == p.VAR_POSITIONAL for p in parameters):
                ctx_mode = "positional"
            elif any(p.name == "ctx" and p.kind == p.KEYWORD_ONLY for p in parameters):
                ctx_mode = "keyword"
            else:
                ctx_mode = "none"
        object.__setattr__(self, "_ctx_mode", ctx_mode)

    def __call__(
        self, rule: HornRule, db: Database, ctx: "EvaluationContext | None" = None
    ) -> Fraction:
        if self._ctx_mode == "positional":
            return self.compute(rule, db, ctx)
        if self._ctx_mode == "keyword":
            return self.compute(rule, db, ctx=ctx)
        return self.compute(rule, db)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


SUPPORT = PlausibilityIndex("sup", support)
CONFIDENCE = PlausibilityIndex("cnf", confidence)
COVER = PlausibilityIndex("cvr", cover)

#: The set ``I = {cnf, cvr, sup}`` of the paper, keyed by short name.
INDICES: dict[str, PlausibilityIndex] = {
    "sup": SUPPORT,
    "cnf": CONFIDENCE,
    "cvr": COVER,
}


def get_index(index: str | PlausibilityIndex) -> PlausibilityIndex:
    """Resolve an index given either its short name or the object itself."""
    if isinstance(index, PlausibilityIndex):
        return index
    try:
        return INDICES[index]
    except KeyError:
        raise IndexError_(f"unknown plausibility index {index!r}; known: {sorted(INDICES)}") from None


# ----------------------------------------------------------------------
# certifying sets (Definition 3.19 / Proposition 3.20)
# ----------------------------------------------------------------------
def certifying_set(rule: HornRule, index: str | PlausibilityIndex) -> tuple[Atom, ...]:
    """The certifying set ``S_I`` of a rule for an index.

    * cover and confidence: the whole atom set (head plus body);
    * support: the body atoms only.

    The defining property (Proposition 3.20): the certifying set has a
    satisfiable ground instance iff the index is strictly positive.
    """
    name = get_index(index).name
    if name == "sup":
        return rule.body_atoms
    if name in ("cvr", "cnf"):
        return rule.atoms
    raise IndexError_(f"no certifying set known for custom index {name!r}")


def index_is_positive(
    rule: HornRule,
    index: str | PlausibilityIndex,
    db: Database,
    ctx: "EvaluationContext | None" = None,
) -> bool:
    """Decide ``I(r) > 0`` via the certifying set, without computing the ratio.

    This is the polynomial-verifiable certificate used in the membership
    proofs of Theorem 3.21: the index is positive iff the certifying set is
    satisfiable as a Boolean conjunctive query.
    """
    atoms = certifying_set(rule, index)
    return is_satisfiable(ConjunctiveQuery(atoms), db, ctx)
