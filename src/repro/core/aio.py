"""An asyncio front-end over the engine facade.

:class:`AsyncMetaqueryEngine` wraps a (sync) :class:`MetaqueryEngine` so a
single shared context / batcher / worker pool serves many **concurrent**
metaqueries from an event loop: every blocking stage runs in a worker
thread via :func:`asyncio.to_thread`, concurrency is bounded by a
semaphore, and streamed answers cross the thread boundary through an
``asyncio.Queue`` — ``async for answer in engine.stream(...)`` delivers
each answer as the engine confirms it.

Why this is safe over one shared engine:

* the engine's caches store deterministic values: a race between two
  threads at worst computes the same entry twice and stores identical
  results, never a wrong answer (the stats counters may undercount under
  contention, which is acceptable for telemetry).  The shared
  :class:`~repro.datalog.lifecycle.LifecycleCache` additionally locks its
  state transitions, because an LRU store — unlike the pre-lifecycle
  monotone dicts — mutates recency on reads and evicts on writes; the
  request-level :class:`~repro.datalog.lifecycle.RequestCache` locks
  likewise;
* :class:`multiprocessing.pool.Pool` is thread-safe, so concurrent
  metaqueries can share the engine's persistent worker pool;
* per-call state (enumeration order, type-2 padding counters, reorder
  buffers) lives on the call stack, so concurrent streams cannot perturb
  each other's byte-identity with the serial path.

Mutating the database **between** requests is safe: the generation-counter
lifecycle (see :mod:`repro.datalog.lifecycle`) invalidates the memoization
caches relation-by-relation and the request-level answer cache by
generation vector, so the next request always evaluates against current
state.  Do **not** mutate the database while requests are *in flight* —
the same rule the sync engine has, only easier to violate from concurrent
code.  Repeated identical requests (a hot endpoint replaying one
metaquery) are served from the engine's request cache in O(1) until a
mutation bumps the generation vector.

Example
-------
::

    async with AsyncMetaqueryEngine(db, workers=4) as engine:
        # overlap three metaqueries over one engine
        a, b, c = await asyncio.gather(
            engine.find_rules(mq1, Thresholds(support=0.2)),
            engine.find_rules(mq2, Thresholds(support=0.2)),
            engine.find_rules(mq3, Thresholds(support=0.2)),
        )
        # stream with early stop
        async for answer in engine.stream(mq1, Thresholds(support=0.2)):
            print(answer)
            break
"""

from __future__ import annotations

import asyncio
import threading
from fractions import Fraction
from typing import Any, AsyncIterator, cast

from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds
from repro.core.engine import MetaqueryEngine
from repro.core.indices import PlausibilityIndex
from repro.core.instantiation import InstantiationType
from repro.core.metaquery import MetaQuery
from repro.core.requests import MetaqueryRequest, PreparedMetaquery
from repro.exceptions import EngineError
from repro.relational.database import Database
from repro.tools.sanitizer import create_lock

__all__ = ["AsyncMetaqueryEngine"]

#: Queue sentinel marking the normal end of a producer thread's stream.
_END = object()


class _ProducerFailure:
    """Carries a producer-thread exception across the queue to the consumer."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class AsyncMetaqueryEngine:
    """Answer many concurrent metaqueries over one shared sync engine.

    Parameters
    ----------
    db_or_engine:
        A :class:`~repro.relational.database.Database` (a private
        :class:`MetaqueryEngine` is built from it with ``engine_kwargs``
        and owned — closed by :meth:`close`), or an existing engine to
        wrap (borrowed — its lifecycle stays with the caller).
    max_concurrency:
        Upper bound on concurrently *executing* blocking stages (prepare /
        collect / decide / witness calls and active streams).  Excess
        requests queue on the semaphore; answers already streaming are
        never blocked by it.
    concurrency_budget:
        An externally owned :class:`asyncio.Semaphore` to bound blocking
        stages with *instead* of a private one — the multi-tenant
        :class:`~repro.server.registry.EngineRegistry` passes one shared
        semaphore to every tenant engine so the whole process observes a
        single executing-stage budget (``max_concurrency`` is then the
        budget's nominal size, kept for introspection only).
    engine_kwargs:
        Forwarded to :class:`MetaqueryEngine` when a database is given
        (``cache=`` / ``fast_path=`` / ``batch=`` / ``workers=`` ...).

    The async facade adds no mining semantics of its own: every result —
    including streamed answer order — is byte-identical to the wrapped
    sync engine's, which the differential tests assert.
    """

    def __init__(
        self,
        db_or_engine: Database | MetaqueryEngine,
        max_concurrency: int = 8,
        concurrency_budget: asyncio.Semaphore | None = None,
        **engine_kwargs: Any,
    ) -> None:
        if isinstance(max_concurrency, bool) or not isinstance(max_concurrency, int):
            raise EngineError(
                f"max_concurrency must be an int, got {type(max_concurrency).__name__}"
            )
        if max_concurrency < 1:
            raise EngineError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if concurrency_budget is not None and not isinstance(concurrency_budget, asyncio.Semaphore):
            raise EngineError(
                f"concurrency_budget must be an asyncio.Semaphore or None, "
                f"got {type(concurrency_budget).__name__}"
            )
        if isinstance(db_or_engine, MetaqueryEngine):
            if engine_kwargs:
                raise EngineError(
                    "engine_kwargs are only valid when constructing from a Database; "
                    "configure the wrapped MetaqueryEngine directly instead"
                )
            self._engine = db_or_engine
            self._owns_engine = False
        else:
            self._engine = MetaqueryEngine(db_or_engine, **engine_kwargs)
            self._owns_engine = True
        self.max_concurrency = max_concurrency
        self._semaphore = (
            concurrency_budget if concurrency_budget is not None
            else asyncio.Semaphore(max_concurrency)
        )
        # Stream telemetry crosses threads: `started` bumps on the event
        # loop, `finished` in the producer's done callback, and
        # stream_stats() may be called from anywhere — so the counters
        # take the same sanitizable state lock the other shared runtime
        # classes use (REPRO_SANITIZE=1 instruments it).
        self._lock = create_lock("repro.core.aio:AsyncMetaqueryEngine")
        self._streams_started = 0
        self._streams_finished = 0
        # Lazily created on the event loop by drain(); set by the producer
        # done-callback when the last in-flight stream retires.
        self._idle: asyncio.Event | None = None

    # ------------------------------------------------------------------
    @property
    def engine(self) -> MetaqueryEngine:
        """The wrapped synchronous engine (shared caches, pool, stats)."""
        return self._engine

    def stats(self) -> dict[str, dict[str, int]]:
        """The wrapped engine's telemetry counters (:meth:`MetaqueryEngine.stats`)."""
        return self._engine.stats()

    def stream_stats(self) -> dict[str, int]:
        """Facade-level stream telemetry (thread-safe snapshot).

        ``streams_started`` counts producer threads launched by
        :meth:`stream`; ``streams_finished`` counts producers that retired
        (normally, by early-exit signal, or by raising); the difference is
        the streams currently holding a concurrency slot — the server
        track's backpressure gauge.
        """
        with self._lock:
            started = self._streams_started
            finished = self._streams_finished
        return {
            "streams_started": started,
            "streams_finished": finished,
            "streams_active": started - finished,
        }

    def _retire_stream(self) -> None:
        """Producer done-callback: count the retirement, free the slot."""
        with self._lock:
            self._streams_finished += 1
            idle = self._idle if self._streams_finished == self._streams_started else None
        self._semaphore.release()
        if idle is not None:
            # Runs on the event loop (asyncio done-callbacks do), where
            # waking an asyncio.Event is safe; done outside the lock so
            # drain()'s waiters never contend with the counter updates.
            idle.set()

    async def drain(self) -> None:
        """Wait until every stream producer has retired — the graceful-
        shutdown hook.

        The server track calls this after it stops accepting connections:
        streams already delivering answers run to completion (or to their
        client's disconnect, whose early-exit signal retires the producer
        at its next confirmed answer), and ``drain()`` returns once no
        producer holds a concurrency slot.  Idempotent and safe to call
        with no streams in flight; one-shot calls (``find_rules`` et al.)
        are not tracked — they complete with the request handler awaiting
        them, so draining the connection handlers drains them too.
        """
        while True:
            with self._lock:
                if self._streams_started == self._streams_finished:
                    return
                if self._idle is None:
                    self._idle = asyncio.Event()
                self._idle.clear()
                event = self._idle
            await event.wait()

    async def invalidate_cache(self) -> None:
        """Async :meth:`MetaqueryEngine.invalidate_cache` — the explicit full
        reset (rarely needed now that mutations auto-invalidate; see the
        module docstring).  Only call with no requests in flight."""
        await asyncio.to_thread(self._engine.invalidate_cache)

    # ------------------------------------------------------------------
    async def prepare(
        self,
        mq: MetaqueryRequest | MetaQuery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int | None = None,
        algorithm: str = "auto",
    ) -> PreparedMetaquery:
        """Async :meth:`MetaqueryEngine.prepare` (runs in a worker thread)."""
        async with self._semaphore:
            return await asyncio.to_thread(
                self._engine.prepare, mq, thresholds, itype, algorithm
            )

    async def find_rules(
        self,
        mq: MetaqueryRequest | MetaQuery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int | None = None,
        algorithm: str = "auto",
    ) -> AnswerSet:
        """Async :meth:`MetaqueryEngine.find_rules`: prepare + collect off-loop.

        ``await``-ing several of these concurrently overlaps their
        evaluation over the shared caches (bounded by ``max_concurrency``),
        which is the facade's raison d'être.
        """
        async with self._semaphore:
            return await asyncio.to_thread(
                self._engine.find_rules, mq, thresholds, itype, algorithm
            )

    async def decide(
        self,
        mq: MetaQuery | str,
        index: str | PlausibilityIndex,
        k: Fraction | float | int = 0,
        itype: InstantiationType | int | None = None,
    ) -> bool:
        """Async :meth:`MetaqueryEngine.decide`."""
        async with self._semaphore:
            return await asyncio.to_thread(self._engine.decide, mq, index, k, itype)

    async def witness(
        self,
        mq: MetaQuery | str,
        index: str | PlausibilityIndex,
        k: Fraction | float | int = 0,
        itype: InstantiationType | int | None = None,
    ) -> MetaqueryAnswer | None:
        """Async :meth:`MetaqueryEngine.witness`."""
        async with self._semaphore:
            return await asyncio.to_thread(self._engine.witness, mq, index, k, itype)

    # ------------------------------------------------------------------
    async def stream(
        self,
        mq: MetaqueryRequest | MetaQuery | PreparedMetaquery | str,
        thresholds: Thresholds | None = None,
        itype: InstantiationType | int | None = None,
        algorithm: str = "auto",
    ) -> AsyncIterator[MetaqueryAnswer]:
        """Stream answers asynchronously, byte-identical to the sync stream.

        A producer thread drives ``PreparedMetaquery.stream()`` and hands
        each answer to the event loop through a queue, so the loop stays
        responsive while shape groups evaluate.  An already-prepared
        metaquery may be passed to skip re-planning.

        Early exit (``break`` / generator close) returns to the caller
        immediately: it signals the producer, which retires in the
        background at its next confirmed answer (a blocked Python compute
        cannot be interrupted mid-answer).  The concurrency semaphore is
        released only when the producer actually finishes — a straggler
        still burning CPU keeps counting against ``max_concurrency``, so
        abandoned streams cannot pile up unbounded worker threads.
        """
        await self._semaphore.acquire()
        producer: asyncio.Future[None] | None = None
        try:
            if isinstance(mq, PreparedMetaquery):
                prepared = mq
            else:
                prepared = await asyncio.to_thread(
                    self._engine.prepare, mq, thresholds, itype, algorithm
                )
            loop = asyncio.get_running_loop()
            queue: asyncio.Queue[object] = asyncio.Queue()
            stop = threading.Event()

            def post(item: object) -> None:
                # Hand one item to the event loop; tolerate a loop that
                # closed while a straggler producer was still finishing.
                try:
                    loop.call_soon_threadsafe(queue.put_nowait, item)
                except RuntimeError:  # pragma: no cover - loop shut down
                    pass

            def produce() -> None:
                # Runs in a worker thread.  put_nowait on an unbounded queue
                # never blocks, so the producer can always make progress and
                # always terminates once `stop` is set (at the next answer).
                try:
                    for answer in prepared.stream():
                        if stop.is_set():
                            break
                        post(answer)
                    post(_END)
                except BaseException as exc:  # pragma: no cover - worker errors
                    post(_ProducerFailure(exc))

            with self._lock:
                self._streams_started += 1
            producer = asyncio.ensure_future(asyncio.to_thread(produce))
            producer.add_done_callback(lambda _: self._retire_stream())
            while True:
                item = await queue.get()
                if item is _END:
                    break
                if isinstance(item, _ProducerFailure):
                    raise item.exc
                yield cast(MetaqueryAnswer, item)
        finally:
            if producer is None:
                # prepare failed (or was cancelled) before the producer
                # started; nothing else will release the slot.
                self._semaphore.release()
            else:
                stop.set()

    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Release an *owned* engine's worker pool (no-op for a borrowed
        engine, whose lifecycle belongs to whoever constructed it)."""
        if self._owns_engine:
            await asyncio.to_thread(self._engine.close)

    async def __aenter__(self) -> "AsyncMetaqueryEngine":
        return self

    async def __aexit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: object,
    ) -> None:
        await self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ownership = "owned" if self._owns_engine else "borrowed"
        return (
            f"AsyncMetaqueryEngine({ownership} {self._engine!r}, "
            f"max_concurrency={self.max_concurrency})"
        )
