"""Core metaquery library: syntax, semantics, indices, engines.

This package implements the paper's primary contribution:

* :mod:`~repro.core.metaquery` — second-order metaquery templates
  (Section 2.1): literal schemes, relation patterns, predicate variables,
  purity, parsing;
* :mod:`~repro.core.acyclicity` — the hypergraph ``H(MQ)`` and
  semi-hypergraph ``SH(MQ)`` of Definition 3.31 and the induced
  acyclic / semi-acyclic classification;
* :mod:`~repro.core.instantiation` — type-0/1/2 instantiations
  (Definitions 2.2-2.4), their enumeration, agreement and composition;
* :mod:`~repro.core.indices` — the plausibility indices support, confidence
  and cover (Definitions 2.5-2.7) and certifying sets (Definition 3.19);
* :mod:`~repro.core.naive` — the baseline enumerate-and-test engine;
* :mod:`~repro.core.findrules` — the FindRules algorithm of Figure 4;
* :mod:`~repro.core.engine` — a small facade choosing between the two;
* :mod:`~repro.core.requests` — the request pipeline: validated
  :class:`MetaqueryRequest` objects, ``engine.prepare`` planning and
  incremental :meth:`PreparedMetaquery.stream` answer delivery;
* :mod:`~repro.core.aio` — :class:`AsyncMetaqueryEngine`, the asyncio
  front-end overlapping many concurrent metaqueries over one engine;
* :mod:`~repro.core.problems` — the decision problems ``⟨DB, MQ, I, k, T⟩``
  whose complexity the paper charts (Figure 5);
* :mod:`~repro.core.schema_gen` — schema-driven automatic generation of
  candidate metaqueries (as motivated in the paper's introduction).
"""

from repro.core.metaquery import LiteralScheme, MetaQuery, parse_metaquery
from repro.core.acyclicity import (
    is_acyclic_metaquery,
    is_semi_acyclic_metaquery,
    metaquery_hypergraph,
    metaquery_semi_hypergraph,
)
from repro.core.instantiation import (
    Instantiation,
    InstantiationType,
    enumerate_instantiations,
)
from repro.core.indices import (
    INDICES,
    PlausibilityIndex,
    confidence,
    cover,
    fraction,
    support,
)
from repro.core.answers import AnswerSet, MetaqueryAnswer, Thresholds
from repro.core.naive import iter_answers, naive_decide, naive_find_rules
from repro.core.findrules import find_rules, iter_find_rules
from repro.core.requests import MetaqueryRequest, PreparedMetaquery
from repro.core.engine import MetaqueryEngine
from repro.core.aio import AsyncMetaqueryEngine
from repro.core.problems import MetaqueryDecisionProblem
from repro.core.schema_gen import generate_chain_metaqueries, generate_metaqueries

__all__ = [
    "LiteralScheme",
    "MetaQuery",
    "parse_metaquery",
    "metaquery_hypergraph",
    "metaquery_semi_hypergraph",
    "is_acyclic_metaquery",
    "is_semi_acyclic_metaquery",
    "Instantiation",
    "InstantiationType",
    "enumerate_instantiations",
    "PlausibilityIndex",
    "fraction",
    "support",
    "confidence",
    "cover",
    "INDICES",
    "Thresholds",
    "MetaqueryAnswer",
    "AnswerSet",
    "naive_find_rules",
    "naive_decide",
    "iter_answers",
    "find_rules",
    "iter_find_rules",
    "MetaqueryRequest",
    "PreparedMetaquery",
    "MetaqueryEngine",
    "AsyncMetaqueryEngine",
    "MetaqueryDecisionProblem",
    "generate_metaqueries",
    "generate_chain_metaqueries",
]
