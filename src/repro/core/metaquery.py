"""Metaquery syntax: literal schemes, relation patterns and metaqueries.

Section 2.1 of the paper.  A metaquery has the form ``T <- L1, ..., Lm``
where ``T`` and the ``Li`` are *literal schemes* ``Q(Y1, ..., Yn)``: ``Q`` is
either an ordinary relation name or a *predicate (second-order) variable*
and the ``Yj`` are ordinary (first-order) variables.  A literal scheme whose
predicate symbol is a predicate variable is a *relation pattern*; otherwise
it is an ordinary atom.  A metaquery is *pure* if any two relation patterns
sharing a predicate variable have the same arity.

Textual convention (mirroring the paper's examples): identifiers starting
with an upper-case letter denote predicate variables in predicate position
and ordinary variables in argument position; lower-case identifiers denote
relation names and constants respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.datalog.atoms import Atom
from repro.datalog.parser import _Parser  # shared tokenizer / term parsing
from repro.datalog.terms import Term, Variable, term
from repro.exceptions import MetaqueryError, ParseError

__all__ = ["LiteralScheme", "MetaQuery", "parse_metaquery"]


@dataclass(frozen=True)
class LiteralScheme:
    """A literal scheme ``Q(Y1, ..., Yn)``.

    Attributes
    ----------
    predicate:
        The predicate symbol: either a relation name or a predicate-variable
        name, depending on ``is_pattern``.
    terms:
        The argument terms (ordinary variables, possibly constants).
    is_pattern:
        True when the predicate symbol is a predicate (second-order)
        variable, i.e. when this scheme is a *relation pattern*.
    """

    predicate: str
    terms: tuple[Term, ...]
    is_pattern: bool

    def __init__(self, predicate: str, terms: Sequence[object], is_pattern: bool) -> None:
        if not predicate:
            raise MetaqueryError("literal scheme predicate must be non-empty")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(term(t) for t in terms))
        object.__setattr__(self, "is_pattern", bool(is_pattern))

    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.terms)

    @property
    def ordinary_variables(self) -> tuple[Variable, ...]:
        """``varo``: the distinct ordinary variables, in first-occurrence order."""
        seen: list[Variable] = []
        for t in self.terms:
            if isinstance(t, Variable) and t not in seen:
                seen.append(t)
        return tuple(seen)

    @property
    def all_variables(self) -> tuple[str, ...]:
        """``var``: predicate variable (if a pattern) plus ordinary variable names."""
        names = [v.name for v in self.ordinary_variables]
        if self.is_pattern:
            return (self.predicate,) + tuple(names)
        return tuple(names)

    def as_atom(self) -> Atom:
        """Convert a non-pattern literal scheme into an ordinary atom."""
        if self.is_pattern:
            raise MetaqueryError(f"relation pattern {self} cannot be converted to an atom")
        return Atom(self.predicate, self.terms)

    @classmethod
    def from_atom(cls, atom: Atom) -> "LiteralScheme":
        """Wrap an ordinary atom as a (non-pattern) literal scheme."""
        return cls(atom.predicate, atom.terms, is_pattern=False)

    @classmethod
    def pattern(cls, predicate_variable: str, terms: Sequence[object]) -> "LiteralScheme":
        """Construct a relation pattern."""
        return cls(predicate_variable, terms, is_pattern=True)

    @classmethod
    def atom(cls, relation_name: str, terms: Sequence[object]) -> "LiteralScheme":
        """Construct an ordinary-atom literal scheme."""
        return cls(relation_name, terms, is_pattern=False)

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "pattern" if self.is_pattern else "atom"
        return f"LiteralScheme[{kind}]({self!s})"


class MetaQuery:
    """A metaquery ``head <- body`` over literal schemes.

    Parameters
    ----------
    head:
        The head literal scheme ``T``.
    body:
        The non-empty body ``L1, ..., Lm``.
    name:
        Optional label used in reports.
    """

    def __init__(self, head: LiteralScheme, body: Iterable[LiteralScheme], name: str | None = None) -> None:
        self.head = head
        self.body = tuple(body)
        self.name = name or "MQ"
        if not self.body:
            raise MetaqueryError("a metaquery must have a non-empty body")

    # ------------------------------------------------------------------
    @property
    def literal_schemes(self) -> tuple[LiteralScheme, ...]:
        """``ls(MQ)``: head followed by body literal schemes."""
        return (self.head,) + self.body

    @property
    def relation_patterns(self) -> tuple[LiteralScheme, ...]:
        """``rep(MQ)``: the distinct relation patterns, in occurrence order."""
        seen: list[LiteralScheme] = []
        for scheme in self.literal_schemes:
            if scheme.is_pattern and scheme not in seen:
                seen.append(scheme)
        return tuple(seen)

    @property
    def predicate_variables(self) -> tuple[str, ...]:
        """``pv(MQ)``: the distinct predicate-variable names."""
        seen: list[str] = []
        for scheme in self.literal_schemes:
            if scheme.is_pattern and scheme.predicate not in seen:
                seen.append(scheme.predicate)
        return tuple(seen)

    @property
    def ordinary_variables(self) -> tuple[Variable, ...]:
        """``varo(MQ)``: the distinct ordinary variables of the whole metaquery."""
        seen: list[Variable] = []
        for scheme in self.literal_schemes:
            for variable in scheme.ordinary_variables:
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    @property
    def body_ordinary_variables(self) -> tuple[Variable, ...]:
        """Distinct ordinary variables of the body only."""
        seen: list[Variable] = []
        for scheme in self.body:
            for variable in scheme.ordinary_variables:
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    def is_pure(self) -> bool:
        """True when patterns sharing a predicate variable share an arity."""
        arities: dict[str, int] = {}
        for scheme in self.literal_schemes:
            if not scheme.is_pattern:
                continue
            known = arities.get(scheme.predicate)
            if known is None:
                arities[scheme.predicate] = scheme.arity
            elif known != scheme.arity:
                return False
        return True

    def pattern_arities(self) -> Mapping[str, int]:
        """For a pure metaquery, the arity of each predicate variable."""
        if not self.is_pure():
            raise MetaqueryError("pattern_arities is only defined for pure metaqueries")
        arities: dict[str, int] = {}
        for scheme in self.literal_schemes:
            if scheme.is_pattern:
                arities.setdefault(scheme.predicate, scheme.arity)
        return arities

    def is_second_order(self) -> bool:
        """True when the metaquery contains at least one relation pattern."""
        return bool(self.relation_patterns)

    def __str__(self) -> str:
        body = ", ".join(str(s) for s in self.body)
        return f"{self.head} <- {body}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetaQuery({self!s})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetaQuery):
            return NotImplemented
        return self.head == other.head and self.body == other.body

    def __hash__(self) -> int:
        return hash((self.head, self.body))


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def _scheme_from_parsed(predicate: str, terms: Sequence[Term], relation_names: frozenset[str]) -> LiteralScheme:
    """Decide whether a parsed literal is a pattern or an atom.

    A predicate symbol is a predicate variable when it starts with an
    upper-case letter or an underscore *and* is not a declared relation
    name; otherwise it is a relation name.
    """
    looks_second_order = predicate[0].isupper() or predicate[0] == "_"
    is_pattern = looks_second_order and predicate not in relation_names
    return LiteralScheme(predicate, terms, is_pattern=is_pattern)


def parse_metaquery(text: str, relation_names: Iterable[str] = (), name: str | None = None) -> MetaQuery:
    """Parse a metaquery such as ``"R(X,Z) <- P(X,Y), Q(Y,Z)"``.

    ``relation_names`` lists identifiers that must be treated as relation
    names even if they start with an upper-case letter (useful when a schema
    uses capitalised relation names).
    """
    known = frozenset(relation_names)
    parser = _Parser(text)

    def parse_scheme() -> LiteralScheme:
        predicate = parser.expect("ident").value
        parser.expect("lparen")
        terms: list[Term] = []
        if not parser.accept("rparen"):
            terms.append(parser.parse_term())
            while parser.accept("comma"):
                terms.append(parser.parse_term())
            parser.expect("rparen")
        return _scheme_from_parsed(predicate, terms, known)

    head = parse_scheme()
    parser.expect("arrow")
    body = [parse_scheme()]
    while parser.accept("comma"):
        body.append(parse_scheme())
    parser.accept("dot")
    if not parser.at_end():
        raise ParseError("trailing input after metaquery", text)
    return MetaQuery(head, body, name=name)
