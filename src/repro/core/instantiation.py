"""Metaquery instantiations of type 0, 1 and 2 (Definitions 2.1-2.4).

An *instantiation* maps every relation pattern of a metaquery to an atom
over a database relation such that the induced mapping from predicate
variables to relation names is functional (two patterns sharing a predicate
variable go to the same relation).  The three types constrain how a
pattern's argument list relates to the atom's:

* **type-0** — the atom has exactly the pattern's argument list (identity);
  requires a pure metaquery and a relation of the same arity;
* **type-1** — the atom's arguments are a permutation of the pattern's;
* **type-2** — the atom may have larger arity; the pattern's arguments are
  placed injectively into some of the atom's positions and the remaining
  positions receive fresh variables not occurring anywhere else in the
  instantiated rule.

The module also implements *agreement* and composition of partial
instantiations (Definition 4.13), which the FindRules algorithm relies on.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.metaquery import LiteralScheme, MetaQuery
from repro.datalog.atoms import Atom
from repro.datalog.rules import HornRule
from repro.datalog.terms import Term, Variable
from repro.exceptions import InstantiationError, MetaqueryError
from repro.relational.database import Database

__all__ = [
    "InstantiationType",
    "Instantiation",
    "is_valid_image",
    "enumerate_pattern_images",
    "enumerate_scheme_instantiations",
    "enumerate_instantiations",
    "count_instantiations",
]


class InstantiationType(IntEnum):
    """The three instantiation types of the paper."""

    TYPE_0 = 0
    TYPE_1 = 1
    TYPE_2 = 2

    @classmethod
    def coerce(cls, value: "InstantiationType | int") -> "InstantiationType":
        """Accept either an enum member or a plain 0/1/2 integer."""
        if isinstance(value, InstantiationType):
            return value
        return cls(int(value))


@dataclass(frozen=True)
class Instantiation:
    """A (possibly partial) instantiation: relation patterns -> atoms.

    ``mapping`` covers the relation patterns this instantiation is defined
    on; non-pattern literal schemes are untouched by instantiations.  The
    induced predicate-variable assignment must be functional, which the
    constructor verifies.
    """

    mapping: tuple[tuple[LiteralScheme, Atom], ...]

    def __init__(self, mapping: Mapping[LiteralScheme, Atom] | Iterable[tuple[LiteralScheme, Atom]]) -> None:
        if isinstance(mapping, Mapping):
            items = tuple(mapping.items())
        else:
            items = tuple(mapping)
        seen: dict[LiteralScheme, Atom] = {}
        for scheme, atom in items:
            if not scheme.is_pattern:
                raise InstantiationError(f"{scheme} is not a relation pattern")
            if scheme in seen and seen[scheme] != atom:
                raise InstantiationError(f"pattern {scheme} mapped to two different atoms")
            seen[scheme] = atom
        # functional restriction on predicate variables
        assignment: dict[str, str] = {}
        for scheme, atom in seen.items():
            existing = assignment.get(scheme.predicate)
            if existing is not None and existing != atom.predicate:
                raise InstantiationError(
                    f"predicate variable {scheme.predicate} mapped to both "
                    f"{existing!r} and {atom.predicate!r}"
                )
            assignment[scheme.predicate] = atom.predicate
        object.__setattr__(self, "mapping", tuple(sorted(seen.items(), key=lambda kv: str(kv[0]))))

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[LiteralScheme, Atom]:
        """The mapping as a plain dictionary."""
        return dict(self.mapping)

    @property
    def patterns(self) -> tuple[LiteralScheme, ...]:
        """The relation patterns this instantiation is defined on."""
        return tuple(scheme for scheme, _ in self.mapping)

    def predicate_assignment(self) -> dict[str, str]:
        """The induced (functional) map from predicate variables to relation names."""
        return {scheme.predicate: atom.predicate for scheme, atom in self.mapping}

    def image(self, scheme: LiteralScheme) -> Atom:
        """The atom a literal scheme is mapped to.

        Non-pattern schemes are returned as their own atom; unmapped
        patterns raise :class:`InstantiationError`.
        """
        if not scheme.is_pattern:
            return scheme.as_atom()
        for candidate, atom in self.mapping:
            if candidate == scheme:
                return atom
        raise InstantiationError(f"instantiation is not defined on pattern {scheme}")

    def covers(self, scheme: LiteralScheme) -> bool:
        """True when the instantiation is defined on the scheme (or it is an atom)."""
        if not scheme.is_pattern:
            return True
        return any(candidate == scheme for candidate, _ in self.mapping)

    # ------------------------------------------------------------------
    def apply(self, mq: MetaQuery) -> HornRule:
        """Apply the instantiation to a metaquery, producing a Horn rule."""
        head = self.image(mq.head)
        body = [self.image(scheme) for scheme in mq.body]
        return HornRule(head, body)

    def apply_to_schemes(self, schemes: Sequence[LiteralScheme]) -> list[Atom]:
        """Apply to an arbitrary sequence of literal schemes."""
        return [self.image(scheme) for scheme in schemes]

    # ------------------------------------------------------------------
    def agrees_with(self, other: "Instantiation") -> bool:
        """Definition 4.13: shared patterns and shared predicate variables coincide."""
        mine = self.as_dict()
        theirs = other.as_dict()
        for scheme in set(mine) & set(theirs):
            if mine[scheme] != theirs[scheme]:
                return False
        my_assignment = self.predicate_assignment()
        their_assignment = other.predicate_assignment()
        for pv in set(my_assignment) & set(their_assignment):
            if my_assignment[pv] != their_assignment[pv]:
                return False
        return True

    def compose(self, other: "Instantiation") -> "Instantiation":
        """Union of two agreeing instantiations (``σ ∘ μ`` in the paper).

        Type-2 padding variables must stay fresh across the union
        (Definition 2.4): a ``_T2_*`` name introduced by this instantiation
        must not reappear in an atom ``other`` contributes for a *different*
        pattern — the "fresh" variable would silently become a join
        variable.  Colliding padding variables on ``other``'s side are
        renamed to names unused by either operand; shared patterns (whose
        atoms agree, padding included) are left untouched.
        """
        if not self.agrees_with(other):
            raise InstantiationError("cannot compose instantiations that do not agree")
        merged = dict(self.mapping)
        other_dict = other.as_dict()

        mine = self.fresh_variables()
        clashes: set[Variable] = set()
        for scheme, atom in other_dict.items():
            if scheme in merged:
                continue  # shared pattern: atoms agree, same padding is legal
            for t in atom.terms:
                if isinstance(t, Variable) and t in mine and t.name.startswith("_T2_"):
                    clashes.add(t)
        if clashes:
            counter = max(
                (_padding_index(v.name) for v in mine | other.fresh_variables()),
                default=0,
            )
            renaming: dict[Variable, Variable] = {}
            for v in sorted(clashes, key=lambda v: (_padding_index(v.name), v.name)):
                counter += 1
                renaming[v] = Variable(f"_T2_{counter}")
            other_dict = {
                scheme: (atom if scheme in merged else atom.substitute(renaming))
                for scheme, atom in other_dict.items()
            }

        merged.update(other_dict)
        return Instantiation(merged)

    def fresh_variables(self) -> frozenset[Variable]:
        """All padding variables introduced by type-2 images (named ``_T2_*``)."""
        result: set[Variable] = set()
        for _, atom in self.mapping:
            for t in atom.terms:
                if isinstance(t, Variable) and t.name.startswith("_T2_"):
                    result.add(t)
        return frozenset(result)

    def __len__(self) -> int:
        return len(self.mapping)

    def __str__(self) -> str:
        parts = ", ".join(f"{scheme} -> {atom}" for scheme, atom in self.mapping)
        return "{" + parts + "}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Instantiation({self!s})"


# ----------------------------------------------------------------------
# type validation
# ----------------------------------------------------------------------
def _argument_positions(pattern: LiteralScheme, atom: Atom) -> list[int] | None:
    """Try to find an injective placement of the pattern's argument list in the atom.

    Returns, for each pattern position, the atom position carrying that
    argument occurrence, or None when no injective placement exists.
    """
    used: set[int] = set()
    placement: list[int] = []
    for t in pattern.terms:
        found = None
        for pos, atom_term in enumerate(atom.terms):
            if pos in used:
                continue
            if atom_term == t:
                found = pos
                break
        if found is None:
            return None
        used.add(found)
        placement.append(found)
    return placement


def _padding_terms(atom: Atom, placement: Sequence[int]) -> list[Term]:
    return [t for pos, t in enumerate(atom.terms) if pos not in set(placement)]


def is_valid_image(
    pattern: LiteralScheme,
    atom: Atom,
    itype: InstantiationType,
    rule_variables: frozenset[str] = frozenset(),
) -> bool:
    """Check whether ``atom`` is a legal type-T image of ``pattern``.

    ``rule_variables`` holds the names of the ordinary variables occurring
    elsewhere in the instantiated rule; type-2 padding variables must avoid
    them (Definition 2.4, third bullet).
    """
    itype = InstantiationType.coerce(itype)
    if itype is InstantiationType.TYPE_0:
        return atom.arity == pattern.arity and tuple(atom.terms) == tuple(pattern.terms)
    if itype is InstantiationType.TYPE_1:
        if atom.arity != pattern.arity:
            return False
        return sorted(map(str, atom.terms)) == sorted(map(str, pattern.terms)) and (
            _argument_positions(pattern, atom) is not None
        )
    # type-2
    if atom.arity < pattern.arity:
        return False
    placement = _argument_positions(pattern, atom)
    if placement is None:
        return False
    padding = _padding_terms(atom, placement)
    pattern_term_strings = {str(t) for t in pattern.terms}
    for t in padding:
        if not isinstance(t, Variable):
            return False
        if t.name in rule_variables or t.name in pattern_term_strings:
            return False
    return True


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
_PADDING_NAME = re.compile(r"_T2_(\d+)\Z")


def _padding_index(name: str) -> int:
    """The numeric suffix of a ``_T2_*`` padding variable name, or 0."""
    match = _PADDING_NAME.match(name)
    return int(match.group(1)) if match else 0


class _FreshPadding:
    """Produces rule-wide unique padding variables for type-2 images."""

    def __init__(self, start: int = 0) -> None:
        self._counter = start

    @classmethod
    def avoiding(cls, variables: Iterable[Variable]) -> "_FreshPadding":
        """A source whose names come strictly after every given ``_T2_*`` name.

        Used when extending a partial instantiation (Definition 2.4 requires
        the padding variables of the *whole* instantiated rule to be
        distinct, so the extension must not restart at ``_T2_1``).
        """
        start = max((_padding_index(v.name) for v in variables), default=0)
        return cls(start)

    def next(self) -> Variable:
        self._counter += 1
        return Variable(f"_T2_{self._counter}")


def _candidate_atoms_for_pattern(
    pattern: LiteralScheme,
    relation_name: str,
    relation_arity: int,
    itype: InstantiationType,
    padding: _FreshPadding,
) -> Iterator[Atom]:
    """All atoms over ``relation_name`` that are valid images of ``pattern``."""
    k = pattern.arity
    if itype is InstantiationType.TYPE_0:
        if relation_arity == k:
            yield Atom(relation_name, pattern.terms)
        return
    if itype is InstantiationType.TYPE_1:
        if relation_arity != k:
            return
        seen: set[tuple[str, ...]] = set()
        for permuted in itertools.permutations(pattern.terms):
            key = tuple(map(str, permuted))
            if key in seen:
                continue
            seen.add(key)
            yield Atom(relation_name, permuted)
        return
    # type-2: choose an injective placement of the k pattern arguments into
    # the relation's positions; remaining positions get fresh variables.
    if relation_arity < k:
        return
    positions = range(relation_arity)
    seen_signatures: set[tuple[tuple[int, str], ...]] = set()
    for placement in itertools.permutations(positions, k):
        signature = tuple(sorted(zip(placement, map(str, pattern.terms))))
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        terms: list[Term | None] = [None] * relation_arity
        for pattern_pos, atom_pos in enumerate(placement):
            terms[atom_pos] = pattern.terms[pattern_pos]
        filled = [t if t is not None else padding.next() for t in terms]
        yield Atom(relation_name, filled)


def enumerate_pattern_images(
    pattern: LiteralScheme,
    db: Database,
    itype: InstantiationType | int,
    relation_name: str | None = None,
    padding: _FreshPadding | None = None,
) -> Iterator[Atom]:
    """All valid images of one relation pattern over the database's relations.

    When ``relation_name`` is given, only that relation is considered
    (used when a predicate variable's relation is already fixed).
    """
    itype = InstantiationType.coerce(itype)
    padding = padding or _FreshPadding()
    if relation_name is not None:
        names: Sequence[str] = (relation_name,)
    else:
        names = db.relation_names
    for name in names:
        if name not in db:
            continue
        arity = db[name].arity
        yield from _candidate_atoms_for_pattern(pattern, name, arity, itype, padding)


def enumerate_scheme_instantiations(
    schemes: Sequence[LiteralScheme],
    db: Database,
    itype: InstantiationType | int,
    base: Instantiation | None = None,
    padding: _FreshPadding | None = None,
) -> Iterator[Instantiation]:
    """All instantiations of the patterns occurring in ``schemes``.

    The result instantiations are defined exactly on the distinct patterns
    of ``schemes`` and agree with ``base`` (patterns already covered by
    ``base`` keep their image; predicate variables fixed by ``base`` keep
    their relation).  Type-2 padding variables are drawn from ``padding``;
    by default the source starts strictly after every ``_T2_*`` name already
    used by ``base``, so composing a result with ``base`` can never turn a
    padding variable into an accidental join variable (Definition 2.4).
    """
    itype = InstantiationType.coerce(itype)
    base_dict = base.as_dict() if base is not None else {}
    base_assignment = base.predicate_assignment() if base is not None else {}

    patterns: list[LiteralScheme] = []
    for scheme in schemes:
        if scheme.is_pattern and scheme not in patterns:
            patterns.append(scheme)

    if padding is None:
        padding = (
            _FreshPadding.avoiding(base.fresh_variables())
            if base is not None
            else _FreshPadding()
        )

    def backtrack(index: int, current: dict[LiteralScheme, Atom], assignment: dict[str, str]) -> Iterator[Instantiation]:
        if index == len(patterns):
            yield Instantiation(dict(current))
            return
        pattern = patterns[index]
        if pattern in base_dict:
            atom = base_dict[pattern]
            current[pattern] = atom
            yield from backtrack(index + 1, current, assignment)
            del current[pattern]
            return
        fixed_relation = assignment.get(pattern.predicate)
        for atom in enumerate_pattern_images(pattern, db, itype, relation_name=fixed_relation, padding=padding):
            current[pattern] = atom
            previous = assignment.get(pattern.predicate)
            assignment[pattern.predicate] = atom.predicate
            yield from backtrack(index + 1, current, assignment)
            if previous is None:
                del assignment[pattern.predicate]
            else:
                assignment[pattern.predicate] = previous
            del current[pattern]

    yield from backtrack(0, {}, dict(base_assignment))


def enumerate_instantiations(
    mq: MetaQuery,
    db: Database,
    itype: InstantiationType | int = InstantiationType.TYPE_0,
) -> Iterator[Instantiation]:
    """All type-T instantiations of a metaquery over a database.

    Type-0 and type-1 instantiations require the metaquery to be pure
    (Definitions 2.2 and 2.3); a :class:`MetaqueryError` is raised otherwise.
    Ordinary (non-pattern) literal schemes do not constrain the enumeration,
    but their relations must exist in the database for the resulting rule to
    be evaluable; this is checked lazily by the engines, not here.
    """
    itype = InstantiationType.coerce(itype)
    if itype in (InstantiationType.TYPE_0, InstantiationType.TYPE_1) and not mq.is_pure():
        raise MetaqueryError(f"type-{int(itype)} instantiations require a pure metaquery")
    yield from enumerate_scheme_instantiations(mq.literal_schemes, db, itype)


def count_instantiations(mq: MetaQuery, db: Database, itype: InstantiationType | int) -> int:
    """Number of type-T instantiations (used by the scaling benchmarks)."""
    return sum(1 for _ in enumerate_instantiations(mq, db, itype))
