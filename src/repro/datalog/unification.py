"""Syntactic unification and matching of atoms.

Used by the instantiation machinery to check whether a relation pattern can
be matched against an atom (types 0/1/2 impose progressively looser
argument correspondences) and by the parser round-trip tests.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Optional

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Term, Variable

__all__ = ["unify_terms", "unify_atoms", "match_atom"]


def unify_terms(
    left: Term, right: Term, binding: MutableMapping[Variable, Term]
) -> Optional[MutableMapping[Variable, Term]]:
    """Unify two terms under an existing binding; return the extended binding or None."""
    left = _resolve(left, binding)
    right = _resolve(right, binding)
    if left == right:
        return binding
    if isinstance(left, Variable):
        binding[left] = right
        return binding
    if isinstance(right, Variable):
        binding[right] = left
        return binding
    return None


def _resolve(t: Term, binding: Mapping[Variable, Term]) -> Term:
    while isinstance(t, Variable) and t in binding:
        t = binding[t]
    return t


def unify_atoms(left: Atom, right: Atom) -> Optional[dict[Variable, Term]]:
    """Most general unifier of two atoms, or None when they do not unify."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    binding: dict[Variable, Term] = {}
    for lt, rt in zip(left.terms, right.terms):
        if unify_terms(lt, rt, binding) is None:
            return None
    return {var: _resolve(value, binding) for var, value in binding.items()}


def match_atom(pattern: Atom, ground: Atom) -> Optional[dict[Variable, Constant]]:
    """One-way matching: bind the pattern's variables so it equals ``ground``.

    Unlike unification, variables of ``ground`` are treated as constants-to-
    match and may not be rebound.  Returns the substitution or None.
    """
    if pattern.predicate != ground.predicate or pattern.arity != ground.arity:
        return None
    binding: dict[Variable, Term] = {}
    for pt, gt in zip(pattern.terms, ground.terms):
        if isinstance(pt, Variable):
            bound = binding.get(pt)
            if bound is None:
                binding[pt] = gt
            elif bound != gt:
                return None
        else:
            if pt != gt:
                return None
    return {k: v for k, v in binding.items()}  # type: ignore[return-value]
