"""First-order terms: variables and constants.

The paper's metaqueries use *ordinary* (first-order) variables inside literal
schemes; when a metaquery is instantiated it becomes an ordinary Horn rule
whose atoms contain these terms.  Constants wrap arbitrary hashable Python
values so that databases over strings, integers, or tuples all work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["Term", "Variable", "Constant", "term", "FreshVariableFactory"]


class Term:
    """Abstract base class for variables and constants."""

    __slots__ = ()

    @property
    def is_variable(self) -> bool:
        """True for variables, False for constants."""
        raise NotImplementedError

    @property
    def is_constant(self) -> bool:
        """True for constants, False for variables."""
        return not self.is_variable


@dataclass(frozen=True, order=True)
class Variable(Term):
    """An ordinary (first-order) variable, identified by its name."""

    name: str

    @property
    def is_variable(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Variable({self.name!r})"


@dataclass(frozen=True)
class Constant(Term):
    """A constant wrapping an arbitrary hashable value."""

    value: Any

    @property
    def is_variable(self) -> bool:
        return False

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constant({self.value!r})"


def term(value: Any) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Strings that start with an upper-case letter or an underscore become
    variables (the Datalog convention); everything else becomes a constant.
    Existing :class:`Term` objects pass through untouched.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


class FreshVariableFactory:
    """Generates globally-unique variable names.

    Used by type-2 instantiations (Definition 2.4), which pad extra relation
    attributes with "variables not occurring elsewhere in the instantiated
    rule", and by the acyclification construction of Theorem 3.32.
    """

    def __init__(self, prefix: str = "_F") -> None:
        self._prefix = prefix
        self._counter = 0

    def fresh(self) -> Variable:
        """Return a new variable whose name has not been handed out before."""
        self._counter += 1
        return Variable(f"{self._prefix}{self._counter}")

    def fresh_many(self, count: int) -> list[Variable]:
        """Return ``count`` fresh variables."""
        return [self.fresh() for _ in range(count)]

    def __iter__(self) -> Iterator[Variable]:  # pragma: no cover - convenience
        while True:
            yield self.fresh()
