"""Shape-grouped batched evaluation of metaquery instantiations.

Both engines pair one instantiated *body* with many instantiated *heads*:
the naive engine computes support, confidence and cover for every
``(body, head)`` combination, and FindRules tests every agreeing head
instantiation against one materialized body join.  Per pair, the fraction
operator of Definition 2.6 re-joins the body with the head and re-projects
— even with :class:`~repro.datalog.context.EvaluationContext` memoization,
each *distinct* pair pays for a fresh natural join.

This module exploits the paper's observation (Proposition 4.9 /
Theorem 4.12) that the decomposition and join structure depend only on the
literal schemes, not on the chosen relations: instantiations sharing a
normalized *body shape* (predicates + constants + variable-repetition
pattern, the same keys the :class:`EvaluationContext` uses) form a group
whose canonical body join is materialized **once**.  Every member query is
then answered from the shared result by key-set intersection:

* ``sup`` — read off the canonical join once per group: for each body atom,
  ``|π_var(a)(J(b))| / |J({a})|`` is the number of distinct keys in the
  join's cached hash index on the atom's variable positions;
* ``cvr`` / ``cnf`` — one grouped semijoin pass: the join's hash index on
  the head's common variables is built once per (group, variable-set) and
  every head instantiation in the group is answered by intersecting its own
  (also cached) hash index with it — two dictionary intersections instead
  of two natural joins per head.

A :class:`BatchEvaluator` is bound to one database and optionally shares an
:class:`EvaluationContext` (for atom relations and the canonical joins) —
and, when it does, also the context's
:class:`~repro.datalog.lifecycle.LifecycleCache` store, so a
``cache_limit`` caps the combined atoms + joins + fractions + groups
footprint with one global LRU order.  Like the context, it detects
in-place database mutations through the generation counters and drops only
the groups touching mutated relations (:meth:`BatchEvaluator.refresh`);
mutating the database *during* one evaluation remains unsupported.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from repro.datalog.atoms import Atom
from repro.datalog.context import (
    AtomKey,
    EvaluationContext,
    _normalized_view,
    _shape_key,
)
from repro.datalog.evaluation import atom_relation, join_atoms
from repro.datalog.lifecycle import CacheLimit, GenerationWatcher, LifecycleCache
from repro.datalog.terms import Variable
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["body_shape", "BatchStats", "BodyGroup", "BatchEvaluator"]

#: Normalized shape of a whole body: one AtomKey per atom under a shared
#: variable numbering (identical to the EvaluationContext join keys).
GroupKey = tuple[AtomKey, ...]


def _ratio(numerator: int, denominator: int) -> Fraction:
    """The fraction convention of Definition 2.6: 0 whenever the numerator is 0."""
    if numerator == 0 or denominator == 0:
        return Fraction(0)
    return Fraction(numerator, denominator)


def body_shape(atoms: Sequence[Atom]) -> tuple[GroupKey, list[str], list[tuple[int, ...]]]:
    """Normalize a body: the group key, the variable names in canonical
    numbering order, and each atom's distinct variable numbers.

    Variables are numbered by first occurrence across the whole atom list —
    the same numbering :func:`repro.datalog.evaluation.join_atoms` uses for
    its column order, so canonical column ``i`` carries variable number ``i``.
    """
    var_ids: dict[Variable, int] = {}
    keys: list[AtomKey] = []
    atom_numbers: list[tuple[int, ...]] = []
    for atom in atoms:
        keys.append(_shape_key(atom, var_ids))
        seen: list[int] = []
        for t in atom.terms:
            if isinstance(t, Variable):
                number = var_ids[t]
                if number not in seen:
                    seen.append(number)
        atom_numbers.append(tuple(seen))
    names = [v.name for v, _ in sorted(var_ids.items(), key=lambda kv: kv[1])]
    return tuple(keys), names, atom_numbers


@dataclass
class BatchStats:
    """Counters for benchmarks and debugging."""

    groups: int = 0  # distinct body shapes materialized
    group_hits: int = 0  # body lookups served from an existing group
    members: int = 0  # head instantiations answered from a shared group result

    def as_dict(self) -> dict[str, int]:
        return {
            "groups": self.groups,
            "group_hits": self.group_hits,
            "members": self.members,
        }


class _GroupCore:
    """One shape group: the canonical body join plus its shared aggregates.

    ``join`` has the canonical ``__v{i}`` columns, so column position ``i``
    is variable number ``i`` and the relation's own lazily-cached hash
    indexes double as the group's key-count maps (an index on positions
    ``(n1, n2)`` groups the join by variable numbers ``n1, n2``; its key set
    is the projection, the bucket sizes are the group-by counts).

    Everything stored here depends only on the shape: the join, its size and
    the support value are identical for every member of the group
    (Proposition 4.9 — the join structure depends only on the literal
    schemes and the chosen relations, not on the variable names).
    """

    __slots__ = ("join", "size", "support")

    def __init__(self, join: Relation, support: Fraction) -> None:
        self.join = join
        self.size = len(join)
        self.support = support

    def release(self) -> None:
        """Release the canonical join's cached indexes (LRU eviction hook).

        Clears the value-keyed index dict *in place* so member views
        sharing it stop pinning the built indexes, and drops the columnar
        store's bucket indexes and decoded rows the same way (views share
        the store object); any survivor rebuilds lazily.
        """
        self.join.release_indexes()

    def key_index(self, numbers: tuple[int, ...]) -> dict:
        """The cached hash index of the canonical join on the given variable numbers."""
        return self.join._hash_index(numbers)

    def projection_size(self, numbers: tuple[int, ...]) -> int:
        """``|π_{numbers}(J(b))|`` — the number of distinct keys in the index."""
        return len(self.key_index(numbers))


class BodyGroup:
    """A *member's* view of its shape group.

    The canonical join and its aggregates are shared across the group, but
    which actual variable each canonical column carries differs from member
    to member (``p(X, Y)`` and ``p(Y, X)`` share one type-1 shape with
    ``X``/``Y`` at swapped canonical positions), so the name-to-number
    mapping lives on the view, not on the shared core.
    """

    __slots__ = ("core", "name_to_number")

    def __init__(self, core: _GroupCore, name_to_number: dict[str, int]) -> None:
        self.core = core
        self.name_to_number = name_to_number

    @property
    def size(self) -> int:
        """``|J(b)|`` of the member's body."""
        return self.core.size

    @property
    def support(self) -> Fraction:
        """``sup`` of the member's body (shape-invariant)."""
        return self.core.support

    def key_index(self, numbers: tuple[int, ...]) -> dict:
        """The shared hash index of the canonical join on the given numbers."""
        return self.core.key_index(numbers)


class BatchEvaluator:
    """Evaluate whole shape groups of instantiations at once.

    Parameters
    ----------
    db:
        The database the groups are materialized over.
    ctx:
        Optional :class:`EvaluationContext` used for atom relations and the
        canonical joins (contexts bound to a different database are silently
        ignored, mirroring the evaluation functions).  A usable context also
        contributes its :class:`~repro.datalog.lifecycle.LifecycleCache`, so
        groups and memoized relations share one LRU budget.
    cache_limit:
        Bounds a *privately built* store (no usable ``ctx``); coerced
        through :meth:`~repro.datalog.lifecycle.CacheLimit.coerce`.
    """

    def __init__(
        self,
        db: Database,
        ctx: EvaluationContext | None = None,
        cache_limit: "CacheLimit | int | tuple | None" = None,
    ) -> None:
        self.db = db
        self.ctx = ctx if (ctx is not None and ctx.applies_to(db)) else None
        self.stats = BatchStats()
        self.store = (
            self.ctx.store
            if self.ctx is not None
            else LifecycleCache(CacheLimit.coerce(cache_limit))
        )
        self._groups = self.store.section("group")
        self._watcher = GenerationWatcher(db)

    def applies_to(self, db: Database) -> bool:
        """True when this evaluator's groups are valid for the given database."""
        return self.db is db

    @property
    def group_count(self) -> int:
        """Number of shape groups currently materialized (telemetry for
        ``MetaqueryEngine.stats()`` and the eviction policy)."""
        return len(self._groups)

    def clear(self) -> None:
        """Drop every materialized group, releasing the shared hash indexes.

        No longer *required* after an in-place mutation (:meth:`refresh`
        auto-invalidates incrementally); kept as the explicit full reset.
        """
        self._groups.clear()
        self._watcher.resync()

    def refresh(self) -> frozenset[str]:
        """Drop only the groups reading mutated relations (see
        :meth:`EvaluationContext.refresh`, the identical protocol)."""
        # peek → invalidate → resync, like the context: the snapshot must
        # not look fresh to a concurrent thread before stale entries are
        # gone.  A shared store may already have been swept by the
        # context's own refresh; invalidation is idempotent either way.
        changed = self._watcher.peek()
        if changed:
            self.store.invalidate_relations(changed)
            self._watcher.resync()
        return changed

    # ------------------------------------------------------------------
    def body_group(
        self,
        body_atoms: Sequence[Atom],
        precomputed: Relation | Callable[[], Relation] | None = None,
    ) -> BodyGroup:
        """The member's view of its shape group, materializing it on first sight.

        ``precomputed`` lets callers that can produce ``J(body_atoms)``
        themselves (FindRules assembles it from the reduced node relations)
        seed the group without this evaluator re-joining; its columns may be
        in any order.  Pass a zero-argument callable to defer that work to
        the cache miss — on a group hit it is never invoked.
        """
        self.refresh()
        key, names, atom_numbers = body_shape(body_atoms)
        core = self._groups.get(key)
        if core is None:
            self.stats.groups += 1
            if callable(precomputed):
                precomputed = precomputed()
            if precomputed is None:
                join = join_atoms(body_atoms, self.db, self.ctx)
            elif list(precomputed.columns) != names:
                join = precomputed.project(names)
            else:
                join = precomputed
            canonical = _normalized_view(join, len(names))
            support = self._support(body_atoms, atom_numbers, canonical)
            core = _GroupCore(canonical, support)
            self._groups.put(
                key,
                core,
                relations=frozenset(atom_key[0] for atom_key in key),
                weight=core.size,
            )
        else:
            self.stats.group_hits += 1
        return BodyGroup(core, {name: i for i, name in enumerate(names)})

    def _support(
        self, body_atoms: Sequence[Atom], atom_numbers: Sequence[tuple[int, ...]], canonical: Relation
    ) -> Fraction:
        """``sup`` read off the canonical join (see :mod:`repro.core.indices`)."""
        best = Fraction(0)
        for atom, numbers in zip(body_atoms, atom_numbers):
            base = atom_relation(atom, self.db, self.ctx)
            denominator = len(base)
            if denominator == 0:
                continue
            numerator = len(canonical._hash_index(numbers))
            value = _ratio(numerator, denominator)
            if value > best:
                best = value
        return best

    # ------------------------------------------------------------------
    def _head_alignment(self, group: BodyGroup, head: Relation) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Positions of the head's body-shared variables, aligned on both sides.

        Returns ``(head_positions, body_numbers)`` sorted by canonical body
        number, so the key tuples of the two hash indexes compare equal.
        """
        pairs = []
        for pos, name in enumerate(head.columns):
            number = group.name_to_number.get(name)
            if number is not None:
                pairs.append((number, pos))
        pairs.sort()
        return tuple(pos for _, pos in pairs), tuple(number for number, _ in pairs)

    def head_indices(self, group: BodyGroup, head_atom: Atom) -> tuple[Fraction, Fraction]:
        """``(cvr, cnf)`` of one head instantiation against the group's body.

        One grouped semijoin pass: both sides' hash indexes on the shared
        variables are cached (the body's once per group and variable set,
        the head's once per relation shape), so each member costs a key-set
        intersection plus bucket-size sums.
        """
        self.stats.members += 1
        head = atom_relation(head_atom, self.db, self.ctx)
        head_positions, body_numbers = self._head_alignment(group, head)
        head_index = head._hash_index(head_positions)
        body_index = group.key_index(body_numbers)
        common = head_index.keys() & body_index.keys()
        cover_numerator = sum(len(head_index[k]) for k in common)
        confidence_numerator = sum(len(body_index[k]) for k in common)
        return (
            _ratio(cover_numerator, len(head)),
            _ratio(confidence_numerator, group.size),
        )

    def head_joins(self, group: BodyGroup, head_atom: Atom) -> bool:
        """True iff ``J(b ∪ {h})`` is non-empty — the certifying-set test
        for ``cnf``/``cvr`` at threshold 0 (Proposition 3.20), answered from
        the group without materializing the combined join."""
        self.stats.members += 1
        head = atom_relation(head_atom, self.db, self.ctx)
        head_positions, body_numbers = self._head_alignment(group, head)
        head_index = head._hash_index(head_positions)
        body_index = group.key_index(body_numbers)
        if len(head_index) > len(body_index):
            head_index, body_index = body_index, head_index
        return any(key in body_index for key in head_index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchEvaluator(db={self.db.name!r}, groups={len(self._groups)}, "
            f"stats={self.stats.as_dict()})"
        )
