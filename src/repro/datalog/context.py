"""A memoization context for conjunctive-query evaluation.

Both metaquery engines evaluate exponentially many instantiations of the
same literal schemes over one fixed database, and the indices of a single
rule re-join the same body several times (once per index, once per body
atom for support).  :class:`EvaluationContext` makes that redundancy cheap:

* ``atom_relation`` results are cached keyed by the atom's *shape* — the
  predicate plus, per argument position, either the constant value or the
  first-occurrence index of the variable.  Two atoms that differ only in
  variable naming share one cache entry; the hit is renamed to the caller's
  variable names in O(1) (renamed views share tuples and hash indexes).
* ``join_atoms`` results are cached the same way, with the variable
  numbering taken across the whole atom list, so the body join of a rule is
  computed once no matter how many head instantiations it is paired with.
* ``fraction`` values (exact :class:`~fractions.Fraction` ratios) are cached
  keyed by the normalized shape of the pair of atom sets.

A context is bound to one :class:`~repro.relational.database.Database`.
In-place mutations between calls are detected automatically through the
database's per-relation generation counters: on its next use the context
drops exactly the entries that read a mutated relation (the shape keys
name every predicate an entry touches) and keeps the rest warm — see
:meth:`EvaluationContext.refresh`.  Mutating the database *during* a
single evaluation remains unsupported, as before.  Entries live in a
:class:`~repro.datalog.lifecycle.LifecycleCache`, optionally bounded by a
:class:`~repro.datalog.lifecycle.CacheLimit` (LRU eviction across the
atom/join/fraction sections and any sharing
:class:`~repro.datalog.batching.BatchEvaluator`).  The ``fast_path`` flag
enables the Yannakakis full-reducer pipeline for acyclic atom sets in
:func:`repro.datalog.evaluation.join_atoms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Hashable, Sequence

from repro.datalog.atoms import Atom
from repro.datalog.lifecycle import CacheLimit, GenerationWatcher, LifecycleCache
from repro.datalog.terms import Variable
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

__all__ = ["CacheStats", "EvaluationContext"]

#: Normalized shape of one atom: (predicate, (("v", i) | ("c", value), ...)).
AtomKey = tuple[str, tuple[tuple[str, Hashable], ...]]


def _shape_key(atom: Atom, var_ids: dict[Variable, int]) -> AtomKey:
    """The shape of ``atom`` under the shared variable numbering ``var_ids``.

    ``var_ids`` is extended in place: variables are numbered by first
    occurrence across every atom keyed with the same dictionary.
    """
    parts: list[tuple[str, Hashable]] = []
    for t in atom.terms:
        if isinstance(t, Variable):
            number = var_ids.setdefault(t, len(var_ids))
            parts.append(("v", number))
        else:
            parts.append(("c", t.value))
    return (atom.predicate, tuple(parts))


def _atoms_key(atoms: Sequence[Atom]) -> tuple[tuple[AtomKey, ...], list[str]]:
    """Normalize a whole atom list; returns the key and the variable names
    of the actual atoms in numbering order (for un-renaming cache hits)."""
    var_ids: dict[Variable, int] = {}
    keys = tuple(_shape_key(atom, var_ids) for atom in atoms)
    names = [v.name for v, _ in sorted(var_ids.items(), key=lambda kv: kv[1])]
    return keys, names


def _normalized_view(relation: Relation, n_variables: int) -> Relation:
    """The relation with its columns renamed to the canonical ``__v{i}`` names.

    A :meth:`~repro.relational.relation.Relation._view` — the cached entry
    shares the result's tuples, value-keyed index cache *and* columnar
    store, so a kernel-produced result stays encoded (and undecoded) in
    the cache until something set-shaped touches it.
    """
    schema = RelationSchema(relation.name, [f"__v{i}" for i in range(n_variables)])
    return relation._view(schema)


def _actual_view(relation: Relation, names: Sequence[str]) -> Relation:
    """A cached normalized relation renamed back to the caller's variable names."""
    schema = RelationSchema(relation.name, list(names))
    return relation._view(schema)


@dataclass
class CacheStats:
    """Hit/miss counters, mostly for benchmarks and debugging."""

    atom_hits: int = 0
    atom_misses: int = 0
    join_hits: int = 0
    join_misses: int = 0
    fraction_hits: int = 0
    fraction_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "atom_hits": self.atom_hits,
            "atom_misses": self.atom_misses,
            "join_hits": self.join_hits,
            "join_misses": self.join_misses,
            "fraction_hits": self.fraction_hits,
            "fraction_misses": self.fraction_misses,
        }


class EvaluationContext:
    """Shared caches for evaluating many queries over one fixed database.

    Parameters
    ----------
    db:
        The database the cached results are valid for.  Evaluation
        functions receiving a context for a *different* database silently
        bypass it.
    fast_path:
        Enable the acyclicity fast path (Yannakakis full reducer) in
        :func:`repro.datalog.evaluation.join_atoms`.
    caching:
        When False, the context still carries configuration (``fast_path``)
        but never stores or serves memoized results — the full uncached
        ablation baseline.
    cache_limit:
        Optional :class:`~repro.datalog.lifecycle.CacheLimit` (or the int /
        pair spellings it coerces) bounding the store; ignored when an
        explicit ``store`` is shared.
    store:
        An existing :class:`~repro.datalog.lifecycle.LifecycleCache` to
        share (the engine shares one store between its context and batcher
        so the limit caps their *combined* footprint).
    """

    def __init__(
        self,
        db: Database,
        fast_path: bool = True,
        caching: bool = True,
        cache_limit: "CacheLimit | int | tuple | None" = None,
        store: LifecycleCache | None = None,
    ) -> None:
        self.db = db
        self.fast_path = fast_path
        self.caching = caching
        self.stats = CacheStats()
        self.store = store if store is not None else LifecycleCache(CacheLimit.coerce(cache_limit))
        self._atoms = self.store.section("atom")
        self._joins = self.store.section("join")
        self._fractions = self.store.section("fraction")
        self._watcher = GenerationWatcher(db)

    def clear(self) -> None:
        """Drop every cached result and release the cached hash indexes.

        No longer *required* after an in-place mutation (:meth:`refresh`
        auto-invalidates incrementally) but still the explicit full reset
        used by ``MetaqueryEngine.invalidate_cache``.
        """
        self._atoms.clear()
        self._joins.clear()
        self._fractions.clear()
        self._watcher.resync()

    def applies_to(self, db: Database) -> bool:
        """True when this context's caches are valid for the given database.

        Identity is still the test — a context never serves results for a
        *different* database object.  Staleness of the *same* object after
        in-place mutation is handled separately by :meth:`refresh`, which
        every memoized lookup runs first.
        """
        return self.db is db

    def refresh(self) -> frozenset[str]:
        """Detect in-place database mutations; drop only affected entries.

        An O(1) probe of ``db.mutation_count`` when nothing changed.  On a
        mismatch the per-relation generations are diffed against the last
        snapshot (:class:`~repro.datalog.lifecycle.GenerationWatcher`) and
        entries reading a changed relation are invalidated — entries over
        untouched relations stay warm.  Returns the changed relation names
        (mostly for tests and telemetry).
        """
        # Invalidate *before* advancing the snapshot: under the async
        # facade another thread's O(1) probe must not see a fresh snapshot
        # while stale entries are still in the store.  Double invalidation
        # from concurrent refreshes is idempotent.
        changed = self._watcher.peek()
        if changed:
            self.store.invalidate_relations(changed)
            self._watcher.resync()
        return changed

    # ------------------------------------------------------------------
    def atom_relation(self, atom: Atom, compute: Callable[[Atom], Relation]) -> Relation:
        """The memoized relation of one atom (columns = its variable names)."""
        if not self.caching:
            return compute(atom)
        self.refresh()
        var_ids: dict[Variable, int] = {}
        key = _shape_key(atom, var_ids)
        names = [v.name for v, _ in sorted(var_ids.items(), key=lambda kv: kv[1])]
        cached = self._atoms.get(key)
        if cached is None:
            self.stats.atom_misses += 1
            result = compute(atom)
            self._atoms.put(
                key,
                _normalized_view(result, len(names)),
                relations=frozenset((atom.predicate,)),
                weight=len(result),
            )
            return result
        self.stats.atom_hits += 1
        return _actual_view(cached, names)

    def join_atoms(
        self, atoms: Sequence[Atom], compute: Callable[[], Relation]
    ) -> Relation:
        """The memoized join of an atom list.

        ``compute`` must return the join with columns in first-occurrence
        variable order (the canonical order produced by
        :func:`repro.datalog.evaluation.join_atoms`).
        """
        if not self.caching:
            return compute()
        self.refresh()
        key, names = _atoms_key(atoms)
        cached = self._joins.get(key)
        if cached is None:
            self.stats.join_misses += 1
            result = compute()
            self._joins.put(
                key,
                _normalized_view(result, len(names)),
                relations=frozenset(atom_key[0] for atom_key in key),
                weight=len(result),
            )
            return result
        self.stats.join_hits += 1
        return _actual_view(cached, names)

    def fraction(
        self,
        r_atoms: Sequence[Atom],
        s_atoms: Sequence[Atom],
        compute: Callable[[], Fraction],
    ) -> Fraction:
        """The memoized fraction ``R ↑ S`` of a pair of atom sets."""
        if not self.caching:
            return compute()
        self.refresh()
        joint_key, _ = _atoms_key(tuple(r_atoms) + tuple(s_atoms))
        key = (len(r_atoms), joint_key)
        cached = self._fractions.get(key)
        if cached is None:
            self.stats.fraction_misses += 1
            cached = compute()
            self._fractions.put(
                key,
                cached,
                relations=frozenset(atom_key[0] for atom_key in joint_key),
                weight=0,
            )
        else:
            self.stats.fraction_hits += 1
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvaluationContext(db={self.db.name!r}, fast_path={self.fast_path}, "
            f"atoms={len(self._atoms)}, joins={len(self._joins)}, "
            f"fractions={len(self._fractions)})"
        )
