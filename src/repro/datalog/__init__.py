"""Conjunctive-query and Datalog substrate.

This package provides the first-order query layer the metaquery engine is
built on:

* terms (variables and constants), atoms, conjunctive queries and Horn rules;
* a small parser for the textual ``head :- body`` / ``head <- body`` syntax;
* evaluation of conjunctive queries over a
  :class:`~repro.relational.database.Database` (the paper's ``J(R)``
  operator and the Boolean Conjunctive Query problem of Definition 3.2);
* counting of satisfying substitutions (the ``#BCQ`` problem of
  Proposition 3.26);
* a semi-naive fixpoint evaluator for (possibly recursive) Datalog programs,
  which makes the substrate a usable deductive-database engine in its own
  right.
"""

from repro.datalog.terms import Constant, Term, Variable, term
from repro.datalog.atoms import Atom
from repro.datalog.batching import BatchEvaluator, BodyGroup
from repro.datalog.context import EvaluationContext
from repro.datalog.lifecycle import CacheLimit, LifecycleCache, RequestCache
from repro.datalog.sharding import ShardedEvaluator
from repro.datalog.rules import ConjunctiveQuery, HornRule
from repro.datalog.parser import parse_atom, parse_query, parse_rule, parse_program
from repro.datalog.evaluation import (
    atom_relation,
    evaluate_query,
    is_satisfiable,
    join_atoms,
    substitutions,
)
from repro.datalog.counting import count_substitutions
from repro.datalog.program import DatalogProgram

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "term",
    "Atom",
    "BatchEvaluator",
    "BodyGroup",
    "CacheLimit",
    "EvaluationContext",
    "LifecycleCache",
    "RequestCache",
    "ShardedEvaluator",
    "ConjunctiveQuery",
    "HornRule",
    "parse_atom",
    "parse_query",
    "parse_rule",
    "parse_program",
    "atom_relation",
    "join_atoms",
    "evaluate_query",
    "substitutions",
    "is_satisfiable",
    "count_substitutions",
    "DatalogProgram",
]
