"""A small recursive-descent parser for atoms, rules, queries and programs.

Grammar (whitespace-insensitive)::

    program  := rule (newline rule)*
    rule     := atom ("<-" | ":-") atomlist "."?
    query    := atomlist
    atomlist := atom ("," atom)*
    atom     := identifier "(" termlist? ")"
    termlist := term ("," term)*
    term     := identifier | integer | quoted string

Identifiers that start with an upper-case letter or ``_`` are parsed as
variables; everything else is a constant.  Integers become Python ``int``
constants, quoted strings become string constants.  The same tokenizer is
reused by the metaquery parser (which treats upper-case *predicate* positions
as predicate variables).
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.datalog.atoms import Atom
from repro.datalog.rules import ConjunctiveQuery, HornRule
from repro.datalog.terms import Constant, Term, Variable
from repro.exceptions import ParseError

__all__ = ["parse_atom", "parse_query", "parse_rule", "parse_program", "iter_rules"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow><-|:-)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: str) -> None:
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}", text)
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group()))
    return tokens


class _Parser:
    """Cursor over a token list with the usual expect/accept helpers."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.position = 0

    def peek(self) -> _Token | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self.text)
        self.position += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, got {token.value!r}", self.text)
        return token

    def accept(self, kind: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == kind:
            self.position += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    # ------------------------------------------------------------------
    def parse_term(self) -> Term:
        token = self.next()
        if token.kind == "number":
            return Constant(int(token.value))
        if token.kind == "string":
            return Constant(token.value[1:-1])
        if token.kind == "ident":
            name = token.value
            if name[0].isupper() or name[0] == "_":
                return Variable(name)
            return Constant(name)
        raise ParseError(f"expected a term, got {token.value!r}", self.text)

    def parse_atom(self) -> Atom:
        predicate = self.expect("ident").value
        self.expect("lparen")
        terms: list[Term] = []
        if not self.accept("rparen"):
            terms.append(self.parse_term())
            while self.accept("comma"):
                terms.append(self.parse_term())
            self.expect("rparen")
        return Atom(predicate, terms)

    def parse_atom_list(self) -> list[Atom]:
        atoms = [self.parse_atom()]
        while self.accept("comma"):
            atoms.append(self.parse_atom())
        return atoms

    def parse_rule(self) -> HornRule:
        head = self.parse_atom()
        self.expect("arrow")
        body = self.parse_atom_list()
        self.accept("dot")
        return HornRule(head, body)


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"edge(X, Y)"``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if not parser.at_end():
        raise ParseError("trailing input after atom", text)
    return atom


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query, e.g. ``"edge(X,Y), edge(Y,Z)"``."""
    parser = _Parser(text)
    atoms = parser.parse_atom_list()
    if not parser.at_end():
        raise ParseError("trailing input after query", text)
    return ConjunctiveQuery(atoms)


def parse_rule(text: str) -> HornRule:
    """Parse a Horn rule, e.g. ``"path(X,Z) <- edge(X,Y), path(Y,Z)."``."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if not parser.at_end():
        raise ParseError("trailing input after rule", text)
    return rule


def parse_program(text: str) -> list[HornRule]:
    """Parse a sequence of Horn rules separated by newlines or dots.

    Blank lines and ``%``-prefixed comment lines are ignored.
    """
    rules: list[HornRule] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("%"):
            continue
        rules.append(parse_rule(line))
    return rules


def iter_rules(text: str) -> Iterator[HornRule]:
    """Lazy variant of :func:`parse_program`."""
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("%"):
            continue
        yield parse_rule(line)
