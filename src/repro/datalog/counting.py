"""Counting satisfying substitutions: the ``#BCQ`` problem.

Proposition 3.26 of the paper shows that counting the substitutions that
satisfy a conjunctive query (``#BCQ``) is #P-complete via a parsimonious
reduction from #3SAT.  The confidence index needs exact counts of the tuples
satisfying the body of an instantiated rule, which is why its combined
complexity climbs to NP^PP (Theorems 3.27-3.29).

This module provides the counting oracle used by those experiments.  The
count is over *all* variables of the query by default; an optional
``over`` argument restricts the count to the projection onto a subset of
variables (the quantity the cover/confidence numerators use).
"""

from __future__ import annotations

from typing import Sequence

from repro.datalog.atoms import Atom
from repro.datalog.rules import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.exceptions import DatalogError
from repro.datalog.evaluation import evaluate_query
from repro.relational.database import Database

__all__ = ["count_substitutions", "count_atoms_substitutions"]


def count_substitutions(
    query: ConjunctiveQuery,
    db: Database,
    over: Sequence[Variable] | None = None,
) -> int:
    """Number of satisfying substitutions of ``query`` over ``db``.

    With ``over`` given, counts the distinct restrictions of satisfying
    substitutions to those variables (i.e. ``|π_over(J(query))|``).
    """
    result = evaluate_query(query, db)
    if over is None:
        return len(result)
    names = [v.name for v in over]
    missing = [n for n in names if n not in result.columns]
    if missing:
        raise DatalogError(f"count variables {missing} do not occur in the query")
    return len(result.project(names))


def count_atoms_substitutions(atoms: Sequence[Atom], db: Database) -> int:
    """Convenience wrapper counting substitutions of a raw atom sequence."""
    return count_substitutions(ConjunctiveQuery(atoms), db)
