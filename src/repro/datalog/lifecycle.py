"""The cache lifecycle: bounded, relation-aware stores for long-running engines.

The memoization layers (:class:`~repro.datalog.context.EvaluationContext`,
:class:`~repro.datalog.batching.BatchEvaluator`) were built for one-shot
mining over an immutable database: caches grow without bound and any
mutation requires a manual, all-or-nothing ``clear()``.  The ROADMAP's
long-running-server north star breaks both assumptions, so this module
supplies the three lifecycle pieces those layers (and the engine facade)
share:

* :class:`CacheLimit` — the ``max_entries`` / ``max_tuples`` knobs bounding
  a cache (``MetaqueryEngine(cache_limit=...)``, CLI ``--cache-limit``);
* :class:`LifecycleCache` — one LRU store with named *sections* (the
  context's atoms / joins / fractions and the batcher's shape groups) that
  share a single budget, evict least-recently-used entries across sections,
  invalidate by the *relations an entry reads* (derived from the
  :data:`~repro.datalog.context.AtomKey` shape keys, which name every
  predicate an entry touches) and release cached hash-index memory on
  eviction;
* :class:`RequestCache` — completed
  :class:`~repro.core.answers.AnswerSet` objects keyed by the prepared
  request, guarded by the database's
  :meth:`~repro.relational.database.Database.generation_vector` so any
  mutation automatically invalidates affected entries on the next lookup.

Relation-scoped invalidation is driven by the
:class:`~repro.relational.database.Database` generation counters: consumers
snapshot ``db.mutation_count`` (an O(1) probe) and, on mismatch, diff the
per-relation generations to learn exactly which relations changed —
entries whose relation sets are disjoint from the change survive, which is
what keeps caches warm across streaming/append workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Iterator

from repro.exceptions import EngineError
from repro.tools.sanitizer import create_lock

__all__ = [
    "CacheLimit",
    "LifecycleStats",
    "LifecycleCache",
    "CacheSection",
    "GenerationVector",
    "GenerationWatcher",
    "RequestCacheStats",
    "RequestCache",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.answers import AnswerSet
    from repro.relational.database import Database

#: The shape of :meth:`~repro.relational.database.Database.generation_vector`:
#: ``(relation name, generation)`` pairs, sorted by name.
GenerationVector = tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class CacheLimit:
    """Bounds for a :class:`LifecycleCache`.

    ``max_entries`` caps the number of live entries across every section of
    the store (atoms + joins + fractions + shape groups when the engine
    shares one store); ``max_tuples`` caps the summed tuple counts of the
    cached relations (fractions weigh 0).  ``None`` leaves a dimension
    unbounded; ``CacheLimit()`` bounds nothing.
    """

    max_entries: int | None = None
    max_tuples: int | None = None

    def __post_init__(self) -> None:
        for name, value in (("max_entries", self.max_entries), ("max_tuples", self.max_tuples)):
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise EngineError(
                    f"{name} must be an int or None, got {type(value).__name__} ({value!r})"
                )
            if value < 1:
                raise EngineError(f"{name} must be >= 1, got {value}")

    @property
    def unbounded(self) -> bool:
        """True when neither dimension is capped."""
        return self.max_entries is None and self.max_tuples is None

    @classmethod
    def coerce(cls, value: "CacheLimit | int | tuple | None") -> "CacheLimit | None":
        """Normalize the engine-facing spellings of a cache limit.

        ``None`` → unbounded (no limit object at all); an int → that many
        entries; a ``(max_entries, max_tuples)`` pair → both knobs; a
        :class:`CacheLimit` passes through (``None`` when unbounded).
        """
        if value is None:
            return None
        if isinstance(value, CacheLimit):
            return None if value.unbounded else value
        if isinstance(value, bool):
            raise EngineError(f"cache_limit must be an int, pair or CacheLimit, got {value!r}")
        if isinstance(value, int):
            return cls(max_entries=value)
        if isinstance(value, tuple) and len(value) == 2:
            return cls.coerce(cls(*value))
        raise EngineError(
            f"cache_limit must be an int, a (max_entries, max_tuples) pair or a "
            f"CacheLimit, got {type(value).__name__} ({value!r})"
        )


@dataclass
class LifecycleStats:
    """Eviction/invalidation counters of one :class:`LifecycleCache`."""

    evictions: int = 0  # entries evicted by the LRU policy
    evicted_tuples: int = 0  # summed weights of those entries
    invalidated_entries: int = 0  # entries dropped by relation-scoped invalidation
    rejected: int = 0  # values too large for max_tuples, served uncached

    def as_dict(self) -> dict[str, int]:
        return {
            "evictions": self.evictions,
            "evicted_tuples": self.evicted_tuples,
            "invalidated_entries": self.invalidated_entries,
            "rejected": self.rejected,
        }


def _release(value: Any) -> None:
    """Release the memory a cached value pins beyond the entry itself.

    Cached relations carry a lazily built hash-index dict that renamed
    views *share* (index keys are column positions, preserved by renaming),
    so a view retained by a caller would otherwise keep every index alive
    after the entry is gone.  Clearing the dict in place releases the
    indexes through every alias at once; survivors rebuild lazily on the
    next probe.  Cached relations expose ``release_indexes()`` (which also
    drops the columnar store's bucket indexes and decoded rows — the
    encoded columns themselves stay, they *are* the cached value); other
    values may expose ``release()`` (shape-group cores do); plain values
    (fractions) need no release.
    """
    release = getattr(value, "release_indexes", None)
    if callable(release):
        release()
        return
    release = getattr(value, "release", None)
    if callable(release):
        release()
        return
    cache = getattr(value, "_index_cache", None)
    if isinstance(cache, dict):
        cache.clear()


class _Entry:
    __slots__ = ("value", "relations", "weight")

    def __init__(self, value: Any, relations: frozenset[str], weight: int) -> None:
        self.value = value
        self.relations = relations
        self.weight = weight


class LifecycleCache:
    """An LRU store with named sections sharing one entries/tuples budget.

    Sections partition the key space (``"atom"`` / ``"join"`` /
    ``"fraction"`` / ``"group"``) while recency and the
    :class:`CacheLimit` budget are global: an engine whose context and
    batcher share one store therefore keeps
    ``group_count + len(_atoms) + len(_joins) + len(_fractions)`` under
    ``max_entries`` no matter how the workload distributes across the
    sections.  Every entry records the set of relation names it was
    computed from, so :meth:`invalidate_relations` drops exactly the
    entries touching mutated relations.
    """

    def __init__(self, limit: CacheLimit | None = None) -> None:
        self.limit = CacheLimit.coerce(limit)
        self.stats = LifecycleStats()
        self._entries: OrderedDict[tuple[str, Hashable], _Entry] = OrderedDict()
        self._section_sizes: dict[str, int] = {}
        self._tuples = 0
        # The async facade shares one engine (hence one store) across
        # threads; unlike the pre-lifecycle monotone dicts, an LRU store
        # mutates on reads (recency) and evicts on writes, so its state
        # transitions take a lock.  Uncontended acquisition is cheap next
        # to the joins being memoized.  Built through create_lock so
        # REPRO_SANITIZE=1 swaps in the order-checking wrapper.
        self._lock = create_lock("repro.datalog.lifecycle:LifecycleCache")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_tuples(self) -> int:
        """Summed weights (cached relation sizes) of all live entries."""
        return self._tuples

    def section_len(self, section: str) -> int:
        return self._section_sizes.get(section, 0)

    def section(self, name: str) -> "CacheSection":
        """A view of one named section (the stores the consumers hold)."""
        return CacheSection(self, name)

    # ------------------------------------------------------------------
    def get(self, section: str, key: Hashable) -> Any | None:
        if self.limit is None:
            # Unbounded (the default): recency is never consulted, so a
            # hit is a plain dict read — no lock, no move_to_end — keeping
            # the memoization hot path at pre-lifecycle cost.
            entry = self._entries.get((section, key))
            return entry.value if entry is not None else None
        with self._lock:
            entry = self._entries.get((section, key))
            if entry is None:
                return None
            self._entries.move_to_end((section, key))
            return entry.value

    def put(
        self, section: str, key: Hashable, value: Any, relations: frozenset[str], weight: int = 0
    ) -> None:
        limit = self.limit
        if limit is not None and limit.max_tuples is not None and weight > limit.max_tuples:
            # The value alone exceeds the whole budget: caching it would
            # evict everything else for one entry, so serve it uncached.
            with self._lock:
                self.stats.rejected += 1
            return
        full = (section, key)
        with self._lock:
            old = self._entries.pop(full, None)
            if old is not None:
                self._tuples -= old.weight
                self._section_sizes[section] -= 1
            self._entries[full] = _Entry(value, relations, weight)
            self._tuples += weight
            self._section_sizes[section] = self._section_sizes.get(section, 0) + 1
            self._shrink_locked()

    def _shrink_locked(self) -> None:
        # Caller holds self._lock (the *_locked suffix is the contract).
        limit = self.limit
        if limit is None:
            return
        while (limit.max_entries is not None and len(self._entries) > limit.max_entries) or (
            limit.max_tuples is not None and self._tuples > limit.max_tuples
        ):
            (section, _), entry = self._entries.popitem(last=False)
            self._tuples -= entry.weight
            self._section_sizes[section] -= 1
            self.stats.evictions += 1
            self.stats.evicted_tuples += entry.weight
            _release(entry.value)

    # ------------------------------------------------------------------
    def invalidate_relations(self, names: Iterable[str]) -> int:
        """Drop every entry reading one of the given relations; returns the count."""
        names = frozenset(names)
        if not names or not self._entries:
            return 0
        with self._lock:
            dropped = [
                full for full, entry in self._entries.items() if entry.relations & names
            ]
            for full in dropped:
                entry = self._entries.pop(full)
                self._tuples -= entry.weight
                self._section_sizes[full[0]] -= 1
                _release(entry.value)
            self.stats.invalidated_entries += len(dropped)
        return len(dropped)

    def clear_section(self, section: str) -> None:
        """Drop (and release) every entry of one section."""
        with self._lock:
            dropped = [full for full in self._entries if full[0] == section]
            for full in dropped:
                entry = self._entries.pop(full)
                self._tuples -= entry.weight
                _release(entry.value)
            self._section_sizes[section] = 0

    def clear(self) -> None:
        """Drop every entry, releasing the cached hash-index dicts in place."""
        with self._lock:
            for entry in self._entries.values():
                _release(entry.value)
            self._entries.clear()
            self._section_sizes.clear()
            self._tuples = 0

    def gauges(self) -> dict[str, int]:
        """Live-size gauges (entries, tuples) for telemetry, read under the lock."""
        with self._lock:
            return {"entries": len(self._entries), "tuples": self._tuples}

    def stats_dict(self) -> dict[str, int]:
        """A consistent snapshot of the eviction counters, taken under the lock.

        Reading ``cache.stats.as_dict()`` directly can interleave with a
        concurrent ``put`` and observe e.g. ``evictions`` incremented but
        ``evicted_tuples`` not yet; telemetry consumers use this instead.
        """
        with self._lock:
            return self.stats.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sections = ", ".join(f"{k}={v}" for k, v in sorted(self._section_sizes.items()) if v)
        return (
            f"LifecycleCache({sections or 'empty'}, tuples={self._tuples}, "
            f"limit={self.limit}, stats={self.stats.as_dict()})"
        )


class CacheSection:
    """A consumer's view of one named section of a :class:`LifecycleCache`.

    Behaves like a small mapping (``get`` / ``put`` / ``len`` / iteration
    over keys) so :class:`~repro.datalog.context.EvaluationContext` can keep
    exposing ``_atoms`` / ``_joins`` / ``_fractions`` with dict-like
    introspection while the actual storage, recency order and budget are
    shared store-wide.
    """

    __slots__ = ("_store", "_name")

    def __init__(self, store: LifecycleCache, name: str) -> None:
        self._store = store
        self._name = name

    @property
    def store(self) -> LifecycleCache:
        return self._store

    def get(self, key: Hashable) -> Any | None:
        return self._store.get(self._name, key)

    def put(self, key: Hashable, value: Any, relations: frozenset[str], weight: int = 0) -> None:
        self._store.put(self._name, key, value, relations, weight)

    def __len__(self) -> int:
        return self._store.section_len(self._name)

    def __contains__(self, key: Hashable) -> bool:
        return (self._name, key) in self._store._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter([k for (s, k) in self._store._entries if s == self._name])

    def clear(self) -> None:
        self._store.clear_section(self._name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheSection({self._name!r}, {len(self)} entries)"


class GenerationWatcher:
    """Tracks which relations of a database mutated since a snapshot.

    The one staleness protocol every cache consumer shares: snapshot the
    database's per-relation generations, probe ``mutation_count`` (O(1))
    on each check, and diff the generations only on a mismatch.
    :meth:`changed` advances the snapshot (the context/batcher pattern:
    invalidate once per mutation); :meth:`peek` does not (the sharder
    pattern: keep shipping a delta until every worker acknowledged it,
    then :meth:`resync` explicitly).
    """

    __slots__ = ("db", "_mutations", "_generations")

    def __init__(self, db: "Database") -> None:
        self.db = db
        self._mutations: int = 0
        self._generations: dict[str, int] = {}
        self.resync()

    def resync(self) -> None:
        """Re-baseline: the database's current state counts as seen."""
        self._mutations = self.db.mutation_count
        self._generations = self.db.generations()

    def _diff(self) -> frozenset[str]:
        current = self.db.generations()
        return frozenset(
            name for name, gen in current.items() if self._generations.get(name) != gen
        )

    def peek(self) -> frozenset[str]:
        """Relations mutated since the snapshot; the snapshot is kept."""
        if self._mutations == self.db.mutation_count:
            return frozenset()
        return self._diff()

    def changed(self) -> frozenset[str]:
        """Relations mutated since the snapshot; the snapshot advances."""
        if self._mutations == self.db.mutation_count:
            return frozenset()
        changed = self._diff()
        self.resync()
        return changed


# ----------------------------------------------------------------------
# request-level answer cache
# ----------------------------------------------------------------------
@dataclass
class RequestCacheStats:
    """Hit/miss/invalidation counters of one :class:`RequestCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0  # entries dropped by the LRU cap
    invalidated: int = 0  # entries dropped because the generation vector moved

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
        }


class RequestCache:
    """Completed answer sets keyed by request, guarded by the db mutation state.

    Each entry stores the database's
    :meth:`~repro.relational.database.Database.generation_vector` captured
    when the evaluation *started*; a lookup whose current vector differs
    drops the entry and reports a miss, so any mutation (of any relation —
    metaqueries with predicate variables may read all of them, and the
    instantiation space itself depends on the relation set) automatically
    invalidates affected answers without an explicit protocol.  Bounded by
    an LRU cap on the entry count and safe under the async facade's
    concurrent streams (all state transitions hold an internal lock).

    Stored :class:`~repro.core.answers.AnswerSet` objects are the cache's
    *private snapshots*: consumers (``PreparedMetaquery``) store a copy
    and hand out copies on hits, so a caller mutating its result (the
    ``AnswerSet.append`` API) cannot poison future replays.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if isinstance(max_entries, bool) or not isinstance(max_entries, int):
            raise EngineError(
                f"request cache size must be an int, got {type(max_entries).__name__}"
            )
        if max_entries < 1:
            raise EngineError(f"request cache size must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = RequestCacheStats()
        self._entries: OrderedDict[Hashable, tuple[GenerationVector, "AnswerSet"]] = OrderedDict()
        self._lock = create_lock("repro.datalog.lifecycle:RequestCache")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, generation_vector: GenerationVector) -> "AnswerSet | None":
        """The cached answers for ``key``, or None (stale entries are dropped)."""
        with self._lock:
            item = self._entries.get(key)
            if item is None:
                self.stats.misses += 1
                return None
            vector, answers = item
            if vector != generation_vector:
                del self._entries[key]
                self.stats.invalidated += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return answers

    def put(self, key: Hashable, generation_vector: GenerationVector, answers: "AnswerSet") -> None:
        """Record a *completed* evaluation under the vector it started from.

        If the database mutated mid-evaluation the stored vector is already
        stale and the entry self-destructs on its first lookup — a
        conservative but safe way to never serve mixed-snapshot answers.
        """
        with self._lock:
            self._entries[key] = (generation_vector, answers)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats_dict(self) -> dict[str, int]:
        """A consistent snapshot of the hit/miss counters, taken under the lock.

        A lookup bumps two counters (``invalidated`` *and* ``misses``);
        snapshotting under the lock means telemetry never reports one
        without the other.
        """
        with self._lock:
            return self.stats.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestCache({len(self._entries)}/{self.max_entries} entries, "
            f"stats={self.stats.as_dict()})"
        )
