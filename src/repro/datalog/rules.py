"""Conjunctive queries and Horn rules over atoms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.datalog.atoms import Atom, variables_of
from repro.datalog.terms import Term, Variable
from repro.exceptions import DatalogError

__all__ = ["ConjunctiveQuery", "HornRule", "rule_from_atoms"]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: a finite set of atoms (Definition 3.2).

    The atoms are stored as an ordered tuple for reproducible iteration, but
    equality is set-based (the order of atoms does not matter).
    """

    atoms: tuple[Atom, ...]

    def __init__(self, atoms: Iterable[Atom]) -> None:
        object.__setattr__(self, "atoms", tuple(atoms))
        if not self.atoms:
            raise DatalogError("a conjunctive query must contain at least one atom")

    @property
    def variables(self) -> tuple[Variable, ...]:
        """Distinct variables in first-occurrence order (``att`` of the atom set)."""
        return variables_of(self.atoms)

    @property
    def predicates(self) -> tuple[str, ...]:
        """Distinct predicate names, in first-occurrence order."""
        seen: list[str] = []
        for atom in self.atoms:
            if atom.predicate not in seen:
                seen.append(atom.predicate)
        return tuple(seen)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a substitution to every atom."""
        return ConjunctiveQuery(atom.substitute(mapping) for atom in self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self):
        return iter(self.atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return frozenset(self.atoms) == frozenset(other.atoms)

    def __hash__(self) -> int:
        return hash(frozenset(self.atoms))

    def __str__(self) -> str:
        return ", ".join(str(a) for a in self.atoms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConjunctiveQuery({self!s})"


@dataclass(frozen=True)
class HornRule:
    """A definite Horn rule ``head <- body`` over ordinary atoms.

    This is what a metaquery instantiation produces (Section 2.1): the head
    is a single atom and the body a non-empty sequence of atoms.
    """

    head: Atom
    body: tuple[Atom, ...]

    def __init__(self, head: Atom, body: Iterable[Atom]) -> None:
        body_atoms = tuple(body)
        if not body_atoms:
            raise DatalogError("a Horn rule must have a non-empty body")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", body_atoms)

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """Head followed by body atoms (the set ``A_r`` of Definition 3.19)."""
        return (self.head,) + self.body

    @property
    def head_atoms(self) -> tuple[Atom, ...]:
        """``h(r)``: the set of atoms in the head (always a singleton here)."""
        return (self.head,)

    @property
    def body_atoms(self) -> tuple[Atom, ...]:
        """``b(r)``: the set of atoms in the body."""
        return self.body

    @property
    def variables(self) -> tuple[Variable, ...]:
        """Distinct variables of the whole rule."""
        return variables_of(self.atoms)

    @property
    def head_variables(self) -> tuple[Variable, ...]:
        """Distinct variables of the head atom."""
        return self.head.variables

    @property
    def body_variables(self) -> tuple[Variable, ...]:
        """Distinct variables of the body atoms."""
        return variables_of(self.body)

    @property
    def predicates(self) -> tuple[str, ...]:
        """Distinct predicate names of the rule."""
        seen: list[str] = []
        for atom in self.atoms:
            if atom.predicate not in seen:
                seen.append(atom.predicate)
        return tuple(seen)

    def is_range_restricted(self) -> bool:
        """True when every head variable also occurs in the body (safety)."""
        body_vars = set(self.body_variables)
        return all(v in body_vars for v in self.head_variables)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "HornRule":
        """Apply a substitution to head and body."""
        return HornRule(
            self.head.substitute(mapping),
            tuple(atom.substitute(mapping) for atom in self.body),
        )

    def body_query(self) -> ConjunctiveQuery:
        """The body as a conjunctive query."""
        return ConjunctiveQuery(self.body)

    def full_query(self) -> ConjunctiveQuery:
        """Head plus body as a conjunctive query (used by cover/confidence)."""
        return ConjunctiveQuery(self.atoms)

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        return f"{self.head} <- {body}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HornRule({self!s})"


def rule_from_atoms(head: Atom, body: Sequence[Atom]) -> HornRule:
    """Tiny convenience wrapper mirroring the parser's output shape."""
    return HornRule(head, body)
