"""Shard batched shape-groups across a ``multiprocessing`` worker pool.

PR 2's :class:`~repro.datalog.batching.BatchEvaluator` reduced metaquery
evaluation to many *shape groups*: instantiations sharing a normalized body
shape are answered from one materialized canonical join.  Groups are the
natural unit of distribution — the group key (a tuple of
:data:`~repro.datalog.context.AtomKey`) is picklable, and each group's
materialization touches only the database, never another group's caches.

This module distributes whole groups across a pool of worker processes:

* :func:`assign_shards` / :func:`partition` deterministically map group
  keys to shard ids (distinct keys round-robin in first-seen order, so the
  same inputs always produce the same placement and members of one group
  always land on the same worker, preserving batching's share-one-join
  property within each shard);
* each worker process owns a private
  :class:`~repro.datalog.batching.BatchEvaluator` /
  :class:`~repro.datalog.context.EvaluationContext` pair, built once per
  pool by the initializer — there are **no shared mutable caches**, so no
  locks and no cross-process invalidation protocol;
* :class:`ShardedEvaluator` owns the pool (created lazily, reused across
  calls, released by :meth:`ShardedEvaluator.close` or a ``with`` block)
  and runs picklable task callables over per-shard payloads, returning
  results in payload order (:meth:`ShardedEvaluator.map`) or in completion
  order (:meth:`ShardedEvaluator.imap_unordered`, the streaming twin);
* :class:`ReorderBuffer` re-serializes completion-order results back into
  the exact serial emission order, which is how the streaming entry points
  (``PreparedMetaquery.stream``) emit answers incrementally while staying
  byte-identical to the materialized path.

Determinism contract: callers tag every work item with its position in the
serial enumeration order, shard by group key, and re-assemble results by
position (a stable sort by instantiation key).  Because every index value
is an exact :class:`~fractions.Fraction` and the instantiations themselves
are enumerated once in the parent (type-2 padding counters included), the
merged answers are **byte-identical** to the serial path's for any worker
count — the property the shard-ablation benchmark and the sharding property
tests assert.

The engine-facing entry points live with their engines
(:mod:`repro.core.naive` ships index-evaluation and first-hit tasks,
:mod:`repro.core.findrules` ships whole first-level search branches); this
module only provides the pool plumbing plus :func:`worker_state`, the
accessor those task functions use to reach the worker-local evaluator pair.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence

from repro.datalog.batching import BatchEvaluator
from repro.datalog.context import EvaluationContext
from repro.datalog.lifecycle import CacheLimit, GenerationWatcher
from repro.exceptions import ShardingError
from repro.relational import columnar as _columnar_module
from repro.relational.database import Database
from repro.tools.sanitizer import create_lock

__all__ = [
    "worker_state",
    "assign_shards",
    "partition",
    "ReorderBuffer",
    "resolve_sharder",
    "ShardStats",
    "ShardedEvaluator",
]

# ----------------------------------------------------------------------
# worker-process state
# ----------------------------------------------------------------------
# Populated by _init_worker inside each pool process.  Parent processes
# never touch these; worker task functions reach them via worker_state().
_WORKER_DB: Database | None = None
_WORKER_CTX: EvaluationContext | None = None
_WORKER_BATCHER: BatchEvaluator | None = None


def _init_worker(
    db: Database,
    fast_path: bool,
    caching: bool,
    batch: bool,
    cache_limit: CacheLimit | None = None,
    columnar_enabled: bool | None = None,
) -> None:
    """Pool initializer: build this worker's private evaluator pair.

    Runs once per worker process.  The database arrives pickled through the
    pool's init arguments (identical under ``fork`` and ``spawn`` start
    methods), so every worker evaluates against its own consistent snapshot.
    The serial ablation switches are forwarded so e.g. a ``cache=False,
    workers=4`` run really measures sharding over the uncached evaluator
    (``batch=False`` leaves the batcher ``None``); ``cache_limit`` bounds
    each worker's private store exactly as it bounds the parent's, and
    ``columnar_enabled`` pins the worker's process-wide columnar default so
    the parent's ablation setting — which travels per-context in the parent
    and therefore cannot cross the process boundary — applies inside task
    functions too (``None`` leaves the worker's own environment default).
    """
    global _WORKER_DB, _WORKER_CTX, _WORKER_BATCHER
    _WORKER_DB = db
    _WORKER_CTX = EvaluationContext(db, fast_path=fast_path, caching=caching, cache_limit=cache_limit)
    _WORKER_BATCHER = BatchEvaluator(db, _WORKER_CTX) if batch else None
    if columnar_enabled is not None:
        _columnar_module.set_default(columnar_enabled)


def worker_state() -> tuple[Database, EvaluationContext, BatchEvaluator | None]:
    """The ``(db, ctx, batcher)`` triple of the current worker process.

    ``batcher`` is ``None`` when the pool was configured with
    ``batch=False``.  Only meaningful inside a task dispatched by a
    :class:`ShardedEvaluator`; raises
    :class:`~repro.exceptions.ShardingError` elsewhere.
    """
    if _WORKER_DB is None or _WORKER_CTX is None:
        raise ShardingError("worker_state() is only available inside a sharding worker")
    return _WORKER_DB, _WORKER_CTX, _WORKER_BATCHER


# ----------------------------------------------------------------------
# deterministic shard assignment
# ----------------------------------------------------------------------
def assign_shards(keys: Iterable[Hashable], shards: int) -> list[int]:
    """A deterministic shard id for each item of ``keys``.

    Distinct keys are assigned round-robin in first-seen order, so (a) the
    assignment is a pure function of the key sequence — no salted string
    hashing, identical across processes and runs — and (b) items sharing a
    key always land on the same shard, keeping every shape group whole on
    one worker.  Round-robin over *distinct* keys balances groups, the unit
    whose materialization dominates the cost, rather than raw items.
    """
    if shards < 1:
        raise ShardingError(f"shard count must be >= 1, got {shards}")
    assignment: dict[Hashable, int] = {}
    out: list[int] = []
    for key in keys:
        shard = assignment.get(key)
        if shard is None:
            shard = assignment[key] = len(assignment) % shards
        out.append(shard)
    return out


def partition(
    items: Sequence[Any], keys: Sequence[Hashable], shards: int
) -> list[list[tuple[int, Any]]]:
    """Partition ``items`` into per-shard buckets of ``(position, item)``.

    ``keys[i]`` is the shard key of ``items[i]`` (typically the normalized
    body-shape group key).  Positions index the original sequence, so a
    caller can restore the exact serial order after the per-shard results
    come back.  Empty buckets are dropped — no task is dispatched for them.
    """
    if len(items) != len(keys):
        raise ShardingError(
            f"got {len(items)} items but {len(keys)} shard keys"
        )
    buckets: list[list[tuple[int, Any]]] = [[] for _ in range(shards)]
    for position, (item, shard) in enumerate(zip(items, assign_shards(keys, shards))):
        buckets[shard].append((position, item))
    return [bucket for bucket in buckets if bucket]


def _noop_task(payload: Any) -> Any:
    """A do-nothing task used by :meth:`ShardedEvaluator.warm_up`."""
    return payload


# ----------------------------------------------------------------------
# dispatch envelope: relation sync + telemetry merge-back
# ----------------------------------------------------------------------
#: One pending relation update: ``(name, parent generation, relation)``.
RelationSync = tuple[str, int, Any]


def _worker_counter_snapshot() -> dict[str, dict[str, int]]:
    """The current worker's cumulative cache/batch/lifecycle counters."""
    _, ctx, batcher = worker_state()
    return {
        "cache": ctx.stats.as_dict(),
        "batch": batcher.stats.as_dict() if batcher is not None else {},
        "lifecycle": ctx.store.stats_dict(),
    }


def _counter_delta(
    before: dict[str, dict[str, int]], after: dict[str, dict[str, int]]
) -> dict[str, dict[str, int]]:
    """Per-section counter difference, keeping only non-zero keys."""
    delta: dict[str, dict[str, int]] = {}
    for section, counters in after.items():
        base = before.get(section, {})
        moved = {k: v - base.get(k, 0) for k, v in counters.items() if v != base.get(k, 0)}
        if moved:
            delta[section] = moved
    return delta


def _instrumented_task(
    wrapped: tuple[list[RelationSync], Callable[[Any], Any], Any],
) -> tuple[dict[str, dict[str, int]], Any]:
    """The worker-side dispatch envelope every task runs inside.

    First applies any pending relation syncs — parent mutations shipped
    with the dispatch instead of restarting the pool.  A sync is applied
    only when its generation is newer than the worker copy's, so repeated
    shipments are idempotent; applying one bumps the worker database's own
    counters, which makes the worker's context/batcher drop exactly the
    affected entries on their next use.  Then runs the task and returns its
    result together with this worker's pid — the parent records which
    workers acknowledged each shipped relation version and stops shipping
    it once the whole pool has — and the cache/batch/lifecycle counter
    *deltas* this task produced, so the parent can aggregate worker-side
    telemetry without double counting (counters are cumulative per worker
    process).
    """
    sync, task, payload = wrapped
    db, _, _ = worker_state()
    for name, generation, relation in sync:
        if db.generation(name) < generation:
            db._sync_relation(relation, generation)
    before = _worker_counter_snapshot()
    result = task(payload)
    return os.getpid(), _counter_delta(before, _worker_counter_snapshot()), result


class ReorderBuffer:
    """Re-serialize position-tagged results arriving out of order.

    Streaming consumers of :meth:`ShardedEvaluator.imap_unordered` receive
    per-shard chunks in *completion* order, but the public contract of the
    engines is byte-identity with the serial path — answers must be emitted
    in the exact serial enumeration order.  The buffer bridges the two:
    :meth:`push` accepts ``(position, item)`` pairs in any order and
    :meth:`drain` yields the longest contiguous run starting at the next
    expected position, holding everything else back.

    Positions must form a gap-free range starting at ``start`` once all
    results have arrived; :meth:`push` rejects duplicates and positions
    already emitted.  ``len(buffer)`` is the number of items parked waiting
    for an earlier position to arrive.
    """

    __slots__ = ("_next", "_pending")

    def __init__(self, start: int = 0) -> None:
        self._next = start
        self._pending: dict[int, Any] = {}

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def next_position(self) -> int:
        """The position the buffer is waiting for."""
        return self._next

    def push(self, position: int, item: Any) -> None:
        """Park one result under its serial position."""
        if position < self._next or position in self._pending:
            raise ShardingError(
                f"position {position} was already emitted or is already buffered"
            )
        self._pending[position] = item

    def drain(self) -> Iterator[Any]:
        """Yield parked items in serial order until the next gap."""
        while self._next in self._pending:
            yield self._pending.pop(self._next)
            self._next += 1


def resolve_sharder(
    db: Database,
    workers: int,
    sharder: "ShardedEvaluator | None",
    fast_path: bool = True,
    cache: bool = True,
    batch: bool = True,
    cache_limit: CacheLimit | None = None,
    columnar_enabled: bool | None = None,
) -> tuple["ShardedEvaluator | None", bool]:
    """Resolve an engine's sharding switch: an explicit (valid, open) evaluator wins.

    Returns ``(sharder, owned)``; an owned evaluator was built here for a
    single call — configured with the caller's serial ablation switches so
    the workers evaluate exactly like the serial path would — and must be
    closed by the caller when the call finishes.  Evaluators bound to a
    different database (or already closed) are silently ignored, mirroring
    how the evaluation functions treat foreign contexts and batchers.
    ``workers=1`` resolves to ``(None, False)`` — no pool is ever spawned
    on the serial path.
    """
    if sharder is not None and sharder.applies_to(db) and sharder.active:
        return sharder, False
    if int(workers) > 1:
        return (
            ShardedEvaluator(
                db, int(workers), fast_path=fast_path, cache=cache, batch=batch,
                cache_limit=cache_limit,
                # Owned evaluators snapshot the *caller's* current columnar
                # setting (context override included) so a one-shot
                # `workers=4` call behaves like its serial counterpart.
                columnar=_columnar_module.enabled() if columnar_enabled is None else columnar_enabled,
            ),
            True,
        )
    return None, False


@dataclass
class ShardStats:
    """Counters for benchmarks, tests and debugging."""

    pool_starts: int = 0  # worker pools created (1 across reuse = pool was shared)
    dispatches: int = 0  # map() calls issued
    tasks: int = 0  # per-shard tasks shipped
    items: int = 0  # work items shipped inside those tasks
    relation_syncs: int = 0  # relation versions shipped to refresh worker snapshots

    def as_dict(self) -> dict[str, int]:
        return {
            "pool_starts": self.pool_starts,
            "dispatches": self.dispatches,
            "tasks": self.tasks,
            "items": self.items,
            "relation_syncs": self.relation_syncs,
        }


def _default_start_method() -> str:
    """``fork`` where available (cheap, no re-import), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _shutdown_pool(pool: multiprocessing.pool.Pool | None) -> None:
    """Terminate and join a pool detached from its evaluator.

    Runs with no evaluator lock held: ``terminate``/``join`` block on
    worker processes, and holding a state lock across them is exactly the
    convoy/deadlock shape REP110 rejects.  The pointer handed in was
    cleared under the lock (:meth:`ShardedEvaluator._detach_pool_locked`),
    so no other thread can dispatch to this pool anymore.
    """
    if pool is not None:
        pool.terminate()
        pool.join()


class ShardedEvaluator:
    """A persistent worker pool evaluating disjoint shape-group shards.

    Parameters
    ----------
    db:
        The database the workers evaluate against.  Each worker receives its
        own copy when the pool starts.  In-place mutations of the parent's
        database are detected through its generation counters and shipped to
        the workers incrementally: every dispatch carries the relations
        changed since the pool started (:meth:`_pending_sync`), each worker
        applies a version at most once, and the worker's own caches drop
        exactly the affected entries — no pool restart.  :meth:`reset` (the
        engine's ``invalidate_cache`` calls it) remains the explicit full
        restart, and is also taken automatically when most of the database
        changed at once.
    workers:
        Number of worker processes.  ``workers=1`` builds a degenerate
        evaluator whose :attr:`active` property is False and which never
        spawns a pool — callers fall back to their serial path.
    fast_path, cache, batch:
        Forwarded to each worker's private evaluator pair (``batch=False``
        builds no worker batcher at all), so the serial ablation switches
        compose with sharding exactly as they do serially.
    columnar:
        The columnar-kernel switch shipped to every worker, where it
        becomes the worker's process-wide default
        (:func:`repro.relational.columnar.set_default`).  ``None`` resolves
        to the parent's current setting at construction time.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it and ``spawn`` otherwise.

    The pool is created lazily on the first :meth:`map` and reused across
    calls until :meth:`close` (also invoked by ``with`` blocks and, as a
    last resort, the finalizer).  A task exception propagates to the caller
    but leaves the pool healthy, so one failing metaquery does not tear
    down the evaluator shared by subsequent calls.
    """

    def __init__(
        self,
        db: Database,
        workers: int = 2,
        fast_path: bool = True,
        cache: bool = True,
        batch: bool = True,
        start_method: str | None = None,
        cache_limit: "CacheLimit | int | tuple | None" = None,
        columnar: "bool | None" = None,
    ) -> None:
        workers = int(workers)
        if workers < 1:
            raise ShardingError(f"worker count must be >= 1, got {workers}")
        self.db = db
        self.workers = workers
        self.fast_path = fast_path
        self.cache = cache
        self.batch = batch
        self.cache_limit = CacheLimit.coerce(cache_limit)
        # Resolved at construction (None = the current default) and shipped
        # to every worker via the pool initializer, where it becomes the
        # worker's process-wide default.
        self.columnar = _columnar_module.resolve(columnar)
        self.start_method = start_method or _default_start_method()
        self.stats = ShardStats()
        #: Cumulative worker-side counter deltas merged back from completed
        #: tasks, keyed like the engine's stats sections ("cache" / "batch" /
        #: "lifecycle").  This is what fixes the ``stats()`` undercount: the
        #: workers' private contexts/batchers do the actual cache work, and
        #: without the merge the parent's counters sit near zero.
        self.worker_counters: dict[str, dict[str, int]] = {}
        self._pool: multiprocessing.pool.Pool | None = None
        self._closed = False
        # Watches mutations relative to the snapshot the *workers* hold;
        # created when the pool starts (the db is pickled then), dropped
        # with the pool.  _sync_acks records, per relation, which worker
        # pids acknowledged which shipped generation.
        self._watcher: GenerationWatcher | None = None
        self._sync_acks: dict[str, tuple[int, set[int]]] = {}
        # The async facade dispatches to one shared evaluator from worker
        # threads, so pool lifecycle and telemetry transitions take a lock.
        # The invariant REP110 enforces: the lock is released before any
        # pool call — blocking teardown works on a pointer detached under
        # the lock (_detach_pool_locked), and dispatch happens after
        # _ensure_pool returns.  Built through create_lock so
        # REPRO_SANITIZE=1 swaps in the order-checking wrapper.
        self._lock = create_lock("repro.datalog.sharding:ShardedEvaluator")

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when dispatching to this evaluator parallelizes anything."""
        return self.workers > 1 and not self._closed

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; a closed evaluator cannot dispatch."""
        return self._closed

    def applies_to(self, db: Database) -> bool:
        """True when this evaluator's workers hold (copies of) the given database."""
        return self.db is db

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        with self._lock:
            if self._pool is None:
                context = multiprocessing.get_context(self.start_method)
                self._pool = context.Pool(
                    processes=self.workers,
                    initializer=_init_worker,
                    initargs=(
                        self.db, self.fast_path, self.cache, self.batch,
                        self.cache_limit, self.columnar,
                    ),
                )
                self.stats.pool_starts += 1
                self._watcher = GenerationWatcher(self.db)
                self._sync_acks = {}
            return self._pool

    def _detach_pool_locked(self) -> multiprocessing.pool.Pool | None:
        """Take ownership of the pool pointer; caller shuts it down unlocked.

        Caller holds ``self._lock`` (the ``*_locked`` contract).  Clearing
        the pointer under the lock while terminating *after* releasing it
        is what keeps ``Pool.terminate``/``Pool.join`` — both blocking —
        out of every locked region (REP110), and lets ``_pending_sync``
        trigger a restart without re-entering the non-reentrant lock.
        """
        stale, self._pool = self._pool, None
        self._watcher = None
        self._sync_acks = {}
        return stale

    def _pending_sync(self) -> list[RelationSync]:
        """Relations mutated since the pool pickled its database snapshots.

        Shipped with each dispatch until every worker pid has acknowledged
        the version (workers apply a version at most once), so an in-place
        mutation invalidates the workers *incrementally* instead of forcing
        a pool restart; once the whole pool acknowledged everything, the
        snapshot is rebased and the probe is O(1) again.  When most of the
        database moved at once, restarting is cheaper than shipping — the
        pool is reset and the next :meth:`_ensure_pool` re-pickles current
        state.
        """
        with self._lock:
            pending, stale = self._pending_sync_locked()
        _shutdown_pool(stale)
        return pending

    def _pending_sync_locked(
        self,
    ) -> tuple[list[RelationSync], multiprocessing.pool.Pool | None]:
        """The pending-sync decision; caller holds ``self._lock``.

        Returns the syncs to ship plus a detached pool when restarting is
        the cheaper refresh — the caller terminates it after unlocking.
        """
        if self._pool is None or self._watcher is None:
            return [], None
        changed = self._watcher.peek()
        if not changed:
            return [], None
        if 2 * len(changed) > len(self.db):
            return [], self._detach_pool_locked()
        pending: list[RelationSync] = []
        for name in sorted(changed):
            generation = self.db.generation(name)
            acked = self._sync_acks.get(name)
            if acked is not None and acked[0] == generation and len(acked[1]) >= self.workers:
                continue  # every worker already applied this version
            pending.append((name, generation, self.db[name]))
        if not pending:
            # The whole pool holds every changed relation's current version:
            # rebase the snapshot so future probes stop diffing.
            self._watcher.resync()
            self._sync_acks = {}
            return [], None
        # The sync rides inside every task payload (each task may land on
        # any worker), so one dispatch pickles it once per shard.  When the
        # pending tuples rival the database itself, a restart — which
        # pickles the database once per worker and rebases immediately —
        # is the cheaper way to refresh the pool.
        if 2 * sum(len(relation) for _, _, relation in pending) > self.db.total_tuples():
            return [], self._detach_pool_locked()
        self.stats.relation_syncs += len(pending)
        return pending, None

    def _absorb(
        self,
        envelope: tuple[int, dict[str, dict[str, int]], Any],
        sync: list[RelationSync],
    ) -> Any:
        """Record one task's sync acknowledgement and counter deltas;
        return the task result."""
        pid, delta, result = envelope
        with self._lock:
            for name, generation, _ in sync:
                acked = self._sync_acks.get(name)
                if acked is None or acked[0] != generation:
                    acked = self._sync_acks[name] = (generation, set())
                acked[1].add(pid)
            for section, counters in delta.items():
                bucket = self.worker_counters.setdefault(section, {})
                for key, value in counters.items():
                    bucket[key] = bucket.get(key, 0) + value
        return result

    def map(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
        item_count: int | None = None,
    ) -> list[Any]:
        """Run ``task(payload)`` in the pool for every payload, in order.

        ``task`` must be a module-level (picklable) callable; each payload
        is typically one shard's bucket from :func:`partition`.  Results
        come back in payload order regardless of which worker finished
        first, which is what makes the caller's position-sort merge exact.
        Every task runs inside the :func:`_instrumented_task` envelope:
        pending relation syncs are applied first and the worker's counter
        deltas are merged back into :attr:`worker_counters`.

        ``item_count`` feeds the :attr:`stats` work-item counter; payload
        shapes vary by caller (bare buckets, config tuples wrapping a
        bucket), so only the caller knows how many work items a dispatch
        carries.
        """
        if not self._begin_dispatch(payloads, item_count):
            return []
        sync = self._pending_sync()
        wrapped = [(sync, task, payload) for payload in payloads]
        # chunksize=1: payloads are already shard-sized, one task per shard.
        results = self._ensure_pool().map(_instrumented_task, wrapped, chunksize=1)
        return [self._absorb(envelope, sync) for envelope in results]

    def _begin_dispatch(self, payloads: Sequence[Any], item_count: int | None) -> bool:
        """Shared dispatch preamble: closed guard + stats accounting.

        Returns False for an empty dispatch (nothing to ship, counters
        untouched), keeping :meth:`map` and :meth:`imap_unordered` in
        lockstep on what a "dispatch" means.
        """
        if self._closed:
            raise ShardingError("ShardedEvaluator is closed")
        if not payloads:
            return False
        with self._lock:
            self.stats.dispatches += 1
            self.stats.tasks += len(payloads)
            if item_count is not None:
                self.stats.items += item_count
        return True

    def imap_unordered(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
        item_count: int | None = None,
    ) -> "Iterable[Any]":
        """Like :meth:`map`, but yield each payload's result as it completes.

        The streaming twin of :meth:`map`: results arrive in *completion*
        order, so callers that need the serial order feed them through a
        :class:`ReorderBuffer` keyed by the positions embedded in the
        results.  Dispatch happens eagerly (the returned iterator is the
        pool's); abandoning it early simply discards the not-yet-consumed
        results while the pool stays healthy for subsequent calls — that is
        what makes early-stopping streams cheap.
        """
        if not self._begin_dispatch(payloads, item_count):
            return iter(())
        sync = self._pending_sync()
        wrapped = [(sync, task, payload) for payload in payloads]
        inner = self._ensure_pool().imap_unordered(_instrumented_task, wrapped, chunksize=1)
        return (self._absorb(envelope, sync) for envelope in inner)

    def warm_up(self) -> None:
        """Start the pool (if needed) and wait until it answers a no-op task.

        Benchmarks call this so pool start-up — a one-time deployment cost
        for a persistent engine — is excluded from per-metaquery timings
        without letting warm worker *caches* leak between repeats (pair
        with :meth:`reset`, which drops pool and caches together).
        """
        if self._closed:
            raise ShardingError("ShardedEvaluator is closed")
        sync = self._pending_sync()
        for envelope in self._ensure_pool().map(_instrumented_task, [(sync, _noop_task, None)]):
            self._absorb(envelope, sync)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard the pool (and the workers' database snapshots and caches).

        The evaluator stays usable: the next :meth:`map` starts a fresh pool
        against the database's current state.  This is the sharded analogue
        of :meth:`EvaluationContext.clear` after an in-place mutation.
        """
        with self._lock:
            stale = self._detach_pool_locked()
        _shutdown_pool(stale)

    def close(self) -> None:
        """Release the worker pool permanently.  Idempotent."""
        with self._lock:
            stale = self._detach_pool_locked()
            self._closed = True
        _shutdown_pool(stale)

    def __enter__(self) -> "ShardedEvaluator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Close on normal exit *and* on exceptions: a crashed mining run
        # must not leave worker processes behind.
        self.close()

    def __del__(self) -> None:  # pragma: no cover - finalizer timing varies
        try:
            self.close()
        except Exception:  # repro-lint: disable=no-silent-except
            # Interpreter-shutdown finalizer: modules may already be torn
            # down, and raising from __del__ only prints noise to stderr.
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("idle" if self._pool is None else "pooled")
        return (
            f"ShardedEvaluator(db={self.db.name!r}, workers={self.workers}, "
            f"{state}, stats={self.stats.as_dict()})"
        )
