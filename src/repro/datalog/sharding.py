"""Shard batched shape-groups across a ``multiprocessing`` worker pool.

PR 2's :class:`~repro.datalog.batching.BatchEvaluator` reduced metaquery
evaluation to many *shape groups*: instantiations sharing a normalized body
shape are answered from one materialized canonical join.  Groups are the
natural unit of distribution — the group key (a tuple of
:data:`~repro.datalog.context.AtomKey`) is picklable, and each group's
materialization touches only the database, never another group's caches.

This module distributes whole groups across a pool of worker processes:

* :func:`assign_shards` / :func:`partition` deterministically map group
  keys to shard ids (distinct keys round-robin in first-seen order, so the
  same inputs always produce the same placement and members of one group
  always land on the same worker, preserving batching's share-one-join
  property within each shard);
* each worker process owns a private
  :class:`~repro.datalog.batching.BatchEvaluator` /
  :class:`~repro.datalog.context.EvaluationContext` pair, built once per
  pool by the initializer — there are **no shared mutable caches**, so no
  locks and no cross-process invalidation protocol;
* :class:`ShardedEvaluator` owns the pool (created lazily, reused across
  calls, released by :meth:`ShardedEvaluator.close` or a ``with`` block)
  and runs picklable task callables over per-shard payloads, returning
  results in payload order (:meth:`ShardedEvaluator.map`) or in completion
  order (:meth:`ShardedEvaluator.imap_unordered`, the streaming twin);
* :class:`ReorderBuffer` re-serializes completion-order results back into
  the exact serial emission order, which is how the streaming entry points
  (``PreparedMetaquery.stream``) emit answers incrementally while staying
  byte-identical to the materialized path.

Determinism contract: callers tag every work item with its position in the
serial enumeration order, shard by group key, and re-assemble results by
position (a stable sort by instantiation key).  Because every index value
is an exact :class:`~fractions.Fraction` and the instantiations themselves
are enumerated once in the parent (type-2 padding counters included), the
merged answers are **byte-identical** to the serial path's for any worker
count — the property the shard-ablation benchmark and the sharding property
tests assert.

The engine-facing entry points live with their engines
(:mod:`repro.core.naive` ships index-evaluation and first-hit tasks,
:mod:`repro.core.findrules` ships whole first-level search branches); this
module only provides the pool plumbing plus :func:`worker_state`, the
accessor those task functions use to reach the worker-local evaluator pair.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.datalog.batching import BatchEvaluator
from repro.datalog.context import EvaluationContext
from repro.exceptions import ShardingError
from repro.relational.database import Database

# ----------------------------------------------------------------------
# worker-process state
# ----------------------------------------------------------------------
# Populated by _init_worker inside each pool process.  Parent processes
# never touch these; worker task functions reach them via worker_state().
_WORKER_DB: Database | None = None
_WORKER_CTX: EvaluationContext | None = None
_WORKER_BATCHER: BatchEvaluator | None = None


def _init_worker(db: Database, fast_path: bool, caching: bool, batch: bool) -> None:
    """Pool initializer: build this worker's private evaluator pair.

    Runs once per worker process.  The database arrives pickled through the
    pool's init arguments (identical under ``fork`` and ``spawn`` start
    methods), so every worker evaluates against its own consistent snapshot.
    The three serial ablation switches are forwarded so e.g. a
    ``cache=False, workers=4`` run really measures sharding over the
    uncached evaluator (``batch=False`` leaves the batcher ``None``).
    """
    global _WORKER_DB, _WORKER_CTX, _WORKER_BATCHER
    _WORKER_DB = db
    _WORKER_CTX = EvaluationContext(db, fast_path=fast_path, caching=caching)
    _WORKER_BATCHER = BatchEvaluator(db, _WORKER_CTX) if batch else None


def worker_state() -> tuple[Database, EvaluationContext, BatchEvaluator | None]:
    """The ``(db, ctx, batcher)`` triple of the current worker process.

    ``batcher`` is ``None`` when the pool was configured with
    ``batch=False``.  Only meaningful inside a task dispatched by a
    :class:`ShardedEvaluator`; raises
    :class:`~repro.exceptions.ShardingError` elsewhere.
    """
    if _WORKER_DB is None or _WORKER_CTX is None:
        raise ShardingError("worker_state() is only available inside a sharding worker")
    return _WORKER_DB, _WORKER_CTX, _WORKER_BATCHER


# ----------------------------------------------------------------------
# deterministic shard assignment
# ----------------------------------------------------------------------
def assign_shards(keys: Iterable[Hashable], shards: int) -> list[int]:
    """A deterministic shard id for each item of ``keys``.

    Distinct keys are assigned round-robin in first-seen order, so (a) the
    assignment is a pure function of the key sequence — no salted string
    hashing, identical across processes and runs — and (b) items sharing a
    key always land on the same shard, keeping every shape group whole on
    one worker.  Round-robin over *distinct* keys balances groups, the unit
    whose materialization dominates the cost, rather than raw items.
    """
    if shards < 1:
        raise ShardingError(f"shard count must be >= 1, got {shards}")
    assignment: dict[Hashable, int] = {}
    out: list[int] = []
    for key in keys:
        shard = assignment.get(key)
        if shard is None:
            shard = assignment[key] = len(assignment) % shards
        out.append(shard)
    return out


def partition(
    items: Sequence[Any], keys: Sequence[Hashable], shards: int
) -> list[list[tuple[int, Any]]]:
    """Partition ``items`` into per-shard buckets of ``(position, item)``.

    ``keys[i]`` is the shard key of ``items[i]`` (typically the normalized
    body-shape group key).  Positions index the original sequence, so a
    caller can restore the exact serial order after the per-shard results
    come back.  Empty buckets are dropped — no task is dispatched for them.
    """
    if len(items) != len(keys):
        raise ShardingError(
            f"got {len(items)} items but {len(keys)} shard keys"
        )
    buckets: list[list[tuple[int, Any]]] = [[] for _ in range(shards)]
    for position, (item, shard) in enumerate(zip(items, assign_shards(keys, shards))):
        buckets[shard].append((position, item))
    return [bucket for bucket in buckets if bucket]


def _noop_task(payload: Any) -> Any:
    """A do-nothing task used by :meth:`ShardedEvaluator.warm_up`."""
    return payload


class ReorderBuffer:
    """Re-serialize position-tagged results arriving out of order.

    Streaming consumers of :meth:`ShardedEvaluator.imap_unordered` receive
    per-shard chunks in *completion* order, but the public contract of the
    engines is byte-identity with the serial path — answers must be emitted
    in the exact serial enumeration order.  The buffer bridges the two:
    :meth:`push` accepts ``(position, item)`` pairs in any order and
    :meth:`drain` yields the longest contiguous run starting at the next
    expected position, holding everything else back.

    Positions must form a gap-free range starting at ``start`` once all
    results have arrived; :meth:`push` rejects duplicates and positions
    already emitted.  ``len(buffer)`` is the number of items parked waiting
    for an earlier position to arrive.
    """

    __slots__ = ("_next", "_pending")

    def __init__(self, start: int = 0) -> None:
        self._next = start
        self._pending: dict[int, Any] = {}

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def next_position(self) -> int:
        """The position the buffer is waiting for."""
        return self._next

    def push(self, position: int, item: Any) -> None:
        """Park one result under its serial position."""
        if position < self._next or position in self._pending:
            raise ShardingError(
                f"position {position} was already emitted or is already buffered"
            )
        self._pending[position] = item

    def drain(self):
        """Yield parked items in serial order until the next gap."""
        while self._next in self._pending:
            yield self._pending.pop(self._next)
            self._next += 1


def resolve_sharder(
    db: Database,
    workers: int,
    sharder: "ShardedEvaluator | None",
    fast_path: bool = True,
    cache: bool = True,
    batch: bool = True,
) -> tuple["ShardedEvaluator | None", bool]:
    """Resolve an engine's sharding switch: an explicit (valid, open) evaluator wins.

    Returns ``(sharder, owned)``; an owned evaluator was built here for a
    single call — configured with the caller's serial ablation switches so
    the workers evaluate exactly like the serial path would — and must be
    closed by the caller when the call finishes.  Evaluators bound to a
    different database (or already closed) are silently ignored, mirroring
    how the evaluation functions treat foreign contexts and batchers.
    ``workers=1`` resolves to ``(None, False)`` — no pool is ever spawned
    on the serial path.
    """
    if sharder is not None and sharder.applies_to(db) and sharder.active:
        return sharder, False
    if int(workers) > 1:
        return (
            ShardedEvaluator(
                db, int(workers), fast_path=fast_path, cache=cache, batch=batch
            ),
            True,
        )
    return None, False


@dataclass
class ShardStats:
    """Counters for benchmarks, tests and debugging."""

    pool_starts: int = 0  # worker pools created (1 across reuse = pool was shared)
    dispatches: int = 0  # map() calls issued
    tasks: int = 0  # per-shard tasks shipped
    items: int = 0  # work items shipped inside those tasks

    def as_dict(self) -> dict[str, int]:
        return {
            "pool_starts": self.pool_starts,
            "dispatches": self.dispatches,
            "tasks": self.tasks,
            "items": self.items,
        }


def _default_start_method() -> str:
    """``fork`` where available (cheap, no re-import), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardedEvaluator:
    """A persistent worker pool evaluating disjoint shape-group shards.

    Parameters
    ----------
    db:
        The database the workers evaluate against.  Each worker receives its
        own copy when the pool starts; mutate the parent's database in place
        and the copies go stale — call :meth:`reset` (the engine's
        ``invalidate_cache`` does) to restart the pool against fresh state.
    workers:
        Number of worker processes.  ``workers=1`` builds a degenerate
        evaluator whose :attr:`active` property is False and which never
        spawns a pool — callers fall back to their serial path.
    fast_path, cache, batch:
        Forwarded to each worker's private evaluator pair (``batch=False``
        builds no worker batcher at all), so the serial ablation switches
        compose with sharding exactly as they do serially.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it and ``spawn`` otherwise.

    The pool is created lazily on the first :meth:`map` and reused across
    calls until :meth:`close` (also invoked by ``with`` blocks and, as a
    last resort, the finalizer).  A task exception propagates to the caller
    but leaves the pool healthy, so one failing metaquery does not tear
    down the evaluator shared by subsequent calls.
    """

    def __init__(
        self,
        db: Database,
        workers: int = 2,
        fast_path: bool = True,
        cache: bool = True,
        batch: bool = True,
        start_method: str | None = None,
    ) -> None:
        workers = int(workers)
        if workers < 1:
            raise ShardingError(f"worker count must be >= 1, got {workers}")
        self.db = db
        self.workers = workers
        self.fast_path = fast_path
        self.cache = cache
        self.batch = batch
        self.start_method = start_method or _default_start_method()
        self.stats = ShardStats()
        self._pool: multiprocessing.pool.Pool | None = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when dispatching to this evaluator parallelizes anything."""
        return self.workers > 1 and not self._closed

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; a closed evaluator cannot dispatch."""
        return self._closed

    def applies_to(self, db: Database) -> bool:
        """True when this evaluator's workers hold (copies of) the given database."""
        return self.db is db

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.db, self.fast_path, self.cache, self.batch),
            )
            self.stats.pool_starts += 1
        return self._pool

    def map(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
        item_count: int | None = None,
    ) -> list[Any]:
        """Run ``task(payload)`` in the pool for every payload, in order.

        ``task`` must be a module-level (picklable) callable; each payload
        is typically one shard's bucket from :func:`partition`.  Results
        come back in payload order regardless of which worker finished
        first, which is what makes the caller's position-sort merge exact.

        ``item_count`` feeds the :attr:`stats` work-item counter; payload
        shapes vary by caller (bare buckets, config tuples wrapping a
        bucket), so only the caller knows how many work items a dispatch
        carries.
        """
        if not self._begin_dispatch(payloads, item_count):
            return []
        # chunksize=1: payloads are already shard-sized, one task per shard.
        return self._ensure_pool().map(task, payloads, chunksize=1)

    def _begin_dispatch(self, payloads: Sequence[Any], item_count: int | None) -> bool:
        """Shared dispatch preamble: closed guard + stats accounting.

        Returns False for an empty dispatch (nothing to ship, counters
        untouched), keeping :meth:`map` and :meth:`imap_unordered` in
        lockstep on what a "dispatch" means.
        """
        if self._closed:
            raise ShardingError("ShardedEvaluator is closed")
        if not payloads:
            return False
        self.stats.dispatches += 1
        self.stats.tasks += len(payloads)
        if item_count is not None:
            self.stats.items += item_count
        return True

    def imap_unordered(
        self,
        task: Callable[[Any], Any],
        payloads: Sequence[Any],
        item_count: int | None = None,
    ) -> "Iterable[Any]":
        """Like :meth:`map`, but yield each payload's result as it completes.

        The streaming twin of :meth:`map`: results arrive in *completion*
        order, so callers that need the serial order feed them through a
        :class:`ReorderBuffer` keyed by the positions embedded in the
        results.  Dispatch happens eagerly (the returned iterator is the
        pool's); abandoning it early simply discards the not-yet-consumed
        results while the pool stays healthy for subsequent calls — that is
        what makes early-stopping streams cheap.
        """
        if not self._begin_dispatch(payloads, item_count):
            return iter(())
        return self._ensure_pool().imap_unordered(task, payloads, chunksize=1)

    def warm_up(self) -> None:
        """Start the pool (if needed) and wait until it answers a no-op task.

        Benchmarks call this so pool start-up — a one-time deployment cost
        for a persistent engine — is excluded from per-metaquery timings
        without letting warm worker *caches* leak between repeats (pair
        with :meth:`reset`, which drops pool and caches together).
        """
        if self._closed:
            raise ShardingError("ShardedEvaluator is closed")
        self._ensure_pool().map(_noop_task, [None])

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard the pool (and the workers' database snapshots and caches).

        The evaluator stays usable: the next :meth:`map` starts a fresh pool
        against the database's current state.  This is the sharded analogue
        of :meth:`EvaluationContext.clear` after an in-place mutation.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def close(self) -> None:
        """Release the worker pool permanently.  Idempotent."""
        self.reset()
        self._closed = True

    def __enter__(self) -> "ShardedEvaluator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Close on normal exit *and* on exceptions: a crashed mining run
        # must not leave worker processes behind.
        self.close()

    def __del__(self) -> None:  # pragma: no cover - finalizer timing varies
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("idle" if self._pool is None else "pooled")
        return (
            f"ShardedEvaluator(db={self.db.name!r}, workers={self.workers}, "
            f"{state}, stats={self.stats.as_dict()})"
        )
