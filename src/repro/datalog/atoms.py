"""Atoms: a predicate name applied to a list of terms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.datalog.terms import Constant, Term, Variable, term
from repro.exceptions import DatalogError

__all__ = ["Atom", "variables_of"]


@dataclass(frozen=True)
class Atom:
    """An atom ``p(t1, ..., tk)`` over first-order terms.

    In the paper's terminology (Section 2.1), an atom is a literal scheme
    whose predicate symbol is an ordinary relation name (as opposed to a
    relation pattern, whose predicate symbol is a second-order variable).
    """

    predicate: str
    terms: tuple[Term, ...]

    def __init__(self, predicate: str, terms: Sequence[Any]) -> None:
        if not predicate:
            raise DatalogError("atom predicate name must be non-empty")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(term(t) for t in terms))

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.terms)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """The distinct variables of the atom, in first-occurrence order."""
        seen: list[Variable] = []
        for t in self.terms:
            if isinstance(t, Variable) and t not in seen:
                seen.append(t)
        return tuple(seen)

    @property
    def constants(self) -> tuple[Constant, ...]:
        """The distinct constants of the atom, in first-occurrence order."""
        seen: list[Constant] = []
        for t in self.terms:
            if isinstance(t, Constant) and t not in seen:
                seen.append(t)
        return tuple(seen)

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return all(t.is_constant for t in self.terms)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution to the atom's variables."""
        new_terms = [mapping.get(t, t) if isinstance(t, Variable) else t for t in self.terms]
        return Atom(self.predicate, new_terms)

    def ground(self, mapping: Mapping[Variable, Any]) -> "Atom":
        """Ground the atom: every variable must be mapped to a value."""
        new_terms: list[Term] = []
        for t in self.terms:
            if isinstance(t, Variable):
                if t not in mapping:
                    raise DatalogError(f"grounding is missing a value for variable {t}")
                value = mapping[t]
                new_terms.append(value if isinstance(value, Term) else Constant(value))
            else:
                new_terms.append(t)
        return Atom(self.predicate, new_terms)

    def rename_variables(self, mapping: Mapping[Variable, Variable]) -> "Atom":
        """Rename variables (a special case of :meth:`substitute`)."""
        return self.substitute(mapping)

    def as_row(self) -> tuple[Any, ...]:
        """For a ground atom, the tuple of constant values."""
        if not self.is_ground():
            raise DatalogError(f"atom {self} is not ground")
        return tuple(t.value for t in self.terms)  # type: ignore[union-attr]

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Atom({self!s})"


def variables_of(atoms: Iterable[Atom]) -> tuple[Variable, ...]:
    """Distinct variables of a collection of atoms, in first-occurrence order.

    This is the paper's ``att(R)`` operator for a set of atoms ``R``
    (Section 2.2): the set of all variables of all atoms in ``R``.
    """
    seen: list[Variable] = []
    for atom in atoms:
        for variable in atom.variables:
            if variable not in seen:
                seen.append(variable)
    return tuple(seen)
