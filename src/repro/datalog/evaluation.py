"""Evaluation of conjunctive queries over a relational database.

The central operator is :func:`atom_relation`, which turns an atom into a
relation over its *variables* (applying equality selections for repeated
variables and constants), and :func:`join_atoms`, which computes the paper's
``J(R)`` — the natural join of the relations corresponding to a set of atoms
(Section 2.2).  The columns of ``J(R)`` are exactly ``att(R)``, the distinct
variables of the atom set (in first-occurrence order), so ``|J(R)|`` counts
satisfying substitutions for those variables.

Every evaluation function accepts an optional
:class:`~repro.datalog.context.EvaluationContext` that memoizes atom
relations and joins across calls, and ``join_atoms`` takes an acyclicity
fast path — when the atom set's hypergraph is acyclic, the join is computed
by the Yannakakis full-reducer pipeline instead of the greedy left-deep
join, keeping intermediate results bounded by input plus output size.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.datalog.atoms import Atom, variables_of
from repro.datalog.rules import ConjunctiveQuery
from repro.datalog.terms import Constant, Variable
from repro.exceptions import DatalogError, UnknownRelationError
from repro.hypergraph.jointree import join_tree_for_variable_sets
from repro.hypergraph.semijoin import yannakakis_join
from repro.relational import columnar
from repro.relational.algebra import natural_join_all
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

__all__ = [
    "atom_relation",
    "join_atoms",
    "evaluate_query",
    "substitutions",
    "is_satisfiable",
    "ground_atom_holds",
    "ground_instance_holds",
    "project_join_onto",
    "query_answers",
    "apply_substitution_to_query",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.datalog.context import EvaluationContext


def _usable(ctx: "EvaluationContext | None", db: Database) -> "EvaluationContext | None":
    """The context if it is valid for ``db``, else None (silent bypass)."""
    if ctx is not None and ctx.applies_to(db):
        return ctx
    return None


def atom_relation(atom: Atom, db: Database, ctx: "EvaluationContext | None" = None) -> Relation:
    """The relation over ``atom``'s variables induced by the database.

    For an atom ``p(X, a, X)`` the result is the projection onto the distinct
    variables (here ``X``) of the tuples of ``p`` whose second column is the
    constant ``a`` and whose first and third column agree.

    For a fully ground atom the result is a zero-column relation that is
    non-empty iff the corresponding tuple is in the database (a boolean).
    """
    usable = _usable(ctx, db)
    if usable is not None:
        return usable.atom_relation(atom, lambda a: _atom_relation_direct(a, db))
    return _atom_relation_direct(atom, db)


def _atom_relation_direct(atom: Atom, db: Database) -> Relation:
    relation = db[atom.predicate]
    if relation.arity != atom.arity:
        raise DatalogError(
            f"atom {atom} has arity {atom.arity}, relation {atom.predicate!r} "
            f"has arity {relation.arity}"
        )
    var_first_pos: dict[Variable, int] = {}
    keep_positions: list[int] = []
    keep_names: list[str] = []
    for pos, t in enumerate(atom.terms):
        if isinstance(t, Variable) and t not in var_first_pos:
            var_first_pos[t] = pos
            keep_positions.append(pos)
            keep_names.append(t.name)
    schema = RelationSchema(f"[{atom}]", keep_names)

    if relation._kernels_apply():
        # Vectorized path: one fused constants + repeated-variable filter
        # plus first-occurrence projection over the encoded columns.  The
        # kept positions and the filters together determine the whole
        # input row, so the kernel output needs no deduplication.
        constants: list[tuple[int, object]] = []
        repeats: list[tuple[int, int]] = []
        for pos, t in enumerate(atom.terms):
            if isinstance(t, Constant):
                constants.append((pos, t.value))
            else:
                first = var_first_pos[t]
                if pos != first:
                    repeats.append((pos, first))
        store = columnar.atom_select_store(
            relation._ensure_columnar(db.dictionary),
            constants,
            repeats,
            keep_positions,
        )
        return Relation._from_columnar(schema, store)

    rows = []
    for row in relation:
        ok = True
        for pos, t in enumerate(atom.terms):
            if isinstance(t, Constant):
                if row[pos] != t.value:
                    ok = False
                    break
            else:
                first = var_first_pos[t]
                if row[pos] != row[first]:
                    ok = False
                    break
        if ok:
            rows.append(tuple(row[p] for p in keep_positions))
    return Relation._from_frozen(schema, frozenset(rows))


def _acyclic_join(atoms: Sequence[Atom], relations: Sequence[Relation]) -> Relation | None:
    """Join via the Yannakakis full reducer, or None when the set is cyclic.

    The hypergraph has one edge per atom (labelled by position, so repeated
    variable sets stay distinct) over the atoms' variable names.  Ground
    atoms contribute empty edges; the machinery treats them as isolated
    components, and their zero-column relations act as booleans in the
    semijoins and joins — exactly the paper's semantics.
    """
    edges = {i: frozenset(v.name for v in atom.variables) for i, atom in enumerate(atoms)}
    tree = join_tree_for_variable_sets(edges)
    if tree is None:
        return None
    return yannakakis_join(tree, {i: relations[i] for i in range(len(relations))})


def join_atoms(
    atoms: Iterable[Atom],
    db: Database,
    ctx: "EvaluationContext | None" = None,
    fast_path: bool | None = None,
) -> Relation:
    """``J(R)``: the natural join of the atom relations of ``atoms``.

    The result's columns are the distinct variable names of the atom set in
    first-occurrence order.  An empty atom collection is rejected (the paper
    never joins zero atoms).

    ``fast_path`` controls the acyclic Yannakakis pipeline; ``None`` defers
    to the context (default on).
    """
    atoms = list(atoms)
    if not atoms:
        raise DatalogError("join_atoms requires at least one atom")
    usable = _usable(ctx, db)
    if fast_path is None:
        fast_path = usable.fast_path if usable is not None else True
    if usable is not None:
        return usable.join_atoms(atoms, lambda: _join_atoms_direct(atoms, db, usable, fast_path))
    return _join_atoms_direct(atoms, db, None, fast_path)


def _join_atoms_direct(
    atoms: Sequence[Atom],
    db: Database,
    ctx: "EvaluationContext | None",
    fast_path: bool,
) -> Relation:
    relations = [atom_relation(atom, db, ctx) for atom in atoms]
    joined: Relation | None = None
    if fast_path and len(relations) > 1:
        joined = _acyclic_join(atoms, relations)
    if joined is None:
        joined = natural_join_all(relations)
    wanted = tuple(v.name for v in variables_of(atoms))
    if joined.columns != wanted:
        joined = joined.project(wanted)
    return joined


def evaluate_query(
    query: ConjunctiveQuery, db: Database, ctx: "EvaluationContext | None" = None
) -> Relation:
    """Evaluate a conjunctive query, returning the relation over its variables."""
    return join_atoms(query.atoms, db, ctx)


def substitutions(
    query: ConjunctiveQuery, db: Database, ctx: "EvaluationContext | None" = None
) -> Iterator[dict[Variable, object]]:
    """Iterate over satisfying substitutions of the query's variables.

    Each substitution is a ``{Variable: value}`` dict covering every variable
    of the query.  The order of iteration is unspecified but deterministic
    for a fixed database.
    """
    result = evaluate_query(query, db, ctx)
    variables = [Variable(name) for name in result.columns]
    for row in result.to_rows():
        yield dict(zip(variables, row))


def is_satisfiable(
    query: ConjunctiveQuery, db: Database, ctx: "EvaluationContext | None" = None
) -> bool:
    """The Boolean Conjunctive Query problem (Definition 3.2).

    True iff there exists a substitution making every atom a database fact.
    """
    return not evaluate_query(query, db, ctx).is_empty()


def ground_atom_holds(atom: Atom, db: Database) -> bool:
    """True when a ground atom's tuple belongs to the corresponding relation."""
    if not atom.is_ground():
        raise DatalogError(f"atom {atom} is not ground")
    try:
        relation = db[atom.predicate]
    except UnknownRelationError:
        return False
    if relation.arity != atom.arity:
        return False
    return atom.as_row() in relation


def ground_instance_holds(atoms: Sequence[Atom], db: Database) -> bool:
    """True when every ground atom of the sequence is a database fact.

    This is the "ground instance ... satisfied in DB" notion used by
    certifying sets (Definition 3.19).
    """
    return all(ground_atom_holds(atom, db) for atom in atoms)


def project_join_onto(
    atoms: Sequence[Atom],
    onto: Sequence[Atom],
    db: Database,
    ctx: "EvaluationContext | None" = None,
) -> Relation:
    """``π_att(onto)(J(atoms))`` restricted to the variables of ``onto``.

    Only variables of ``onto`` that actually occur in ``atoms`` are kept; any
    other variable of ``onto`` cannot constrain the join.
    """
    joined = join_atoms(atoms, db, ctx)
    wanted = [v.name for v in variables_of(onto) if v.name in joined.columns]
    return joined.project(wanted)


def query_answers(
    query: ConjunctiveQuery,
    db: Database,
    answer_variables: Sequence[Variable] | None = None,
    ctx: "EvaluationContext | None" = None,
) -> Relation:
    """Evaluate a query and project onto the requested answer variables.

    When ``answer_variables`` is None the full variable set is returned
    (i.e. the same as :func:`evaluate_query`).
    """
    result = evaluate_query(query, db, ctx)
    if answer_variables is None:
        return result
    names = [v.name for v in answer_variables]
    missing = [n for n in names if n not in result.columns]
    if missing:
        raise DatalogError(f"answer variables {missing} do not occur in the query")
    return result.project(names)


def apply_substitution_to_query(
    query: ConjunctiveQuery, substitution: Mapping[Variable, object]
) -> ConjunctiveQuery:
    """Ground (part of) a query using a ``{Variable: value}`` mapping."""
    mapping = {
        var: (value if isinstance(value, (Variable, Constant)) else Constant(value))
        for var, value in substitution.items()
    }
    return query.substitute(mapping)
