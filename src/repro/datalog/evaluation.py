"""Evaluation of conjunctive queries over a relational database.

The central operator is :func:`atom_relation`, which turns an atom into a
relation over its *variables* (applying equality selections for repeated
variables and constants), and :func:`join_atoms`, which computes the paper's
``J(R)`` — the natural join of the relations corresponding to a set of atoms
(Section 2.2).  The columns of ``J(R)`` are exactly ``att(R)``, the distinct
variables of the atom set, so ``|J(R)|`` counts satisfying substitutions for
those variables.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.datalog.atoms import Atom, variables_of
from repro.datalog.rules import ConjunctiveQuery
from repro.datalog.terms import Constant, Variable
from repro.exceptions import DatalogError, UnknownRelationError
from repro.relational.algebra import natural_join_all
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def atom_relation(atom: Atom, db: Database) -> Relation:
    """The relation over ``atom``'s variables induced by the database.

    For an atom ``p(X, a, X)`` the result is the projection onto the distinct
    variables (here ``X``) of the tuples of ``p`` whose second column is the
    constant ``a`` and whose first and third column agree.

    For a fully ground atom the result is a zero-column relation that is
    non-empty iff the corresponding tuple is in the database (a boolean).
    """
    relation = db[atom.predicate]
    if relation.arity != atom.arity:
        raise DatalogError(
            f"atom {atom} has arity {atom.arity}, relation {atom.predicate!r} "
            f"has arity {relation.arity}"
        )
    var_first_pos: dict[Variable, int] = {}
    keep_positions: list[int] = []
    keep_names: list[str] = []
    for pos, t in enumerate(atom.terms):
        if isinstance(t, Variable) and t not in var_first_pos:
            var_first_pos[t] = pos
            keep_positions.append(pos)
            keep_names.append(t.name)

    rows = []
    for row in relation:
        ok = True
        for pos, t in enumerate(atom.terms):
            if isinstance(t, Constant):
                if row[pos] != t.value:
                    ok = False
                    break
            else:
                first = var_first_pos[t]
                if row[pos] != row[first]:
                    ok = False
                    break
        if ok:
            rows.append(tuple(row[p] for p in keep_positions))
    schema = RelationSchema(f"[{atom}]", keep_names)
    return Relation(schema, rows)


def join_atoms(atoms: Iterable[Atom], db: Database) -> Relation:
    """``J(R)``: the natural join of the atom relations of ``atoms``.

    The result's columns are the distinct variable names of the atom set.
    An empty atom collection is rejected (the paper never joins zero atoms).
    """
    atoms = list(atoms)
    if not atoms:
        raise DatalogError("join_atoms requires at least one atom")
    return natural_join_all([atom_relation(atom, db) for atom in atoms])


def evaluate_query(query: ConjunctiveQuery, db: Database) -> Relation:
    """Evaluate a conjunctive query, returning the relation over its variables."""
    return join_atoms(query.atoms, db)


def substitutions(query: ConjunctiveQuery, db: Database) -> Iterator[dict[Variable, object]]:
    """Iterate over satisfying substitutions of the query's variables.

    Each substitution is a ``{Variable: value}`` dict covering every variable
    of the query.  The order of iteration is unspecified but deterministic
    for a fixed database.
    """
    result = evaluate_query(query, db)
    variables = [Variable(name) for name in result.columns]
    for row in result.to_rows():
        yield dict(zip(variables, row))


def is_satisfiable(query: ConjunctiveQuery, db: Database) -> bool:
    """The Boolean Conjunctive Query problem (Definition 3.2).

    True iff there exists a substitution making every atom a database fact.
    """
    return not evaluate_query(query, db).is_empty()


def ground_atom_holds(atom: Atom, db: Database) -> bool:
    """True when a ground atom's tuple belongs to the corresponding relation."""
    if not atom.is_ground():
        raise DatalogError(f"atom {atom} is not ground")
    try:
        relation = db[atom.predicate]
    except UnknownRelationError:
        return False
    if relation.arity != atom.arity:
        return False
    return atom.as_row() in relation


def ground_instance_holds(atoms: Sequence[Atom], db: Database) -> bool:
    """True when every ground atom of the sequence is a database fact.

    This is the "ground instance ... satisfied in DB" notion used by
    certifying sets (Definition 3.19).
    """
    return all(ground_atom_holds(atom, db) for atom in atoms)


def project_join_onto(atoms: Sequence[Atom], onto: Sequence[Atom], db: Database) -> Relation:
    """``π_att(onto)(J(atoms))`` restricted to the variables of ``onto``.

    Only variables of ``onto`` that actually occur in ``atoms`` are kept; any
    other variable of ``onto`` cannot constrain the join.
    """
    joined = join_atoms(atoms, db)
    wanted = [v.name for v in variables_of(onto) if v.name in joined.columns]
    return joined.project(wanted)


def query_answers(
    query: ConjunctiveQuery,
    db: Database,
    answer_variables: Sequence[Variable] | None = None,
) -> Relation:
    """Evaluate a query and project onto the requested answer variables.

    When ``answer_variables`` is None the full variable set is returned
    (i.e. the same as :func:`evaluate_query`).
    """
    result = evaluate_query(query, db)
    if answer_variables is None:
        return result
    names = [v.name for v in answer_variables]
    missing = [n for n in names if n not in result.columns]
    if missing:
        raise DatalogError(f"answer variables {missing} do not occur in the query")
    return result.project(names)


def apply_substitution_to_query(
    query: ConjunctiveQuery, substitution: Mapping[Variable, object]
) -> ConjunctiveQuery:
    """Ground (part of) a query using a ``{Variable: value}`` mapping."""
    mapping = {
        var: (value if isinstance(value, (Variable, Constant)) else Constant(value))
        for var, value in substitution.items()
    }
    return query.substitute(mapping)
