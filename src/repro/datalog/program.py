"""Semi-naive evaluation of Datalog programs.

The paper positions metaquerying inside deductive-database technology (its
answers are ordinary Datalog rules); this module rounds out the substrate
with a fixpoint evaluator so discovered rules can actually be *applied* to a
database — e.g. the view-reengineering example materialises the head relation
implied by a mined rule.

Only positive (negation-free) programs are supported, which is all the paper
needs.  Evaluation uses the standard semi-naive algorithm: each iteration
joins delta relations with the full relations to derive new facts until a
fixpoint is reached.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.datalog.atoms import Atom
from repro.datalog.evaluation import join_atoms
from repro.datalog.rules import HornRule
from repro.datalog.terms import Constant, Variable
from repro.exceptions import DatalogError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

__all__ = ["DatalogProgram", "transitive_closure_program"]


class DatalogProgram:
    """A set of positive Horn rules evaluated to a least fixpoint.

    Parameters
    ----------
    rules:
        The program rules.  Every rule must be range-restricted (each head
        variable occurs in the body), the usual Datalog safety condition.
    """

    def __init__(self, rules: Iterable[HornRule]) -> None:
        self.rules = tuple(rules)
        for rule in self.rules:
            if not rule.is_range_restricted():
                raise DatalogError(f"rule {rule} is not range-restricted (unsafe)")

    @property
    def idb_predicates(self) -> tuple[str, ...]:
        """Predicates defined by some rule head (the intensional predicates)."""
        seen: list[str] = []
        for rule in self.rules:
            if rule.head.predicate not in seen:
                seen.append(rule.head.predicate)
        return tuple(seen)

    @property
    def edb_predicates(self) -> tuple[str, ...]:
        """Predicates appearing only in rule bodies (the extensional predicates)."""
        idb = set(self.idb_predicates)
        seen: list[str] = []
        for rule in self.rules:
            for atom in rule.body:
                if atom.predicate not in idb and atom.predicate not in seen:
                    seen.append(atom.predicate)
        return tuple(seen)

    def _head_arities(self) -> Mapping[str, int]:
        arities: dict[str, int] = {}
        for rule in self.rules:
            arity = rule.head.arity
            existing = arities.get(rule.head.predicate)
            if existing is not None and existing != arity:
                raise DatalogError(
                    f"predicate {rule.head.predicate!r} used with arities {existing} and {arity}"
                )
            arities[rule.head.predicate] = arity
        return arities

    def _derive_once(self, rule: HornRule, db: Database) -> set[tuple]:
        """All head tuples derivable by a single application of ``rule``."""
        for atom in rule.body:
            if atom.predicate not in db:
                return set()
        joined = join_atoms(rule.body, db)
        derived: set[tuple] = set()
        for row in joined:
            binding = dict(zip(joined.columns, row))
            head_values = []
            for t in rule.head.terms:
                if isinstance(t, Variable):
                    head_values.append(binding[t.name])
                else:
                    head_values.append(t.value)  # type: ignore[union-attr]
            derived.add(tuple(head_values))
        return derived

    def evaluate(self, db: Database, max_iterations: int | None = None) -> Database:
        """Compute the least fixpoint and return a *new* database.

        The input database is not modified; the result contains all input
        relations plus (possibly extended) relations for every IDB predicate.

        ``max_iterations`` bounds the number of naive iterations (useful as a
        safety valve in property tests); None means run to fixpoint.
        """
        arities = self._head_arities()
        working = Database(list(db), name=f"{db.name}+idb")
        for predicate, arity in arities.items():
            if predicate not in working:
                columns = [f"c{i}" for i in range(arity)]
                working.replace(Relation(RelationSchema(predicate, columns), ()))

        iteration = 0
        changed = True
        while changed:
            if max_iterations is not None and iteration >= max_iterations:
                break
            iteration += 1
            changed = False
            for rule in self.rules:
                new_tuples = self._derive_once(rule, working)
                current = working[rule.head.predicate]
                missing = new_tuples - set(current.tuples)
                if missing:
                    working.replace(current.with_rows(set(current.tuples) | missing))
                    changed = True
        return working

    def apply_rule_once(self, rule_index: int, db: Database) -> Relation:
        """Materialise the head relation implied by one rule, without iteration.

        Returns the relation of head tuples derivable in a single step; used
        by the view-reengineering example to compare a stored head relation
        with the view a mined rule would compute.
        """
        if not 0 <= rule_index < len(self.rules):
            raise DatalogError(f"rule index {rule_index} out of range")
        rule = self.rules[rule_index]
        derived = self._derive_once(rule, db)
        columns = [f"c{i}" for i in range(rule.head.arity)]
        return Relation(RelationSchema(rule.head.predicate, columns), derived)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatalogProgram({len(self.rules)} rules)"


def transitive_closure_program(edge: str = "edge", path: str = "path") -> DatalogProgram:
    """The classic transitive-closure program, used in tests and examples."""
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    base = HornRule(Atom(path, [x, y]), [Atom(edge, [x, y])])
    step = HornRule(Atom(path, [x, z]), [Atom(edge, [x, y]), Atom(path, [y, z])])
    return DatalogProgram([base, step])
