"""repro — a reproduction of *Computational Properties of Metaquerying Problems*.

The package implements the full metaquerying stack described in the paper
(Angiulli, Ben-Eliyahu-Zohary, Ianni, Palopoli; PODS 2000):

* a pure-Python relational-algebra and Datalog substrate
  (:mod:`repro.relational`, :mod:`repro.datalog`);
* the hypergraph machinery behind the tractable cases
  (:mod:`repro.hypergraph`);
* the metaquery core — syntax, type-0/1/2 instantiations, the support /
  confidence / cover plausibility indices, the naive engine and the
  FindRules algorithm of Figure 4 (:mod:`repro.core`);
* the circuit families of the data-complexity theorems
  (:mod:`repro.circuits`);
* the hardness reductions and reference solvers used by the complexity
  experiments (:mod:`repro.reductions`);
* workload generators, including the paper's telecom example database
  (:mod:`repro.workloads`).

Quickstart
----------
>>> from repro import MetaqueryEngine, Thresholds
>>> from repro.workloads.telecom import db1
>>> engine = MetaqueryEngine(db1())
>>> answers = engine.find_rules("R(X,Z) <- P(X,Y), Q(Y,Z)",
...                             Thresholds(support=0.3, confidence=0.5, cover=0.0))
>>> for answer in answers:
...     print(answer)            # doctest: +SKIP
"""

from repro.core import (
    AnswerSet,
    AsyncMetaqueryEngine,
    InstantiationType,
    MetaQuery,
    MetaqueryAnswer,
    MetaqueryDecisionProblem,
    MetaqueryEngine,
    MetaqueryRequest,
    PreparedMetaquery,
    Thresholds,
    parse_metaquery,
)
from repro.relational import Database, Relation

__version__ = "1.2.0"

__all__ = [
    "MetaqueryEngine",
    "AsyncMetaqueryEngine",
    "MetaqueryRequest",
    "PreparedMetaquery",
    "MetaQuery",
    "parse_metaquery",
    "InstantiationType",
    "Thresholds",
    "MetaqueryAnswer",
    "AnswerSet",
    "MetaqueryDecisionProblem",
    "Database",
    "Relation",
    "__version__",
]
