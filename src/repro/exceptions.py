"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  More specific subclasses are
grouped by the subsystem that raises them (relational engine, Datalog layer,
metaquery core, hypergraph machinery, circuits).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "UnknownRelationError",
    "AlgebraError",
    "ParseError",
    "DatalogError",
    "MetaqueryError",
    "InstantiationError",
    "IndexError_",
    "DecompositionError",
    "EngineError",
    "ShardingError",
    "CircuitError",
    "ReductionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation or database schema is malformed or violated.

    Raised, for instance, when a tuple of the wrong arity is inserted into a
    relation, when two attributes of a relation share a name, or when a
    relation name is registered twice in a database.
    """


class UnknownRelationError(SchemaError):
    """A query referenced a relation name that does not exist in the database."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class AlgebraError(ReproError):
    """A relational-algebra operation was applied to incompatible operands."""


class ParseError(ReproError):
    """A textual query, rule, or metaquery could not be parsed."""

    def __init__(self, message: str, text: str | None = None) -> None:
        if text is not None:
            message = f"{message} (while parsing {text!r})"
        super().__init__(message)
        self.text = text


class DatalogError(ReproError):
    """A Datalog program or conjunctive query is malformed or unsafe."""


class MetaqueryError(ReproError):
    """A metaquery is malformed (e.g. not pure when purity is required)."""


class InstantiationError(MetaqueryError):
    """An instantiation violates the requested instantiation-type constraints."""


class IndexError_(ReproError):
    """A plausibility index could not be evaluated.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class DecompositionError(ReproError):
    """A hypertree decomposition or join tree could not be constructed."""


class EngineError(ReproError, ValueError):
    """An engine request or configuration is invalid.

    Raised by :class:`~repro.core.engine.MetaqueryEngine` and
    :class:`~repro.core.requests.MetaqueryRequest` construction when an
    argument is out of range (``workers < 1``), of the wrong type (the
    ``cache``/``fast_path``/``batch`` switches must be real booleans) or
    names an unknown algorithm.  Subclasses :class:`ValueError` so callers
    that predate the request API keep working unchanged.
    """


class ShardingError(ReproError):
    """A sharded evaluation could not be set up or dispatched.

    Raised when a :class:`~repro.datalog.sharding.ShardedEvaluator` is used
    after being closed, is bound to a different database than the call's, or
    is asked for worker-local state outside a worker process.
    """


class CircuitError(ReproError):
    """A circuit is malformed (dangling wires, wrong input size, cycles)."""


class ReductionError(ReproError):
    """A complexity reduction received a malformed problem instance."""
