"""The multi-tenant engine registry: one database, one engine, per tenant.

The service is multi-tenant in the PODS sense — heterogeneous clients
mining *different databases* through one process.  Each tenant owns a
:class:`~repro.relational.database.Database`; its
:class:`~repro.core.aio.AsyncMetaqueryEngine` (and therefore its
evaluation caches, request cache, and optional worker pool) is built
lazily on the tenant's first request, so a server fronting many cold
tenants pays only for the hot ones.

What *is* shared is the executing-stage budget: every tenant engine is
constructed with the registry's single :class:`asyncio.Semaphore` as its
``concurrency_budget``, so the process-wide number of concurrently
executing blocking stages (prepares, collects, active stream producers)
is bounded once, globally — a hot tenant can saturate the budget but can
never grow the thread count past it.  Per-client *fairness* on top of
that bound is :mod:`repro.server.limits`'s job.

The registry's tenant→engine table is mutated from request handlers and
read by stats/drain paths, so it is guarded by a lock built through
:func:`repro.tools.sanitizer.create_lock` — the static concurrency rules
(REP109–REP111) and the runtime sanitizer cover it like every other
lock-owning runtime class.  Engine construction happens *outside* the
lock (it is pure in-memory setup, but there is no reason to serialize
tenants behind it); losers of the construction race are discarded, which
leaks nothing because an unused engine owns no pool or thread yet.
"""

from __future__ import annotations

import asyncio
from typing import Any, Mapping

from repro.core.aio import AsyncMetaqueryEngine
from repro.exceptions import EngineError, ReproError
from repro.relational.database import Database
from repro.tools.sanitizer import create_lock

__all__ = ["EngineRegistry", "UnknownTenantError"]


class UnknownTenantError(ReproError):
    """A request named a tenant the registry does not serve (HTTP 404)."""

    def __init__(self, tenant: str, known: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown tenant {tenant!r}; serving: {', '.join(sorted(known)) or '(none)'}"
        )
        self.tenant = tenant


class EngineRegistry:
    """Lazily constructed per-tenant engines over one shared concurrency budget.

    Parameters
    ----------
    databases:
        The tenant table: ``name -> Database``.  Fixed at construction —
        the service's tenancy model is static configuration, not a
        provisioning API.
    max_concurrency:
        Size of the shared executing-stage budget (one
        :class:`asyncio.Semaphore` passed to every tenant engine).
    engine_kwargs:
        Forwarded to every tenant's underlying
        :class:`~repro.core.engine.MetaqueryEngine` (``workers=`` /
        ``cache_limit=`` / ``request_cache=`` ...), so all tenants run
        the same engine configuration.
    """

    def __init__(
        self,
        databases: Mapping[str, Database],
        max_concurrency: int = 8,
        **engine_kwargs: Any,
    ) -> None:
        if not isinstance(databases, Mapping) or not databases:
            raise EngineError("databases must be a non-empty mapping of tenant -> Database")
        for name, db in databases.items():
            if not isinstance(name, str) or not name:
                raise EngineError(f"tenant names must be non-empty strings, got {name!r}")
            if not isinstance(db, Database):
                raise EngineError(
                    f"tenant {name!r} must map to a Database, got {type(db).__name__}"
                )
        if isinstance(max_concurrency, bool) or not isinstance(max_concurrency, int):
            raise EngineError(
                f"max_concurrency must be an int, got {type(max_concurrency).__name__}"
            )
        if max_concurrency < 1:
            raise EngineError(f"max_concurrency must be >= 1, got {max_concurrency}")
        self._databases = dict(databases)
        self.max_concurrency = max_concurrency
        self._engine_kwargs = dict(engine_kwargs)
        # Shared across every tenant engine; asyncio primitives bind to
        # the running loop lazily (3.10+), so constructing here is safe
        # even though the loop is not running yet.
        self._budget = asyncio.Semaphore(max_concurrency)
        self._lock = create_lock("repro.server.registry:EngineRegistry")
        self._engines: dict[str, AsyncMetaqueryEngine] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def tenants(self) -> tuple[str, ...]:
        """Every tenant the registry serves, sorted (constructed or not)."""
        return tuple(sorted(self._databases))

    def get(self, tenant: str) -> AsyncMetaqueryEngine:
        """The tenant's engine, constructing it on first use.

        Raises :class:`UnknownTenantError` for names outside the tenant
        table and :class:`~repro.exceptions.EngineError` once the registry
        is closed.
        """
        with self._lock:
            engine = self._engines.get(tenant)
            if engine is not None:
                return engine
            if self._closed:
                raise EngineError("registry is closed")
        db = self._databases.get(tenant)
        if db is None:
            raise UnknownTenantError(tenant, self.tenants())
        candidate = AsyncMetaqueryEngine(
            db,
            max_concurrency=self.max_concurrency,
            concurrency_budget=self._budget,
            **self._engine_kwargs,
        )
        with self._lock:
            if self._closed:
                raise EngineError("registry is closed")
            existing = self._engines.get(tenant)
            if existing is not None:
                # Lost a construction race; the unused candidate owns no
                # pool or thread yet, so dropping it leaks nothing.
                return existing
            self._engines[tenant] = candidate
            return candidate

    def _live_engines(self) -> list[tuple[str, AsyncMetaqueryEngine]]:
        """A locked snapshot of the constructed tenant engines."""
        with self._lock:
            return sorted(self._engines.items())

    def stats(self) -> dict[str, dict[str, object]]:
        """Per-tenant engine + stream telemetry (constructed tenants only).

        Unconstructed tenants report ``{"constructed": False}`` so the
        ``/stats`` endpoint always lists the full tenant table.
        """
        live = dict(self._live_engines())
        report: dict[str, dict[str, object]] = {}
        for tenant in self.tenants():
            engine = live.get(tenant)
            if engine is None:
                report[tenant] = {"constructed": False}
            else:
                report[tenant] = {
                    "constructed": True,
                    "engine": engine.stats(),
                    "streams": engine.stream_stats(),
                }
        return report

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait for every tenant's in-flight streams to retire."""
        for _, engine in self._live_engines():
            await engine.drain()

    async def aclose(self) -> None:
        """Refuse new engines, then close every constructed one. Idempotent."""
        with self._lock:
            self._closed = True
            engines = sorted(self._engines.items())
            self._engines = {}
        for _, engine in engines:
            await engine.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineRegistry({len(self._databases)} tenants, "
            f"max_concurrency={self.max_concurrency})"
        )
