"""The metaquery-mining service layer: HTTP/1.1 + SSE over the async engine.

This package puts a network front end on the request pipeline the core
grew in PRs 4–5 — validated :class:`~repro.core.requests.MetaqueryRequest`
construction, ``prepare()`` planning, incremental answer streaming with
byte-identical ordering, bounded concurrency and the generation-vector-
guarded request cache — without adding any runtime dependency beyond the
standard library:

* :mod:`repro.server.protocol` — minimal HTTP/1.1 request parsing and
  response / Server-Sent-Events writing over ``asyncio`` streams;
* :mod:`repro.server.registry` — the multi-tenant engine registry
  (database-per-tenant, lazily constructed
  :class:`~repro.core.aio.AsyncMetaqueryEngine` instances sharing one
  executing-stage budget);
* :mod:`repro.server.limits` — per-client token-bucket rate limiting and
  max-concurrent-stream backpressure (429/503 with ``Retry-After``);
* :mod:`repro.server.service` — the JSON boundary and route handlers
  (``POST /mine``, ``POST /mine/stream``, ``GET /healthz``,
  ``GET /stats``) plus the :class:`~repro.server.service.MetaqueryServer`
  lifecycle (bind, serve, graceful drain);
* :mod:`repro.server.inprocess` — an in-process server harness running
  the service on a private event-loop thread, used by the end-to-end
  test suite and the serving benchmark.

The delivery contract mirrors the engine's: ``POST /mine/stream`` emits
one SSE event per answer **the moment the engine confirms it** (the
time-to-first-answer latency the streaming pipeline was built for), in an
order byte-identical to a direct :meth:`PreparedMetaquery.stream()
<repro.core.requests.PreparedMetaquery.stream>` on the same engine
configuration — asserted end-to-end by ``tests/server/``.

``repro serve DATA_DIR`` (see :mod:`repro.cli`) wires the stack up from
the command line.
"""

from __future__ import annotations

from repro.server.inprocess import InProcessServer
from repro.server.limits import RateLimiter, StreamPermits, TokenBucket
from repro.server.registry import EngineRegistry, UnknownTenantError
from repro.server.service import MetaqueryServer, MetaqueryService

__all__ = [
    "EngineRegistry",
    "InProcessServer",
    "MetaqueryServer",
    "MetaqueryService",
    "RateLimiter",
    "StreamPermits",
    "TokenBucket",
    "UnknownTenantError",
]
