"""Minimal HTTP/1.1 + Server-Sent-Events wire protocol over asyncio streams.

The service layer is deliberately stdlib-only, so this module implements
the thin slice of HTTP/1.1 the mining endpoints need — nothing more:

* :func:`read_request` parses one request (request line, headers, and a
  ``Content-Length``-delimited body) from an ``asyncio.StreamReader``,
  enforcing header- and body-size ceilings so a misbehaving client cannot
  buffer unbounded bytes into the process;
* :func:`write_response` writes a complete ``Content-Length``-framed
  response and :func:`start_sse` / :func:`write_sse_event` write a
  ``text/event-stream`` response incrementally — one event per confirmed
  answer, which is the whole point of the streaming endpoint.

Every response carries ``Connection: close`` and each connection serves
exactly one request: the mining endpoints are long-lived (a stream runs
for the lifetime of the evaluation), so keep-alive connection reuse would
buy nothing while complicating the drain logic.  SSE responses are
close-delimited (no ``Content-Length``), which HTTP/1.1 permits for
``Connection: close`` responses and which lets events flush as they are
produced.

Errors detected at this layer raise :class:`ProtocolError` (malformed
request, oversized headers) or :class:`PayloadTooLarge` (oversized body),
which :mod:`repro.server.service` maps to structured 400/413 responses.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.exceptions import ReproError

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "HttpRequest",
    "MAX_HEADER_BYTES",
    "MAX_HEADER_COUNT",
    "PayloadTooLarge",
    "ProtocolError",
    "REASON_PHRASES",
    "read_request",
    "sse_headers",
    "start_sse",
    "write_response",
    "write_sse_event",
]

#: Ceiling on any single header / request line (bytes, CRLF included).
MAX_HEADER_BYTES = 8192

#: Ceiling on the number of header lines in one request.
MAX_HEADER_COUNT = 64

#: Default ceiling on request bodies; the service layer passes its own.
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: The status codes the service emits, with their reason phrases.
REASON_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ReproError):
    """The bytes on the wire do not form the HTTP/1.1 subset we accept."""


class PayloadTooLarge(ProtocolError):
    """The declared request body exceeds the configured ceiling."""

    def __init__(self, declared: int, limit: int) -> None:
        super().__init__(f"request body of {declared} bytes exceeds the {limit}-byte limit")
        self.declared = declared
        self.limit = limit


@dataclass(frozen=True)
class HttpRequest:
    """One parsed HTTP request: method, split target, headers and body.

    ``headers`` keys are lower-cased (HTTP header names are
    case-insensitive); duplicate headers keep the last value, which is
    sufficient for the small header vocabulary the service reads
    (``content-length``, ``x-client-id``).
    """

    method: str
    path: str
    query: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def client_id(self, default: str) -> str:
        """The rate-limiting identity: ``X-Client-Id`` or the given default."""
        return self.headers.get("x-client-id", default)


async def _read_header_line(reader: asyncio.StreamReader) -> bytes:
    """One CRLF-terminated line, bounded by :data:`MAX_HEADER_BYTES`."""
    line = await reader.readline()
    if len(line) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header line exceeds {MAX_HEADER_BYTES} bytes")
    return line


async def read_request(
    reader: asyncio.StreamReader,
    max_body: int = DEFAULT_MAX_BODY_BYTES,
) -> HttpRequest | None:
    """Parse one request from the stream, or ``None`` on a clean EOF.

    Only what the mining endpoints need is accepted: an HTTP/1.x request
    line, up to :data:`MAX_HEADER_COUNT` headers, and an optional body
    delimited by ``Content-Length`` (chunked request bodies are rejected —
    no client of a JSON mining API needs them).  A declared body larger
    than ``max_body`` raises :class:`PayloadTooLarge` *before* reading it,
    so oversized uploads cost the server nothing.
    """
    request_line = await _read_header_line(reader)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version: {version!r}")
    path, _, query = target.partition("?")
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        line = await _read_header_line(reader)
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ProtocolError("connection closed mid-headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(f"more than {MAX_HEADER_COUNT} header lines")
    if "transfer-encoding" in headers:
        raise ProtocolError("chunked request bodies are not supported")
    body = b""
    declared = headers.get("content-length")
    if declared is not None:
        try:
            length = int(declared)
        except ValueError as exc:
            raise ProtocolError(f"malformed Content-Length: {declared!r}") from exc
        if length < 0:
            raise ProtocolError(f"malformed Content-Length: {declared!r}")
        if length > max_body:
            raise PayloadTooLarge(length, max_body)
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError("connection closed mid-body") from exc
    return HttpRequest(method=method, path=path, query=query, headers=headers, body=body)


def _status_line(status: int) -> str:
    reason = REASON_PHRASES.get(status, "Unknown")
    return f"HTTP/1.1 {status} {reason}\r\n"


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> None:
    """Write one complete ``Content-Length``-framed response and flush it."""
    head = _status_line(status)
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    for name, value in headers.items():
        head += f"{name}: {value}\r\n"
    writer.write(head.encode("latin-1") + b"\r\n" + body)
    await writer.drain()


def sse_headers() -> dict[str, str]:
    """The response headers of a Server-Sent-Events stream."""
    return {
        "Content-Type": "text/event-stream; charset=utf-8",
        "Cache-Control": "no-store",
        "Connection": "close",
    }


async def start_sse(writer: asyncio.StreamWriter) -> None:
    """Write the status line and headers of an SSE response (no body yet).

    The stream is close-delimited: events follow via
    :func:`write_sse_event` and the response ends when the connection
    closes, so each event reaches the client as soon as it is written.
    """
    head = _status_line(200)
    for name, value in sse_headers().items():
        head += f"{name}: {value}\r\n"
    writer.write(head.encode("latin-1") + b"\r\n")
    await writer.drain()


async def write_sse_event(
    writer: asyncio.StreamWriter,
    event: str,
    data: str,
    event_id: int | None = None,
) -> None:
    """Write one SSE event frame and flush it to the client.

    ``data`` must not contain newlines (the service sends compact
    single-line JSON payloads); the frame is flushed immediately so a
    confirmed answer is on the wire before the next one is computed.
    Raises the writer's connection error when the client has gone away —
    the streaming handler treats that as a disconnect.
    """
    frame = f"event: {event}\n"
    if event_id is not None:
        frame += f"id: {event_id}\n"
    frame += f"data: {data}\n\n"
    writer.write(frame.encode("utf-8"))
    await writer.drain()
