"""Per-client rate limiting and stream backpressure for the service layer.

PODS-style serving treats clients as heterogeneous: one chatty client must
not starve the rest, and a burst of streaming requests must degrade into
polite ``Retry-After`` responses instead of unbounded producer threads.
Two small primitives implement that:

* :class:`TokenBucket` — the classic refill-at-``rate``, cap-at-``burst``
  admission meter, computed in exact :class:`~fractions.Fraction`
  arithmetic so its admission invariant (never more than
  ``burst + rate * elapsed`` admissions in any window, for any
  interleaving) holds *exactly* — the hypothesis suite in
  ``tests/server/test_limits.py`` exercises it with adversarial clocks
  and would flounder on float drift.  The clock is injectable for
  exactly that reason.
* :class:`RateLimiter` — one bucket per client identity with an LRU bound
  on tracked clients, answering ``429 Too Many Requests`` with a
  ``Retry-After`` hint when a bucket runs dry.
* :class:`StreamPermits` — a counted cap on concurrently executing SSE
  streams, answering ``503 Service Unavailable``.  A permit is released
  when the stream finishes *or the client disconnects mid-stream*; the
  fault-injection tests close sockets after ``k`` events and assert the
  permit always frees.

The mutable state in :class:`RateLimiter` and :class:`StreamPermits` is
guarded by locks built through :func:`repro.tools.sanitizer.create_lock`,
so the static concurrency rules (REP109–REP111) and the runtime lock
sanitizer cover the service layer exactly as they cover the engine's own
runtime classes.  :class:`TokenBucket` itself is deliberately unlocked —
it is always mutated under its owning :class:`RateLimiter`'s lock (or
single-threaded in tests), and giving it a private lock would nest two
locks per admission for nothing.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Union

from repro.core.answers import exact_fraction
from repro.exceptions import EngineError
from repro.tools.sanitizer import create_lock

__all__ = [
    "RateDecision",
    "RateLimiter",
    "StreamPermits",
    "TokenBucket",
]

#: Numbers accepted for rates/bursts; floats coerce via their shortest
#: decimal form (``0.1`` means exactly ``1/10``), mirroring thresholds.
Numeric = Union[int, float, Fraction]


class TokenBucket:
    """An exact-arithmetic token bucket: ``burst`` capacity, ``rate``/s refill.

    The bucket starts full.  :meth:`try_acquire` spends one token when at
    least one is available and reports whether admission succeeded;
    refill is computed lazily from the injected monotonic ``clock``.
    All arithmetic is :class:`~fractions.Fraction`-exact (float clock
    readings convert exactly — ``Fraction(float)`` is lossless), so the
    admission bound ``admitted(t) <= burst + rate * (t - t0)`` is a
    theorem about this implementation, not an approximation.

    Not thread-safe on its own; see the module docstring.
    """

    def __init__(
        self,
        rate: Numeric,
        burst: Numeric,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = exact_fraction(rate)
        self.burst = exact_fraction(burst)
        if self.rate <= 0:
            raise EngineError(f"rate must be > 0 tokens/second, got {rate!r}")
        if self.burst < 1:
            raise EngineError(f"burst must be >= 1 token, got {burst!r}")
        self._clock = clock
        self._tokens = self.burst
        self._last = Fraction(clock())

    def _refill(self) -> None:
        """Advance the token count to the current clock reading."""
        now = Fraction(self._clock())
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def try_acquire(self) -> bool:
        """Spend one token if available; ``False`` means rate-limited."""
        self._refill()
        if self._tokens >= 1:
            self._tokens -= 1
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token exists (0.0 when one is available).

        A *hint* for the ``Retry-After`` header: by the time the client
        retries, other requests may have drained the bucket again.
        """
        self._refill()
        if self._tokens >= 1:
            return 0.0
        return float((1 - self._tokens) / self.rate)

    @property
    def tokens(self) -> Fraction:
        """The current token balance (refilled to now; test observability)."""
        self._refill()
        return self._tokens


@dataclass(frozen=True)
class RateDecision:
    """The outcome of one admission check."""

    admitted: bool
    retry_after: float  #: seconds to wait before retrying (0.0 when admitted)


class RateLimiter:
    """Per-client token buckets behind one lock, LRU-bounded.

    Each distinct client identity (the ``X-Client-Id`` header, falling
    back to the peer address) gets its own :class:`TokenBucket`, so a
    client exhausting its budget never taxes the others.  At most
    ``max_clients`` buckets are tracked; the least-recently-seen client is
    evicted beyond that and simply starts over with a full bucket — for an
    admission meter, forgetting an idle client errs on the permissive
    side, never the unfair one.
    """

    def __init__(
        self,
        rate: Numeric,
        burst: Numeric,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 1024,
    ) -> None:
        if isinstance(max_clients, bool) or not isinstance(max_clients, int):
            raise EngineError(
                f"max_clients must be an int, got {type(max_clients).__name__}"
            )
        if max_clients < 1:
            raise EngineError(f"max_clients must be >= 1, got {max_clients}")
        # Validate rate/burst eagerly (a throw-away bucket) so a bad
        # configuration fails at construction, not on the first request.
        TokenBucket(rate, burst, clock)
        self.rate = exact_fraction(rate)
        self.burst = exact_fraction(burst)
        self.max_clients = max_clients
        self._clock = clock
        self._lock = create_lock("repro.server.limits:RateLimiter")
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._admitted = 0
        self._rejected = 0

    def admit(self, client: str) -> RateDecision:
        """Check one request from ``client`` against its bucket."""
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, self._clock)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            self._buckets.move_to_end(client)
            if bucket.try_acquire():
                self._admitted += 1
                return RateDecision(admitted=True, retry_after=0.0)
            self._rejected += 1
            return RateDecision(admitted=False, retry_after=bucket.retry_after())

    def stats_dict(self) -> dict[str, int]:
        """Admission counters and the tracked-client gauge (one snapshot)."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "clients": len(self._buckets),
            }


class StreamPermits:
    """A counted cap on concurrently executing answer streams.

    :meth:`try_acquire` never blocks — the service either starts the
    stream or answers ``503`` immediately (backpressure by refusal, not
    by queueing: a queued stream would hold the client's connection open
    with no events, which is worse than an honest retry hint).  Permits
    are returned via :meth:`release`, which the streaming handler calls
    from a ``finally`` so a client disconnect mid-stream can never leak
    a permit.
    """

    def __init__(self, max_streams: int, retry_after: float = 1.0) -> None:
        if isinstance(max_streams, bool) or not isinstance(max_streams, int):
            raise EngineError(
                f"max_streams must be an int, got {type(max_streams).__name__}"
            )
        if max_streams < 1:
            raise EngineError(f"max_streams must be >= 1, got {max_streams}")
        self.max_streams = max_streams
        self.retry_after = retry_after
        self._lock = create_lock("repro.server.limits:StreamPermits")
        self._active = 0
        self._admitted = 0
        self._rejected = 0

    def try_acquire(self) -> bool:
        """Take one permit if the cap allows; never blocks."""
        with self._lock:
            if self._active >= self.max_streams:
                self._rejected += 1
                return False
            self._active += 1
            self._admitted += 1
            return True

    def release(self) -> None:
        """Return one permit (stream finished, failed, or client vanished)."""
        with self._lock:
            if self._active <= 0:
                raise EngineError("release() without a matching try_acquire()")
            self._active -= 1

    @property
    def active(self) -> int:
        """Streams currently holding a permit."""
        with self._lock:
            return self._active

    def stats_dict(self) -> dict[str, int]:
        """Admission counters and the active-stream gauge (one snapshot)."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "active": self._active,
                "max_streams": self.max_streams,
            }
