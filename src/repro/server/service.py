"""The mining service: JSON boundary, route handlers, server lifecycle.

Four routes over :mod:`repro.server.protocol`:

* ``POST /mine`` — validate the JSON body into a
  :class:`~repro.core.requests.MetaqueryRequest`, evaluate it on the
  tenant's engine, return the collected answers as JSON;
* ``POST /mine/stream`` — same validation, but deliver answers as
  Server-Sent Events **the moment the engine confirms them** (one
  ``answer`` event per answer, byte-identical in payload and order to a
  direct :meth:`PreparedMetaquery.stream()
  <repro.core.requests.PreparedMetaquery.stream>`), closing with a
  terminal ``stats`` event;
* ``GET /healthz`` — liveness plus the tenant table;
* ``GET /stats`` — per-tenant engine telemetry
  (:meth:`MetaqueryEngine.stats <repro.core.engine.MetaqueryEngine.stats>`
  and :meth:`AsyncMetaqueryEngine.stream_stats
  <repro.core.aio.AsyncMetaqueryEngine.stream_stats>`) and the limiter
  counters.

The JSON→request boundary is strict: unknown fields, wrong types,
competing threshold spellings and oversized bodies are all structured
400/413 responses — the same fail-at-the-boundary philosophy
:class:`~repro.core.requests.MetaqueryRequest` brought to the library
API, extended to the wire.  Engine-side validation errors
(:class:`~repro.exceptions.EngineError`, parse and purity failures)
map to 400; only a genuine bug produces a 500.

Request admission composes :mod:`repro.server.limits`: a per-client
token bucket answers ``429 Too Many Requests`` with ``Retry-After``, and
a concurrent-stream cap answers ``503 Service Unavailable`` — both
checked *before* any engine work starts.
"""

from __future__ import annotations

import asyncio
import json
import logging
from fractions import Fraction
from typing import Awaitable, Callable

from repro.core.answers import MetaqueryAnswer, Thresholds
from repro.core.requests import ALGORITHMS, MetaqueryRequest
from repro.exceptions import EngineError, ReproError
from repro.server.limits import RateLimiter, StreamPermits
from repro.server.protocol import (
    HttpRequest,
    PayloadTooLarge,
    ProtocolError,
    read_request,
    start_sse,
    write_response,
    write_sse_event,
)
from repro.server.registry import EngineRegistry, UnknownTenantError
from repro.tools import loopmon

__all__ = [
    "DEFAULT_MAX_BODY",
    "MetaqueryServer",
    "MetaqueryService",
    "ServiceError",
    "answer_payload",
    "encode_answer",
    "parse_mine_payload",
]

logger = logging.getLogger(__name__)

#: Default request-body ceiling (bytes); metaquery JSON is tiny, so 64 KiB
#: is generous while keeping hostile uploads cheap to refuse.
DEFAULT_MAX_BODY = 64 * 1024

#: Fields accepted in a ``/mine`` body.  ``support``/``confidence``/
#: ``cover`` are the flat spelling of ``thresholds``; sending both is a
#: competing-override error, mirroring the engine's request-vs-kwargs rule.
_MINE_FIELDS = frozenset(
    {"metaquery", "thresholds", "support", "confidence", "cover", "itype", "algorithm", "tenant"}
)
_THRESHOLD_FIELDS = ("support", "confidence", "cover")


class ServiceError(ReproError):
    """A request that must be answered with a structured HTTP error."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after

    def body(self) -> bytes:
        """The structured JSON error document."""
        error: dict[str, object] = {"status": self.status, "code": self.code,
                                    "message": str(self)}
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return json.dumps({"error": error}).encode("utf-8")

    def headers(self) -> dict[str, str]:
        """Extra response headers (``Retry-After`` for 429/503)."""
        if self.retry_after is None:
            return {}
        # Retry-After is delta-seconds; round up so "0.2s from now" never
        # reads as "retry immediately".
        return {"Retry-After": str(max(1, int(self.retry_after + 0.999)))}


# ----------------------------------------------------------------------
# The JSON -> MetaqueryRequest boundary
# ----------------------------------------------------------------------
def _bad(message: str) -> ServiceError:
    return ServiceError(400, "invalid-request", message)


def _coerce_threshold(name: str, value: object) -> Fraction | None:
    """One threshold field: null, int, float, or an exact-fraction string."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise _bad(
            f"threshold {name!r} must be a number, a fraction string or null, "
            f"got {type(value).__name__}"
        )
    try:
        thresholds = Thresholds(**{name: value})
    except (ReproError, ValueError, TypeError, ZeroDivisionError) as exc:
        raise _bad(f"threshold {name!r} is invalid: {exc}") from exc
    return getattr(thresholds, name)


def _parse_thresholds(payload: dict[str, object]) -> Thresholds:
    """The ``thresholds`` object or the flat spelling — never both."""
    nested = payload.get("thresholds")
    flat = [name for name in _THRESHOLD_FIELDS if name in payload]
    if nested is not None and flat:
        raise _bad(
            f"competing threshold spellings: 'thresholds' object and flat "
            f"{', '.join(repr(f) for f in flat)}; use one or the other"
        )
    if nested is None:
        values = {name: payload.get(name) for name in _THRESHOLD_FIELDS}
    else:
        if not isinstance(nested, dict):
            raise _bad(f"'thresholds' must be an object, got {type(nested).__name__}")
        unknown = set(nested) - set(_THRESHOLD_FIELDS)
        if unknown:
            raise _bad(
                f"unknown threshold fields: {', '.join(sorted(map(repr, unknown)))}"
            )
        values = {name: nested.get(name) for name in _THRESHOLD_FIELDS}
    return Thresholds(**{
        name: _coerce_threshold(name, value) for name, value in values.items()
    })


def parse_mine_payload(
    body: bytes, default_tenant: str
) -> tuple[str, MetaqueryRequest]:
    """Validate a ``/mine`` body into ``(tenant, MetaqueryRequest)``.

    Every malformed input — undecodable bytes, non-object JSON, unknown
    fields, wrong types, competing threshold spellings, invalid
    instantiation types or algorithm names — raises a 400-carrying
    :class:`ServiceError`; nothing at this boundary may surface as a 500.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _bad(f"malformed JSON body: {exc}") from exc
    if not isinstance(payload, dict):
        raise _bad(f"request body must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - _MINE_FIELDS
    if unknown:
        raise _bad(f"unknown fields: {', '.join(sorted(map(repr, unknown)))}")
    metaquery = payload.get("metaquery")
    if not isinstance(metaquery, str):
        raise _bad(
            "field 'metaquery' is required and must be a string, got "
            + type(metaquery).__name__
        )
    tenant = payload.get("tenant", default_tenant)
    if not isinstance(tenant, str) or not tenant:
        raise _bad(f"field 'tenant' must be a non-empty string, got {tenant!r}")
    itype = payload.get("itype", 0)
    if isinstance(itype, bool) or not isinstance(itype, int):
        raise _bad(f"field 'itype' must be an integer, got {type(itype).__name__}")
    algorithm = payload.get("algorithm", "auto")
    if not isinstance(algorithm, str):
        raise _bad(f"field 'algorithm' must be a string, got {type(algorithm).__name__}")
    if algorithm not in ALGORITHMS:
        raise _bad(
            f"unknown algorithm {algorithm!r}; use one of: {', '.join(ALGORITHMS)}"
        )
    thresholds = _parse_thresholds(payload)
    try:
        request = MetaqueryRequest(
            metaquery, thresholds=thresholds, itype=itype, algorithm=algorithm
        )
    except EngineError as exc:
        raise _bad(str(exc)) from exc
    return tenant, request


# ----------------------------------------------------------------------
# Answer serialization (shared with the differential tests)
# ----------------------------------------------------------------------
def answer_payload(answer: MetaqueryAnswer) -> dict[str, str]:
    """One answer as JSON-safe data, exact: indices as fraction strings.

    ``str(Fraction)`` round-trips losslessly (``"1/5"``, ``"0"``), so the
    wire representation preserves the engine's exact arithmetic — and is
    deterministic, which the SSE byte-identity tests rely on.
    """
    return {
        "rule": str(answer.rule),
        "support": str(answer.support),
        "confidence": str(answer.confidence),
        "cover": str(answer.cover),
    }


def encode_answer(answer: MetaqueryAnswer) -> str:
    """The canonical single-line JSON encoding of one streamed answer."""
    return json.dumps(answer_payload(answer), sort_keys=True, separators=(",", ":"))


def _json_bytes(document: object) -> bytes:
    return json.dumps(document, sort_keys=True).encode("utf-8")


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class MetaqueryService:
    """Route dispatch and admission control over an :class:`EngineRegistry`.

    Parameters
    ----------
    registry:
        The tenant table (see :mod:`repro.server.registry`).
    rate / burst:
        Per-client token-bucket parameters (tokens/second and bucket
        size).  ``rate=None`` disables rate limiting.
    max_streams:
        Cap on concurrently executing SSE streams (``503`` beyond it).
    max_body:
        Request-body ceiling in bytes (``413`` beyond it).
    default_tenant:
        The tenant used when a request body names none.
    """

    def __init__(
        self,
        registry: EngineRegistry,
        rate: float | None = 50.0,
        burst: float = 20.0,
        max_streams: int = 8,
        max_body: int = DEFAULT_MAX_BODY,
        default_tenant: str = "default",
    ) -> None:
        if isinstance(max_body, bool) or not isinstance(max_body, int) or max_body < 1:
            raise EngineError(f"max_body must be a positive int, got {max_body!r}")
        self.registry = registry
        self.rate_limiter = RateLimiter(rate, burst) if rate is not None else None
        self.stream_permits = StreamPermits(max_streams)
        self.max_body = max_body
        self.default_tenant = default_tenant

    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """The ``asyncio.start_server`` callback: one request per connection."""
        try:
            try:
                request = await read_request(reader, max_body=self.max_body)
            except PayloadTooLarge as exc:
                await self._write_error(
                    writer, ServiceError(413, "payload-too-large", str(exc))
                )
                return
            except ProtocolError as exc:
                await self._write_error(writer, _bad(str(exc)))
                return
            if request is None:
                return
            await self._dispatch(request, reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            # The client went away mid-response; nothing left to tell it.
            pass
        finally:
            # Half-close first: ``write_eof`` sends the TCP FIN via
            # ``shutdown(SHUT_WR)``, which reaches the client even when a
            # forked engine worker pool holds a duplicate of this socket's
            # file descriptor (fork copies every open fd; a plain close
            # here would leave the child's copy keeping the connection
            # alive until the pool exits).
            if writer.can_write_eof():
                try:
                    writer.write_eof()
                except OSError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _write_error(self, writer: asyncio.StreamWriter, error: ServiceError) -> None:
        await write_response(
            writer, error.status, error.body(), extra_headers=error.headers()
        )

    async def _dispatch(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Route one parsed request, mapping every failure to a response."""
        routes: dict[str, dict[str, Callable[..., Awaitable[None]]]] = {
            "/healthz": {"GET": self._handle_healthz},
            "/stats": {"GET": self._handle_stats},
            "/mine": {"POST": self._handle_mine},
            "/mine/stream": {"POST": self._handle_mine_stream},
        }
        try:
            by_method = routes.get(request.path)
            if by_method is None:
                raise ServiceError(404, "not-found", f"no route for {request.path!r}")
            handler = by_method.get(request.method)
            if handler is None:
                raise ServiceError(
                    405,
                    "method-not-allowed",
                    f"{request.method} not allowed on {request.path!r}; "
                    f"allowed: {', '.join(sorted(by_method))}",
                )
            if request.path == "/mine/stream":
                await handler(request, reader, writer)
            else:
                await handler(request, writer)
        except ServiceError as exc:
            await self._write_error(writer, exc)
        except UnknownTenantError as exc:
            await self._write_error(writer, ServiceError(404, "unknown-tenant", str(exc)))
        except (ConnectionResetError, BrokenPipeError):
            raise
        except ReproError as exc:
            # Engine-side validation (parse errors, purity, bad requests
            # reaching prepare): the caller's fault, not the server's.
            await self._write_error(writer, _bad(str(exc)))
        except Exception as exc:
            logger.exception("unhandled error serving %s %s", request.method, request.path)
            await self._write_error(
                writer,
                ServiceError(500, "internal-error", f"{type(exc).__name__} (see server log)"),
            )

    # ------------------------------------------------------------------
    def _client_of(self, request: HttpRequest, writer: asyncio.StreamWriter) -> str:
        """The rate-limiting identity: ``X-Client-Id`` or the peer host."""
        peer = writer.get_extra_info("peername")
        fallback = peer[0] if isinstance(peer, tuple) and peer else "unknown"
        return request.client_id(default=str(fallback))

    def _check_rate(self, request: HttpRequest, writer: asyncio.StreamWriter) -> None:
        """Per-client admission; raises the 429 :class:`ServiceError`."""
        if self.rate_limiter is None:
            return
        client = self._client_of(request, writer)
        decision = self.rate_limiter.admit(client)
        if not decision.admitted:
            raise ServiceError(
                429,
                "rate-limited",
                f"client {client!r} exceeded its request rate",
                retry_after=decision.retry_after,
            )

    # ------------------------------------------------------------------
    async def _handle_healthz(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        """Liveness: the process is up and serving this tenant table."""
        body = _json_bytes({"status": "ok", "tenants": list(self.registry.tenants())})
        await write_response(writer, 200, body)

    async def _handle_stats(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        """Engine + limiter telemetry, one consistent-enough snapshot."""
        limits: dict[str, object] = {"streams": self.stream_permits.stats_dict()}
        if self.rate_limiter is not None:
            limits["rate"] = self.rate_limiter.stats_dict()
        body = _json_bytes({"tenants": self.registry.stats(), "limits": limits})
        await write_response(writer, 200, body)

    async def _handle_mine(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        """``POST /mine``: validate, evaluate, return the collected answers."""
        self._check_rate(request, writer)
        tenant, mine_request = parse_mine_payload(request.body, self.default_tenant)
        engine = self.registry.get(tenant)
        answers = await engine.find_rules(mine_request)
        body = _json_bytes(
            {
                "tenant": tenant,
                "algorithm": answers.algorithm,
                "count": len(answers),
                "answers": [answer_payload(a) for a in answers],
            }
        )
        await write_response(writer, 200, body)

    async def _handle_mine_stream(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """``POST /mine/stream``: SSE, one ``answer`` event per confirmation.

        Everything that can fail with a status code — validation, tenant
        lookup, rate/backpressure admission, prepare — happens *before*
        the SSE response starts, so the client always gets either a clean
        HTTP error or a stream.  After the stream starts, the only
        failure mode is the client disconnecting, detected both by a
        pending end-of-file read on the request socket and by write
        failures; either way the producer is retired through the async
        generator's close and the stream permit is released by the
        ``finally``.
        """
        self._check_rate(request, writer)
        tenant, mine_request = parse_mine_payload(request.body, self.default_tenant)
        engine = self.registry.get(tenant)  # 404 before taking a permit
        if not self.stream_permits.try_acquire():
            raise ServiceError(
                503,
                "overloaded",
                f"{self.stream_permits.max_streams} streams already executing",
                retry_after=self.stream_permits.retry_after,
            )
        try:
            prepared = await engine.prepare(mine_request)
            await start_sse(writer)
            # The client sends nothing after its request, so a completed
            # read means EOF: the client closed the connection.  Polled
            # between events — the cheap, reliable disconnect signal for
            # long streams whose writes keep succeeding into OS buffers.
            eof_task = asyncio.create_task(reader.read(1))
            count = 0
            exhausted = False
            stream = engine.stream(prepared)
            try:
                async for answer in stream:
                    if eof_task.done():
                        break
                    await write_sse_event(writer, "answer", encode_answer(answer), count)
                    count += 1
                else:
                    exhausted = True
            finally:
                await stream.aclose()
                if not eof_task.done():
                    eof_task.cancel()
            if exhausted and not eof_task.done():
                stats_payload = json.dumps(
                    {
                        "answers": count,
                        "algorithm": prepared.algorithm,
                        "tenant": tenant,
                        "complete": True,
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
                await write_sse_event(writer, "stats", stats_payload)
        finally:
            self.stream_permits.release()


# ----------------------------------------------------------------------
# Server lifecycle
# ----------------------------------------------------------------------
class MetaqueryServer:
    """Bind, serve, and drain one :class:`MetaqueryService`.

    The lifecycle is explicit so the CLI, the in-process test harness and
    the benchmark all drive the same object: :meth:`start` binds the
    listening socket (port ``0`` picks an ephemeral port, reported by
    :attr:`port`), :meth:`aclose` performs the graceful shutdown — stop
    accepting, wait for in-flight streams to retire (bounded by
    ``drain_timeout``), then close every tenant engine.
    """

    def __init__(
        self,
        service: MetaqueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.Server | None = None

    async def start(self) -> None:
        """Bind and start accepting connections.

        Arms the event-loop stall monitor first when
        ``REPRO_LOOP_MONITOR=1`` (see :mod:`repro.tools.loopmon`), so a
        served process can be instrumented with no code change.
        """
        if self._server is not None:
            raise EngineError("server already started")
        loopmon.maybe_install()
        self._server = await asyncio.start_server(
            self.service.handle_connection, self.host, self._requested_port
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is None:
            raise EngineError("server not started")
        sockets = self._server.sockets
        if not sockets:  # pragma: no cover - closed mid-query
            raise EngineError("server has no listening sockets")
        port = sockets[0].getsockname()[1]
        return int(port)

    async def serve_until(self, shutdown: asyncio.Event, drain_timeout: float = 10.0) -> None:
        """Serve until ``shutdown`` is set, then gracefully drain and close.

        The CLI sets the event from its SIGTERM/SIGINT handlers.
        """
        await shutdown.wait()
        await self.aclose(drain_timeout=drain_timeout)

    async def aclose(self, drain_timeout: float = 10.0) -> None:
        """Stop accepting, drain in-flight streams, close tenant engines."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        try:
            await asyncio.wait_for(self.service.registry.drain(), drain_timeout)
        except asyncio.TimeoutError:
            logger.warning(
                "drain timed out after %.1fs; closing engines under stragglers",
                drain_timeout,
            )
        await self.service.registry.aclose()
