"""An in-process server harness: the service on a private event-loop thread.

The end-to-end tests and the serving benchmark need a *real* server —
real sockets, real SSE framing, real disconnect semantics — without
subprocesses (no ports to guess, no startup races, engine internals still
inspectable from the test).  :class:`InProcessServer` provides exactly
that: it spins up a dedicated event loop in a daemon thread, constructs
the registry/service/server stack *on that loop*, binds an ephemeral
port, and exposes blocking ``start()``/``close()`` for synchronous test
code.  ``close()`` performs the same graceful drain as the CLI's SIGTERM
path, so the harness exercises the production shutdown sequence on every
test run.

Example
-------
::

    with InProcessServer({"default": db1()}) as server:
        # connect a plain blocking socket client to server.port
        ...
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Coroutine, Mapping

from repro.exceptions import EngineError
from repro.relational.database import Database
from repro.server.registry import EngineRegistry
from repro.server.service import MetaqueryServer, MetaqueryService

__all__ = ["InProcessServer"]


class InProcessServer:
    """Run the full service stack on a private event loop inside this process.

    Parameters
    ----------
    databases:
        The tenant table, as for :class:`~repro.server.registry.EngineRegistry`.
    max_concurrency / engine_kwargs:
        Forwarded to the registry (and thence to every tenant engine).
    rate / burst / max_streams / max_body / default_tenant:
        Forwarded to :class:`~repro.server.service.MetaqueryService`;
        ``rate=None`` (the default here, unlike the CLI) disables rate
        limiting so functional tests are never throttled by accident.
    drain_timeout:
        Upper bound on the graceful drain performed by :meth:`close`.
    """

    def __init__(
        self,
        databases: Mapping[str, Database],
        max_concurrency: int = 8,
        rate: float | None = None,
        burst: float = 20.0,
        max_streams: int = 8,
        max_body: int | None = None,
        default_tenant: str = "default",
        drain_timeout: float = 10.0,
        **engine_kwargs: Any,
    ) -> None:
        self._databases = dict(databases)
        self._max_concurrency = max_concurrency
        self._rate = rate
        self._burst = burst
        self._max_streams = max_streams
        self._max_body = max_body
        self._default_tenant = default_tenant
        self._drain_timeout = drain_timeout
        self._engine_kwargs = dict(engine_kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: MetaqueryServer | None = None

    # ------------------------------------------------------------------
    def start(self, timeout: float = 10.0) -> "InProcessServer":
        """Start the loop thread, build the stack on it, bind the port."""
        if self._thread is not None:
            raise EngineError("in-process server already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._build_and_start(), self._loop)
        try:
            self._server = future.result(timeout)
        except Exception:
            self._stop_loop()
            raise
        return self

    async def _build_and_start(self) -> MetaqueryServer:
        """Construct registry/service/server on the loop and bind."""
        registry = EngineRegistry(
            self._databases,
            max_concurrency=self._max_concurrency,
            **self._engine_kwargs,
        )
        service_kwargs: dict[str, Any] = {
            "rate": self._rate,
            "burst": self._burst,
            "max_streams": self._max_streams,
            "default_tenant": self._default_tenant,
        }
        if self._max_body is not None:
            service_kwargs["max_body"] = self._max_body
        service = MetaqueryService(registry, **service_kwargs)
        server = MetaqueryServer(service, host="127.0.0.1", port=0)
        await server.start()
        return server

    # ------------------------------------------------------------------
    @property
    def server(self) -> MetaqueryServer:
        """The running :class:`MetaqueryServer` (loop-thread owned)."""
        if self._server is None:
            raise EngineError("in-process server not started")
        return self._server

    @property
    def service(self) -> MetaqueryService:
        """The running service (for registry/limiter introspection)."""
        return self.server.service

    @property
    def host(self) -> str:
        """The bound interface (always loopback)."""
        return self.server.host

    @property
    def port(self) -> int:
        """The ephemeral port the server bound."""
        return self.server.port

    def run(self, coro: Coroutine[Any, Any, Any], timeout: float = 10.0) -> Any:
        """Run a coroutine on the server's loop and block for its result.

        The escape hatch for tests that need loop-side state (e.g. awaiting
        ``engine.drain()`` or reading an engine's stream stats race-free).
        """
        if self._loop is None:
            raise EngineError("in-process server not started")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    # ------------------------------------------------------------------
    def _stop_loop(self) -> None:
        """Stop and join the loop thread (idempotent)."""
        loop, self._loop = self._loop, None
        thread, self._thread = self._thread, None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=10.0)
        if loop is not None:
            loop.close()

    def close(self) -> None:
        """Graceful shutdown: drain streams, close engines, stop the loop."""
        server, self._server = self._server, None
        if server is not None and self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                server.aclose(drain_timeout=self._drain_timeout), self._loop
            ).result(self._drain_timeout + 10.0)
        self._stop_loop()

    def __enter__(self) -> "InProcessServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._server is not None else "stopped"
        return f"InProcessServer({state}, tenants={sorted(self._databases)})"
