"""A labelled hypergraph: named hyperedges over opaque vertices.

Edges carry labels (typically the index or identity of the literal scheme
they come from) because distinct literal schemes may span the same vertex
set; the GYO reduction and join-tree construction must treat them as
distinct edges.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping

from repro.exceptions import DecompositionError

__all__ = ["Hypergraph", "hypergraph_from_edge_sets"]

Vertex = Hashable
Label = Hashable


class Hypergraph:
    """A hypergraph ``H = (V, E)`` with labelled edges.

    Parameters
    ----------
    edges:
        Mapping from edge label to an iterable of vertices.
    vertices:
        Optional extra isolated vertices not covered by any edge.
    """

    def __init__(
        self,
        edges: Mapping[Label, Iterable[Vertex]] | None = None,
        vertices: Iterable[Vertex] = (),
    ) -> None:
        self._edges: dict[Label, frozenset[Vertex]] = {}
        if edges:
            for label, verts in edges.items():
                self.add_edge(label, verts)
        self._extra_vertices: set[Vertex] = set(vertices)

    # ------------------------------------------------------------------
    def add_edge(self, label: Label, vertices: Iterable[Vertex]) -> None:
        """Add an edge under a fresh label."""
        if label in self._edges:
            raise DecompositionError(f"edge label {label!r} already present")
        self._edges[label] = frozenset(vertices)

    def remove_edge(self, label: Label) -> None:
        """Remove the edge with the given label."""
        if label not in self._edges:
            raise DecompositionError(f"no edge labelled {label!r}")
        del self._edges[label]

    # ------------------------------------------------------------------
    @property
    def edges(self) -> dict[Label, frozenset[Vertex]]:
        """A copy of the label -> vertex-set mapping."""
        return dict(self._edges)

    @property
    def edge_labels(self) -> tuple[Label, ...]:
        """Edge labels in insertion order."""
        return tuple(self._edges)

    def edge(self, label: Label) -> frozenset[Vertex]:
        """The vertex set of the edge with the given label."""
        try:
            return self._edges[label]
        except KeyError:
            raise DecompositionError(f"no edge labelled {label!r}") from None

    @property
    def vertices(self) -> frozenset[Vertex]:
        """All vertices (covered by edges or explicitly isolated)."""
        covered: set[Vertex] = set(self._extra_vertices)
        for verts in self._edges.values():
            covered |= verts
        return frozenset(covered)

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[Label]:
        return iter(self._edges)

    def __contains__(self, label: Label) -> bool:
        return label in self._edges

    def is_empty(self) -> bool:
        """True when the hypergraph has no edges left (GYO success condition)."""
        return not self._edges

    def copy(self) -> "Hypergraph":
        """A shallow copy (edges are immutable frozensets)."""
        clone = Hypergraph()
        clone._edges = dict(self._edges)
        clone._extra_vertices = set(self._extra_vertices)
        return clone

    # ------------------------------------------------------------------
    def edges_containing(self, vertex: Vertex) -> tuple[Label, ...]:
        """Labels of all edges containing the given vertex."""
        return tuple(label for label, verts in self._edges.items() if vertex in verts)

    def is_isolated(self, label: Label) -> bool:
        """True when the edge shares no vertex with any *other* edge."""
        verts = self.edge(label)
        for other, other_verts in self._edges.items():
            if other != label and verts & other_verts:
                return False
        return True

    def find_witness(self, label: Label) -> Label | None:
        """Return a witness making ``label`` an ear, or None.

        An edge ``e`` is an ear if there is a distinct edge ``w`` (the
        witness) such that no vertex of ``e - w`` belongs to any other edge
        (Definition 3.30).
        """
        verts = self.edge(label)
        exclusive = set(verts)
        for other, other_verts in self._edges.items():
            if other != label:
                exclusive -= other_verts
        # 'exclusive' holds the vertices of e appearing in no other edge;
        # a witness must cover everything else.
        rest = verts - exclusive
        for other, other_verts in self._edges.items():
            if other != label and rest <= other_verts:
                return other
        return None

    def connected_components(self) -> list[tuple[Label, ...]]:
        """Partition of the edge labels into variable-connected components."""
        labels = list(self._edges)
        unvisited = set(labels)
        components: list[tuple[Label, ...]] = []
        while unvisited:
            start = next(iter(unvisited))
            stack = [start]
            component = []
            unvisited.discard(start)
            while stack:
                current = stack.pop()
                component.append(current)
                current_verts = self._edges[current]
                for other in list(unvisited):
                    if current_verts & self._edges[other]:
                        unvisited.discard(other)
                        stack.append(other)
            components.append(tuple(sorted(component, key=str)))
        return components

    def primal_graph_edges(self) -> set[tuple[Vertex, Vertex]]:
        """Edges of the primal (Gaifman) graph: vertex pairs co-occurring in a hyperedge."""
        result: set[tuple[Vertex, Vertex]] = set()
        for verts in self._edges.values():
            ordered = sorted(verts, key=str)
            for i, u in enumerate(ordered):
                for v in ordered[i + 1 :]:
                    result.add((u, v))
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{label}:{sorted(map(str, verts))}" for label, verts in self._edges.items())
        return f"Hypergraph({parts})"


def hypergraph_from_edge_sets(edge_sets: Iterable[Iterable[Vertex]]) -> Hypergraph:
    """Build a hypergraph from anonymous edges, labelling them ``e0, e1, ...``."""
    hg = Hypergraph()
    for i, verts in enumerate(edge_sets):
        hg.add_edge(f"e{i}", verts)
    return hg
