"""Hypertree decompositions (Definitions 4.6 and 4.7, Examples 4.8-4.11).

A hypertree decomposition of a set of literal schemes ``Q`` is a rooted tree
whose nodes ``p`` carry a variable set ``χ(p)`` and a literal-scheme set
``λ(p)`` subject to the four conditions of Definition 4.7.  Its *width* is
``max_p |λ(p)|``; the *hypertree width* ``hw(Q)`` is the minimum width over
all decompositions, and ``hw(Q) = 1`` exactly when ``Q`` is semi-acyclic.

The search below is a memoised variant of det-k-decomp: for increasing
target width ``k`` it tries to split the query into components guarded by at
most ``k`` literal schemes.  Metaquery bodies are tiny (a handful of
schemes), so exhaustive subset enumeration per node is perfectly adequate —
the benchmarks that sweep data size keep the query fixed, matching the data
complexity setting of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from repro.exceptions import DecompositionError
from repro.hypergraph.hypergraph import Hypergraph, Label, Vertex
from repro.hypergraph.jointree import build_join_tree

__all__ = ["HypertreeNode", "HypertreeDecomposition", "decompose", "hypertree_width"]


@dataclass
class HypertreeNode:
    """One node of a hypertree decomposition.

    Attributes
    ----------
    chi:
        The variable set ``χ(p)``.
    lam:
        The labels of the literal schemes in ``λ(p)``.
    children:
        The child nodes.
    """

    chi: frozenset[Vertex]
    lam: frozenset[Label]
    children: list["HypertreeNode"] = field(default_factory=list)

    def walk(self) -> Iterable["HypertreeNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.walk()

    def chi_subtree(self) -> frozenset[Vertex]:
        """``χ(T_p)``: the union of χ over the subtree rooted here."""
        result: set[Vertex] = set()
        for node in self.walk():
            result |= node.chi
        return frozenset(result)


class HypertreeDecomposition:
    """A complete hypertree decomposition ``⟨T, χ, λ⟩`` of a labelled edge set."""

    def __init__(self, root: HypertreeNode, edges: Mapping[Label, frozenset[Vertex]]) -> None:
        self.root = root
        self.edges: dict[Label, frozenset[Vertex]] = {
            label: frozenset(verts) for label, verts in edges.items()
        }

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """``max_p |λ(p)|``."""
        return max(len(node.lam) for node in self.root.walk())

    @property
    def nodes(self) -> list[HypertreeNode]:
        """All nodes in pre-order."""
        return list(self.root.walk())

    def node_count(self) -> int:
        """Number of decomposition nodes."""
        return len(self.nodes)

    def covering_node(self, label: Label) -> HypertreeNode:
        """A node ``p`` with ``varo(label) ⊆ χ(p)`` and ``label ∈ λ(p)``.

        Completeness (Definition 4.7, last clause) guarantees such a node
        exists for every literal scheme.
        """
        verts = self.edges[label]
        for node in self.root.walk():
            if label in node.lam and verts <= node.chi:
                return node
        raise DecompositionError(f"decomposition is not complete for edge {label!r}")

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`DecompositionError` unless all four conditions hold.

        Checks, for the edge set the decomposition was built from:

        1. every literal scheme's variables are covered by some ``χ(p)``;
        2. for every variable, the nodes whose ``χ`` contains it form a
           connected subtree;
        3. ``χ(p) ⊆ varo(λ(p))`` for every node;
        4. ``varo(λ(p)) ∩ χ(T_p) ⊆ χ(p)`` for every node;

        plus completeness: every scheme has a node with ``λ ∋ scheme`` and
        ``χ ⊇`` its variables.
        """
        nodes = self.nodes
        # Condition 1 + completeness.
        for label, verts in self.edges.items():
            if not any(verts <= node.chi for node in nodes):
                raise DecompositionError(f"condition 1 violated for edge {label!r}")
            self.covering_node(label)
        # Condition 2: connectedness of {p : v in chi(p)}.
        parent_of: dict[int, int | None] = {}
        indexed: list[HypertreeNode] = []

        def index(node: HypertreeNode, parent_idx: int | None) -> None:
            parent_of[len(indexed)] = parent_idx
            indexed.append(node)
            my_idx = len(indexed) - 1
            for child in node.children:
                index(child, my_idx)

        index(self.root, None)
        all_vertices: set[Vertex] = set()
        for verts in self.edges.values():
            all_vertices |= verts
        for vertex in all_vertices:
            holders = [i for i, node in enumerate(indexed) if vertex in node.chi]
            if not holders:
                continue
            holder_set = set(holders)
            components = 0
            seen: set[int] = set()
            adjacency: dict[int, set[int]] = {i: set() for i in holders}
            for i in holders:
                par = parent_of[i]
                if par is not None and par in holder_set:
                    adjacency[i].add(par)
                    adjacency[par].add(i)
            for i in holders:
                if i in seen:
                    continue
                components += 1
                stack = [i]
                seen.add(i)
                while stack:
                    current = stack.pop()
                    for neighbour in adjacency[current]:
                        if neighbour not in seen:
                            seen.add(neighbour)
                            stack.append(neighbour)
            if components > 1:
                raise DecompositionError(f"condition 2 violated for vertex {vertex!r}")
        # Conditions 3 and 4.
        for node in nodes:
            lam_vars: set[Vertex] = set()
            for label in node.lam:
                lam_vars |= self.edges[label]
            if not node.chi <= lam_vars:
                raise DecompositionError("condition 3 violated: chi not covered by lambda")
            if not (lam_vars & node.chi_subtree()) <= node.chi:
                raise DecompositionError("condition 4 (descendant condition) violated")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HypertreeDecomposition(width={self.width}, nodes={self.node_count()})"


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def _edge_vars(edges: Mapping[Label, frozenset[Vertex]], labels: Iterable[Label]) -> frozenset[Vertex]:
    result: set[Vertex] = set()
    for label in labels:
        result |= edges[label]
    return frozenset(result)


def _components(
    edges: Mapping[Label, frozenset[Vertex]],
    candidate_labels: frozenset[Label],
    separator: frozenset[Vertex],
) -> list[frozenset[Label]]:
    """Variable-connected components of ``candidate_labels`` after removing ``separator``."""
    remaining = {
        label for label in candidate_labels if not edges[label] <= separator
    }
    components: list[frozenset[Label]] = []
    while remaining:
        start = next(iter(remaining))
        remaining.discard(start)
        component = {start}
        frontier_vars = set(edges[start]) - separator
        changed = True
        while changed:
            changed = False
            for label in list(remaining):
                if (edges[label] - separator) & frontier_vars:
                    remaining.discard(label)
                    component.add(label)
                    frontier_vars |= edges[label] - separator
                    changed = True
        components.append(frozenset(component))
    return components


def _decompose_width_one(edges: Mapping[Label, frozenset[Vertex]]) -> HypertreeDecomposition | None:
    """Width-1 decomposition straight from a join tree, when one exists."""
    hg = Hypergraph(dict(edges))
    tree = build_join_tree(hg)
    if tree is None:
        return None

    def make(label: Label) -> HypertreeNode:
        node = HypertreeNode(chi=edges[label], lam=frozenset({label}))
        node.children = [make(child) for child in tree.children(label)]
        return node

    return HypertreeDecomposition(make(tree.root), edges)


def _search(
    edges: Mapping[Label, frozenset[Vertex]],
    component: frozenset[Label],
    connector: frozenset[Vertex],
    width: int,
    memo: dict[tuple[frozenset[Label], frozenset[Vertex]], HypertreeNode | None],
) -> HypertreeNode | None:
    """det-k-decomp search: decompose ``component`` under connector variables."""
    key = (component, connector)
    if key in memo:
        cached = memo[key]
        return _clone(cached) if cached is not None else None

    all_labels = tuple(edges)
    component_vars = _edge_vars(edges, component)
    for size in range(1, width + 1):
        for lam in itertools.combinations(all_labels, size):
            lam_set = frozenset(lam)
            lam_vars = _edge_vars(edges, lam_set)
            if not connector <= lam_vars:
                continue
            chi = lam_vars & (connector | component_vars)
            if not connector <= chi:
                continue
            # every edge of the component must either be covered or live in a
            # sub-component guarded by chi
            sub_components = _components(edges, component, chi)
            # progress guard: a candidate that leaves some sub-component equal
            # to the current component would recurse forever without shrinking
            # the problem, so it cannot be part of a valid decomposition here.
            if any(sub == component for sub in sub_components):
                continue
            children: list[HypertreeNode] = []
            ok = True
            for sub in sub_components:
                sub_connector = _edge_vars(edges, sub) & chi
                child = _search(edges, sub, sub_connector, width, memo)
                if child is None:
                    ok = False
                    break
                children.append(child)
            if not ok:
                continue
            node = HypertreeNode(chi=chi, lam=lam_set, children=children)
            memo[key] = node
            return _clone(node)
    memo[key] = None
    return None


def _clone(node: HypertreeNode) -> HypertreeNode:
    return HypertreeNode(
        chi=node.chi, lam=node.lam, children=[_clone(child) for child in node.children]
    )


def _complete(decomposition: HypertreeDecomposition) -> HypertreeDecomposition:
    """Attach a ``(χ=vars(e), λ={e})`` child for every scheme lacking a covering node."""
    for label, verts in decomposition.edges.items():
        try:
            decomposition.covering_node(label)
            continue
        except DecompositionError:
            pass
        host = None
        for node in decomposition.root.walk():
            if verts <= node.chi:
                host = node
                break
        if host is None:
            raise DecompositionError(f"no node covers edge {label!r}; decomposition invalid")
        host.children.append(HypertreeNode(chi=frozenset(verts), lam=frozenset({label})))
    return decomposition


def decompose(
    labelled_variable_sets: Mapping[Label, Iterable[Vertex]],
    max_width: int | None = None,
) -> HypertreeDecomposition:
    """Compute a minimum-width complete hypertree decomposition.

    Parameters
    ----------
    labelled_variable_sets:
        ``{scheme label: iterable of its (ordinary) variables}``.
    max_width:
        Optional cap on the width to try; defaults to the number of schemes
        (a width-``m`` decomposition always exists: put everything in one
        root node).

    Raises
    ------
    DecompositionError
        If no decomposition of width ``<= max_width`` exists.
    """
    edges: dict[Label, frozenset[Vertex]] = {
        label: frozenset(verts) for label, verts in labelled_variable_sets.items()
    }
    if not edges:
        raise DecompositionError("cannot decompose an empty scheme set")
    limit = max_width if max_width is not None else len(edges)

    width_one = _decompose_width_one(edges)
    if width_one is not None:
        return _complete(width_one)
    if limit < 2:
        raise DecompositionError("scheme set is cyclic; no width-1 decomposition exists")

    all_labels = frozenset(edges)
    for width in range(2, limit + 1):
        memo: dict[tuple[frozenset[Label], frozenset[Vertex]], HypertreeNode | None] = {}
        root = _search(edges, all_labels, frozenset(), width, memo)
        if root is not None:
            decomposition = HypertreeDecomposition(root, edges)
            return _complete(decomposition)
    raise DecompositionError(f"no hypertree decomposition of width <= {limit} found")


def hypertree_width(labelled_variable_sets: Mapping[Label, Iterable[Vertex]]) -> int:
    """The hypertree width ``hw(Q)`` of a labelled scheme set."""
    return decompose(labelled_variable_sets).width
