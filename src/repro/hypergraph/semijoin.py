"""Semijoin programs, full reducers and Yannakakis-style acyclic evaluation.

Definitions 4.1 and 4.4 of the paper: a *semijoin step* is ``ri := ri ⋉ rj``;
a *full reducer* is a semijoin program that leaves every relation reduced
w.r.t. the others, and it exists exactly for semi-acyclic atom sets.  For a
rooted join tree, the full reducer is the concatenation of a bottom-up
*first half* and its reversed/flipped *second half* (Example 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import DecompositionError
from repro.hypergraph.jointree import JoinTree
from repro.hypergraph.hypergraph import Label
from repro.relational.algebra import natural_join_all
from repro.relational.relation import Relation

__all__ = [
    "SemijoinStep",
    "first_half",
    "second_half",
    "full_reducer",
    "execute_semijoin_program",
    "execute_full_reducer",
    "is_reduced",
    "yannakakis_join",
]


@dataclass(frozen=True)
class SemijoinStep:
    """One step ``target := target ⋉ source`` of a semijoin program."""

    target: Label
    source: Label

    def __str__(self) -> str:
        return f"{self.target} := {self.target} ⋉ {self.source}"


def first_half(tree: JoinTree) -> list[SemijoinStep]:
    """The bottom-up half of the full reducer for a rooted join tree.

    Visiting nodes leaves-first, each node absorbs a semijoin from every one
    of its children: ``parent := parent ⋉ child``.
    """
    steps: list[SemijoinStep] = []
    for node in tree.bottom_up():
        for child in tree.children(node):
            steps.append(SemijoinStep(target=node, source=child))
    return steps


def second_half(tree: JoinTree) -> list[SemijoinStep]:
    """The top-down half: reverse the first half and swap the roles."""
    return [SemijoinStep(target=step.source, source=step.target) for step in reversed(first_half(tree))]


def full_reducer(tree: JoinTree) -> list[SemijoinStep]:
    """The full reducer: first half followed by second half (Example 4.5)."""
    return first_half(tree) + second_half(tree)


def execute_semijoin_program(
    steps: Sequence[SemijoinStep], relations: Mapping[Label, Relation]
) -> dict[Label, Relation]:
    """Run a semijoin program over a ``{label: relation}`` dictionary.

    The input mapping is not modified; a new mapping with the (possibly)
    reduced relations is returned.
    """
    state: dict[Label, Relation] = dict(relations)
    for step in steps:
        if step.target not in state or step.source not in state:
            raise DecompositionError(f"semijoin step {step} references an unknown relation")
        state[step.target] = state[step.target].semijoin(state[step.source])
    return state


def execute_full_reducer(
    tree: JoinTree, relations: Mapping[Label, Relation]
) -> dict[Label, Relation]:
    """Fully reduce the relations attached to a join tree's nodes."""
    missing = [label for label in tree.nodes if label not in relations]
    if missing:
        raise DecompositionError(f"relations missing for join tree nodes: {missing}")
    return execute_semijoin_program(full_reducer(tree), relations)


def is_reduced(relations: Mapping[Label, Relation]) -> bool:
    """Check Definition 4.1: every relation equals the projection of the full join.

    Quadratic in the join size; used by tests and the ablation benchmarks,
    not by the engine itself.
    """
    rels = list(relations.values())
    if not rels:
        return True
    joined = natural_join_all(rels)
    for relation in rels:
        projected = joined.project([c for c in relation.columns if c in joined.columns])
        reduced = {tuple(row) for row in projected}
        original = {
            tuple(row[relation.columns.index(c)] for c in relation.columns if c in joined.columns)
            for row in relation
        }
        if original != reduced:
            return False
    return True


def yannakakis_join(tree: JoinTree, relations: Mapping[Label, Relation]) -> Relation:
    """Compute the full natural join of the node relations via Yannakakis.

    After running the full reducer, joining bottom-up never produces
    dangling tuples, so intermediate results stay bounded by the output plus
    input size — the hallmark of acyclic-query evaluation (and the engine
    behind the LOGCFL membership of Theorem 3.32 in the sequential world).
    """
    reduced = execute_full_reducer(tree, relations)
    # Join children into parents bottom-up.
    accumulated: dict[Label, Relation] = dict(reduced)
    for node in tree.bottom_up():
        for child in tree.children(node):
            accumulated[node] = accumulated[node].natural_join(accumulated[child])
    return accumulated[tree.root]
