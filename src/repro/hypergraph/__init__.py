"""Hypergraph machinery: acyclicity, join trees, hypertree decompositions.

The tractability results of the paper all hinge on structural properties of
the hypergraph associated with a (meta)query:

* **GYO reduction** (Definition 3.30) decides hypergraph acyclicity and
  therefore metaquery acyclicity / semi-acyclicity (Definition 3.31);
* **join trees** (Definition 4.2) exist exactly for semi-acyclic atom sets
  and drive the full-reducer semijoin programs (Definition 4.4, Example 4.5);
* **hypertree decompositions** (Definitions 4.6/4.7, Examples 4.8-4.11)
  generalise join trees to cyclic queries and give the ``d^c log d`` bound of
  Theorem 4.12 used by the FindRules algorithm (Figure 4).

The package is deliberately generic: hyperedges are labelled sets of opaque
vertices, so the same code serves conjunctive queries (vertices = variables)
and metaqueries (vertices = ordinary and/or predicate variables).
"""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.gyo import GYOResult, gyo_reduction, is_acyclic
from repro.hypergraph.jointree import JoinTree, build_join_tree
from repro.hypergraph.decomposition import (
    HypertreeDecomposition,
    HypertreeNode,
    decompose,
    hypertree_width,
)
from repro.hypergraph.semijoin import (
    SemijoinStep,
    execute_full_reducer,
    execute_semijoin_program,
    full_reducer,
    yannakakis_join,
)

__all__ = [
    "Hypergraph",
    "GYOResult",
    "gyo_reduction",
    "is_acyclic",
    "JoinTree",
    "build_join_tree",
    "HypertreeNode",
    "HypertreeDecomposition",
    "decompose",
    "hypertree_width",
    "SemijoinStep",
    "full_reducer",
    "execute_semijoin_program",
    "execute_full_reducer",
    "yannakakis_join",
]
