"""Join trees for semi-acyclic sets of literal schemes (Definition 4.2).

A join tree is a tree whose nodes are the literal schemes (edge labels) of a
query such that for every variable ``X``, the nodes whose scheme mentions
``X`` form a connected subtree.  A set of atoms has a join tree iff it is
(semi-)acyclic; the construction below derives one from the GYO elimination
sequence: when an ear ``e`` is removed with witness ``w``, ``w`` becomes the
parent of ``e``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import DecompositionError
from repro.hypergraph.gyo import gyo_reduction
from repro.hypergraph.hypergraph import Hypergraph, Label, Vertex

__all__ = ["JoinTree", "build_join_tree", "join_tree_for_variable_sets"]


class JoinTree:
    """A rooted tree over edge labels, with the vertex sets attached.

    Parameters
    ----------
    root:
        The label of the root node.
    parent:
        Mapping child-label -> parent-label for every non-root node.
    edge_vertices:
        Mapping label -> vertex set (the variables of each literal scheme).
    """

    def __init__(
        self,
        root: Label,
        parent: Mapping[Label, Label],
        edge_vertices: Mapping[Label, frozenset[Vertex]],
    ) -> None:
        self.root = root
        self.parent: dict[Label, Label] = dict(parent)
        self.edge_vertices: dict[Label, frozenset[Vertex]] = {
            label: frozenset(verts) for label, verts in edge_vertices.items()
        }
        self._children: dict[Label, list[Label]] = {label: [] for label in self.edge_vertices}
        for child, par in self.parent.items():
            if par not in self._children:
                raise DecompositionError(f"parent {par!r} of {child!r} is not a node")
            self._children[par].append(child)
        if root not in self.edge_vertices:
            raise DecompositionError(f"root {root!r} is not a node")
        reachable = set(self._walk_preorder(root))
        if reachable != set(self.edge_vertices):
            missing = set(self.edge_vertices) - reachable
            raise DecompositionError(f"join tree is not connected; unreachable nodes: {missing}")

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[Label, ...]:
        """All node labels."""
        return tuple(self.edge_vertices)

    def children(self, label: Label) -> tuple[Label, ...]:
        """Children of a node."""
        return tuple(self._children[label])

    def vertices_of(self, label: Label) -> frozenset[Vertex]:
        """The vertex (variable) set attached to a node."""
        return self.edge_vertices[label]

    def _walk_preorder(self, start: Label) -> Iterator[Label]:
        stack = [start]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(self._children[current])

    def preorder(self) -> list[Label]:
        """Root-first traversal order."""
        return list(self._walk_preorder(self.root))

    def bottom_up(self) -> list[Label]:
        """Leaves-first traversal order (reverse preorder)."""
        return list(reversed(self.preorder()))

    def tree_edges(self) -> list[tuple[Label, Label]]:
        """All (parent, child) pairs."""
        return [(par, child) for child, par in self.parent.items()]

    def rerooted(self, new_root: Label) -> "JoinTree":
        """The same tree rooted at a different node."""
        if new_root not in self.edge_vertices:
            raise DecompositionError(f"{new_root!r} is not a node of the join tree")
        adjacency: dict[Label, set[Label]] = {label: set() for label in self.edge_vertices}
        for child, par in self.parent.items():
            adjacency[child].add(par)
            adjacency[par].add(child)
        new_parent: dict[Label, Label] = {}
        visited = {new_root}
        stack = [new_root]
        while stack:
            current = stack.pop()
            for neighbour in adjacency[current]:
                if neighbour not in visited:
                    visited.add(neighbour)
                    new_parent[neighbour] = current
                    stack.append(neighbour)
        return JoinTree(new_root, new_parent, self.edge_vertices)

    # ------------------------------------------------------------------
    def is_valid(self) -> bool:
        """Check the connectedness property of Definition 4.2.

        For every vertex, the set of nodes mentioning it must induce a
        connected subtree.
        """
        all_vertices: set[Vertex] = set()
        for verts in self.edge_vertices.values():
            all_vertices |= verts
        for vertex in all_vertices:
            holders = {label for label, verts in self.edge_vertices.items() if vertex in verts}
            if not holders:
                continue
            # The subtree induced by `holders` is connected iff walking up
            # from every holder to the root, the first holder ancestor is
            # reached without ambiguity; equivalently the holders minus one
            # "highest" node each have a parent whose path to the holder set
            # stays in the holder set.  Simplest check: count connected
            # components in the induced subgraph.
            components = 0
            seen: set[Label] = set()
            adjacency: dict[Label, set[Label]] = {label: set() for label in holders}
            for child, par in self.parent.items():
                if child in holders and par in holders:
                    adjacency[child].add(par)
                    adjacency[par].add(child)
            for label in holders:
                if label in seen:
                    continue
                components += 1
                stack = [label]
                seen.add(label)
                while stack:
                    current = stack.pop()
                    for neighbour in adjacency[current]:
                        if neighbour not in seen:
                            seen.add(neighbour)
                            stack.append(neighbour)
            if components > 1:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JoinTree(root={self.root!r}, nodes={len(self.edge_vertices)})"


def build_join_tree(hypergraph: Hypergraph, root: Label | None = None) -> JoinTree | None:
    """Build a join tree for a hypergraph, or return None when it is cyclic.

    The construction follows the GYO elimination order: removing ear ``e``
    with witness ``w`` makes ``w`` the parent of ``e``.  Edges removed as
    isolated become roots of their own components; all component roots are
    attached under a single global root (this preserves the connectedness
    property because separate components share no vertices).
    """
    if hypergraph.is_empty():
        return None
    result = gyo_reduction(hypergraph)
    if not result.acyclic:
        return None

    parent: dict[Label, Label] = {}
    component_roots: list[Label] = []
    for ear, witness in result.eliminations:
        if witness is None:
            component_roots.append(ear)
        else:
            parent[ear] = witness

    if not component_roots:  # pragma: no cover - defensive; GYO always ends with an isolated edge
        raise DecompositionError("GYO elimination produced no component root")

    global_root = component_roots[-1]
    for other in component_roots:
        if other != global_root:
            parent[other] = global_root

    tree = JoinTree(global_root, parent, hypergraph.edges)
    if root is not None and root != global_root:
        tree = tree.rerooted(root)
    return tree


def join_tree_for_variable_sets(
    labelled_variable_sets: Mapping[Label, Iterable[Vertex]],
    root: Label | None = None,
) -> JoinTree | None:
    """Convenience: build a join tree directly from ``{label: variables}``."""
    hg = Hypergraph({label: frozenset(verts) for label, verts in labelled_variable_sets.items()})
    return build_join_tree(hg, root=root)
