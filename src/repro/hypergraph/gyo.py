"""The GYO (Graham / Yu-Ozsoyoglu) reduction and hypergraph acyclicity.

Implements Definition 3.30 of the paper: repeatedly (1) remove isolated
edges, (2) pick an ear and remove it, until no ear remains; the hypergraph is
acyclic iff the derived hypergraph is empty.  The elimination sequence of
(ear, witness) pairs is also returned because the join-tree construction
re-uses it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hypergraph.hypergraph import Hypergraph, Label

__all__ = ["GYOResult", "gyo_reduction", "is_acyclic"]


@dataclass
class GYOResult:
    """Outcome of a GYO reduction.

    Attributes
    ----------
    acyclic:
        True when the reduction emptied the hypergraph.
    residual:
        The derived hypergraph ``GYO(H)`` (empty iff acyclic).
    eliminations:
        The sequence of ``(ear_label, witness_label)`` pairs in removal
        order.  Isolated edges are recorded with witness ``None``.
    """

    acyclic: bool
    residual: Hypergraph
    eliminations: list[tuple[Label, Label | None]] = field(default_factory=list)


def gyo_reduction(hypergraph: Hypergraph) -> GYOResult:
    """Run the GYO reduction and return the full :class:`GYOResult`.

    The input hypergraph is not modified.
    """
    working = hypergraph.copy()
    eliminations: list[tuple[Label, Label | None]] = []

    changed = True
    while changed and not working.is_empty():
        changed = False

        # Step 1: remove isolated edges (edges sharing no vertex with others).
        # When only one edge remains it is isolated by definition.
        for label in list(working.edge_labels):
            if working.is_isolated(label):
                working.remove_edge(label)
                eliminations.append((label, None))
                changed = True

        if working.is_empty():
            break

        # Step 2: remove one ear (and loop back to step 1).
        for label in list(working.edge_labels):
            witness = working.find_witness(label)
            if witness is not None:
                working.remove_edge(label)
                eliminations.append((label, witness))
                changed = True
                break

    return GYOResult(acyclic=working.is_empty(), residual=working, eliminations=eliminations)


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """True iff the hypergraph is acyclic (its GYO reduction is empty)."""
    return gyo_reduction(hypergraph).acyclic
