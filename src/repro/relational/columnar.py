"""Columnar storage and vectorized kernels behind the ``Relation`` probe API.

This module is the "raw speed" layer named by the ROADMAP: a
:class:`ColumnStore` holds a relation as dictionary-encoded ``array('q')``
int64 columns (one flat buffer per attribute, codes assigned by the shared
:class:`~repro.relational.dictionary.ValueDictionary`), and the join-shaped
algebra operations — natural join, semijoin/antijoin, equality selection,
projection, and the constants/repeated-variable filter of atom evaluation —
run as vectorized kernels over those columns instead of per-tuple Python
dict probes.

Two backends implement every kernel:

* **numpy** (when importable): sort + ``searchsorted`` hash-free joins,
  boolean-mask selections, ``np.unique`` projection dedup.  The canonical
  storage stays ``array('q')``; NumPy operates on zero-copy
  ``np.frombuffer`` views and results are copied back into flat arrays,
  so stores pickle identically on both backends.
* **stdlib** (mandatory fallback): int-keyed hash probes over the
  int-array bucket indexes of :func:`repro.relational.indexes.build_int_index`.
  Selected by default when NumPy is absent, or forced with
  ``REPRO_COLUMNAR_BACKEND=stdlib`` / :func:`use_backend` so the fallback
  is testable on machines that *do* have NumPy.

Correctness notes the kernels rely on (and the property suite pins):

* Operand rows are distinct (``Relation`` enforces set semantics), and a
  natural join of distinct-row operands yields distinct rows — the output
  row determines the contributing pair — so the join kernel never dedups.
  Likewise semijoin/selection outputs are subsets, and the atom filter
  keeps the first occurrence of every variable, which together with the
  constant/repeat constraints determines the full input row.  Only general
  projection eliminates duplicates.
* Decoding produces tuples *equal* to the set-based path's tuples, and
  ``frozenset`` iteration order depends only on the elements — so every
  downstream iteration-order guarantee (streaming order, SSE wire bytes)
  is preserved byte-for-byte.  **Known exclusion:** the dictionary
  interns by semantic equality, so when *equal but distinguishable*
  values are split across relations (``True`` vs ``1`` vs ``1.0``),
  decoded kernel outputs carry the first-interned representative while
  the set-based path carries the operand row's own object — equal
  answers, but JSON renderings may differ (``true`` vs ``1``).  The
  dictionary raises its sticky ``unifies_representatives`` flag when
  this ever happens, and the relation layer then retains original
  tuples across pickling and cache eviction so *base-relation* values
  are never swapped; derived (kernel-output) rows keep the
  representative.  Databases with a single concrete type per semantic
  value — every shipped workload — are byte-identical throughout.
* Kernels joining stores encoded under *different* dictionaries (e.g. a
  relation shipped to a pool worker in its own pickle) first translate the
  right operand's codes into the left's dictionary; codes are append-only
  so translation never disturbs existing columns.

The columnar path is switched by the ``REPRO_COLUMNAR`` environment
variable (process default), :func:`set_default` (pool workers), and the
:func:`use_columnar` context manager / ``MetaqueryEngine(columnar=)``
(per-call ablation), mirroring the ``cache=`` / ``batch=`` / ``workers=``
switches.  Because generators do not own a context (PEP 568 is not
implemented), streaming evaluation wraps each pull with
:func:`iterate_with` instead of holding ``use_columnar`` open across
yields.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.relational import indexes
from repro.relational.dictionary import ValueDictionary

try:  # pragma: no cover - trivially one branch per environment
    import numpy

    _np: Any = numpy
except ModuleNotFoundError:  # pragma: no cover - the numpy-absent CI leg
    _np = None

__all__ = [
    "MIN_KERNEL_ROWS",
    "ColumnStore",
    "atom_select_store",
    "backend",
    "default_enabled",
    "enabled",
    "iterate_with",
    "join_stores",
    "project_store",
    "resolve",
    "select_eq_store",
    "semijoin_stores",
    "set_default",
    "use_backend",
    "use_columnar",
]

Row = tuple
T = TypeVar("T")

#: Kernels engage when the operands' combined row count reaches this bound
#: (or when an operand is already encoded); below it the per-tuple path is
#: faster than encoding.  Results are identical either way — tests force
#: the kernels by shrinking this to 0.
MIN_KERNEL_ROWS = 32


# ----------------------------------------------------------------------
# the ablation switch: environment default + per-context override
# ----------------------------------------------------------------------
def _env_flag(name: str, default: str) -> bool:
    return os.environ.get(name, default).strip().lower() not in {"0", "false", "no", "off"}


_DEFAULT_ENABLED: bool = _env_flag("REPRO_COLUMNAR", "1")
_OVERRIDE: ContextVar[bool | None] = ContextVar("repro_columnar_override", default=None)


def default_enabled() -> bool:
    """The process-wide default (``REPRO_COLUMNAR``, or :func:`set_default`)."""
    return _DEFAULT_ENABLED


def enabled() -> bool:
    """True when the columnar kernels are active in the current context."""
    override = _OVERRIDE.get()
    return _DEFAULT_ENABLED if override is None else override


def resolve(flag: bool | None) -> bool:
    """Coerce an engine-style tri-state flag: ``None`` means "current default"."""
    return enabled() if flag is None else bool(flag)


def set_default(flag: bool) -> None:
    """Set the process-wide default (used by pool worker initializers)."""
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(flag)


@contextmanager
def use_columnar(flag: bool = True) -> Iterator[None]:
    """Context manager forcing the columnar path on or off within the block."""
    token = _OVERRIDE.set(bool(flag))
    try:
        yield
    finally:
        _OVERRIDE.reset(token)


def iterate_with(flag: bool, factory: Callable[[], Iterator[T]]) -> Iterator[T]:
    """Drive the iterator built by ``factory`` with the switch pinned to ``flag``.

    A plain ``with use_columnar(flag): yield from it`` inside a generator
    would leak the override into the *caller's* context between yields
    (generators share their caller's context; PEP 568's generator-owned
    contexts were never implemented).  This wrapper sets and resets the
    override around each individual pull instead, so the setting applies
    exactly while evaluation code runs and never escapes.
    """
    iterator: Iterator[T] | None = None
    while True:
        token = _OVERRIDE.set(flag)
        try:
            if iterator is None:
                iterator = factory()
            try:
                item = next(iterator)
            except StopIteration:
                return
        finally:
            _OVERRIDE.reset(token)
        yield item


# ----------------------------------------------------------------------
# backend selection: numpy when importable, stdlib always available
# ----------------------------------------------------------------------
_FORCE_STDLIB: bool = os.environ.get("REPRO_COLUMNAR_BACKEND", "").strip().lower() == "stdlib"


def backend() -> str:
    """The active kernel backend: ``"numpy"`` or ``"stdlib"``."""
    return "numpy" if (_np is not None and not _FORCE_STDLIB) else "stdlib"


def _active_numpy() -> Any:
    """The numpy module when the numpy backend is active, else ``None``."""
    return None if _FORCE_STDLIB else _np


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Force the ``"stdlib"`` or ``"numpy"`` backend within the block (tests).

    Flips a module global, so this is not safe under concurrent evaluation
    in other threads; it exists so the mandatory stdlib fallback can be
    exercised on machines where NumPy is importable.  Requesting
    ``"numpy"`` when NumPy is absent raises.
    """
    global _FORCE_STDLIB
    if name not in ("numpy", "stdlib"):
        raise ValueError(f"unknown columnar backend {name!r}")
    if name == "numpy" and _np is None:
        raise RuntimeError("numpy backend requested but numpy is not importable")
    previous = _FORCE_STDLIB
    _FORCE_STDLIB = name == "stdlib"
    try:
        yield
    finally:
        _FORCE_STDLIB = previous


# ----------------------------------------------------------------------
# numpy <-> array('q') bridges (numpy backend only)
# ----------------------------------------------------------------------
def _as_np(np: Any, column: "array[int]") -> Any:
    """A zero-copy int64 view of a flat column (read-only is fine)."""
    if len(column) == 0:
        return np.empty(0, dtype=np.int64)
    return np.frombuffer(column, dtype=np.int64)


def _to_column(np: Any, values: Any) -> "array[int]":
    """Copy an int64 ndarray back into the canonical ``array('q')`` form."""
    out: "array[int]" = array("q")
    out.frombytes(np.ascontiguousarray(values, dtype=np.int64).tobytes())
    return out


def _gather(column: "array[int]", row_ids: Iterable[int]) -> "array[int]":
    """stdlib gather: the column values at the given row ids."""
    return array("q", (column[i] for i in row_ids))


class ColumnStore:
    """Dictionary-encoded columns of one relation: flat int64 buffers.

    ``columns`` is one ``array('q')`` per attribute; ``length`` is the row
    count (kept explicitly so zero-arity relations can distinguish the
    empty relation from the one containing the empty tuple).  The store
    lazily caches its decoded ``frozenset`` of value tuples and its
    int-array bucket indexes; both caches are dropped by :meth:`release`
    (cache eviction) and excluded from pickles.
    """

    __slots__ = ("dictionary", "columns", "length", "_indexes", "_decoded")

    def __init__(
        self,
        dictionary: ValueDictionary,
        columns: tuple["array[int]", ...],
        length: int,
    ) -> None:
        self.dictionary = dictionary
        self.columns = columns
        self.length = length
        self._indexes: dict[tuple[int, ...], dict[Any, "array[int]"]] | None = None
        self._decoded: frozenset[Row] | None = None
        assert all(len(column) == length for column in columns)

    @classmethod
    def from_rows(
        cls, dictionary: ValueDictionary, rows: Iterable[Row], arity: int
    ) -> "ColumnStore":
        """Encode distinct, schema-validated rows under ``dictionary``."""
        columns = tuple(array("q") for _ in range(arity))
        length = 0
        intern = dictionary.intern
        if arity == 1:
            column = columns[0]
            for row in rows:
                length += 1
                column.append(intern(row[0]))
        else:
            for row in rows:
                length += 1
                for column, value in zip(columns, row):
                    column.append(intern(value))
        return cls(dictionary, columns, length)

    @classmethod
    def empty(cls, dictionary: ValueDictionary, arity: int) -> "ColumnStore":
        """An empty store of the given arity."""
        return cls(dictionary, tuple(array("q") for _ in range(arity)), 0)

    # ------------------------------------------------------------------
    def decode(self) -> frozenset[Row]:
        """The rows as value tuples (cached; shared by every renamed view)."""
        decoded = self._decoded
        if decoded is None:
            if not self.columns:
                decoded = frozenset([()]) if self.length else frozenset()
            else:
                values = self.dictionary.values
                decoded = frozenset(
                    zip(*(map(values.__getitem__, column) for column in self.columns))
                )
            self._decoded = decoded
        return decoded

    def int_index(self, positions: tuple[int, ...]) -> dict[Any, "array[int]"]:
        """The cached int-array bucket index on the given column positions.

        Keys are int codes (single position) or tuples of codes; buckets
        are ``array('q')`` row ids — see
        :func:`repro.relational.indexes.build_int_index`.
        """
        cache = self._indexes
        if cache is None:
            cache = self._indexes = {}
        index = cache.get(positions)
        if index is None:
            index = cache[positions] = indexes.build_int_index(
                self.columns, positions, self.length
            )
        return index

    def release(self) -> None:
        """Drop the decoded-rows and bucket-index caches (cache eviction)."""
        self._indexes = None
        self._decoded = None

    def translated(self, dictionary: ValueDictionary) -> "ColumnStore":
        """This store re-encoded under another dictionary.

        Every value of the source dictionary is interned into the target
        (codes are append-only, so this is safe and idempotent), then the
        columns are mapped code-by-code.  Returns ``self`` when the target
        *is* this store's dictionary.
        """
        if dictionary is self.dictionary:
            return self
        intern = dictionary.intern
        mapping = array("q", (intern(value) for value in self.dictionary.values))
        np = _active_numpy()
        if np is not None and self.length:
            mapping_np = _as_np(np, mapping)
            columns = tuple(
                _to_column(np, mapping_np[_as_np(np, column)]) for column in self.columns
            )
        else:
            columns = tuple(_gather(mapping, column) for column in self.columns)
        return ColumnStore(dictionary, columns, self.length)

    # ------------------------------------------------------------------
    # pickling: codes + dictionary only; caches are rebuilt on demand
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple[ValueDictionary, tuple["array[int]", ...], int]:
        return (self.dictionary, self.columns, self.length)

    def __setstate__(
        self, state: tuple[ValueDictionary, tuple["array[int]", ...], int]
    ) -> None:
        self.dictionary, self.columns, self.length = state
        self._indexes = None
        self._decoded = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnStore({len(self.columns)} cols x {self.length} rows)"


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def _unified(left: ColumnStore, right: ColumnStore) -> ColumnStore:
    """The right operand re-encoded into the left's dictionary if needed."""
    if right.dictionary is left.dictionary:
        return right
    return right.translated(left.dictionary)


def _pack_codes(np: Any, groups: Sequence[list[Any]]) -> list[Any] | None:
    """Pack parallel multi-column code rows into single int64 keys, O(n).

    ``groups`` holds one key-column list per operand (equal column counts);
    each column position's stride is the joint code range across *all*
    groups, so equal rows — and only those — pack to the same key.  Codes
    are dense non-negative dictionary indices, which is what makes the
    mixed-radix packing injective.  Returns ``None`` when the packed range
    would overflow int64; callers then fall back to positional
    factorization via ``np.unique(axis=0)`` (a comparison sort over void
    records — correct, but an order of magnitude slower).
    """
    width = len(groups[0])
    ranges = []
    for position in range(width):
        highest = 1
        for columns in groups:
            column = columns[position]
            if column.shape[0]:
                highest = max(highest, int(column.max()) + 1)
        ranges.append(highest)
    total = 1
    for radix in ranges:
        total *= radix
        if total > (1 << 62):
            return None
    packed = []
    for columns in groups:
        out = np.zeros(columns[0].shape[0], dtype=np.int64)
        for column, radix in zip(columns, ranges):
            out *= radix
            out += column
        packed.append(out)
    return packed


def _key_codes(np: Any, left_keys: list[Any], right_keys: list[Any]) -> tuple[Any, Any]:
    """Factorize multi-column join keys into single int64 codes per side.

    Single-column keys are used directly; wider keys are packed
    arithmetically (:func:`_pack_codes`), falling back to joint
    factorization with ``np.unique(axis=0)`` over both sides when the
    packed range would overflow — either way equal key tuples, and only
    those, share a code.
    """
    if len(left_keys) == 1:
        return left_keys[0], right_keys[0]
    packed = _pack_codes(np, [left_keys, right_keys])
    if packed is not None:
        return packed[0], packed[1]
    m = left_keys[0].shape[0]
    stacked = np.concatenate(
        [np.stack(left_keys, axis=1), np.stack(right_keys, axis=1)], axis=0
    )
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1).astype(np.int64, copy=False)
    return inverse[:m], inverse[m:]


def join_stores(
    left: ColumnStore,
    right: ColumnStore,
    left_pos: Sequence[int],
    right_pos: Sequence[int],
    right_keep: Sequence[int],
) -> ColumnStore:
    """Natural join: all left columns followed by the kept right columns.

    ``left_pos`` / ``right_pos`` are the common-column positions (equal
    length, possibly empty — then this is the cartesian product) and
    ``right_keep`` the right-only positions appended to the output.
    Distinct inputs produce distinct outputs, so no deduplication happens.
    """
    arity = len(left.columns) + len(right_keep)
    if left.length == 0 or right.length == 0:
        return ColumnStore.empty(left.dictionary, arity)
    right = _unified(left, right)
    np = _active_numpy()
    if np is not None:
        left_cols = [_as_np(np, column) for column in left.columns]
        right_cols = [_as_np(np, column) for column in right.columns]
        if not left_pos:
            left_ids = np.repeat(np.arange(left.length), right.length)
            right_ids = np.tile(np.arange(right.length), left.length)
        else:
            left_key, right_key = _key_codes(
                np, [left_cols[p] for p in left_pos], [right_cols[p] for p in right_pos]
            )
            order = np.argsort(right_key, kind="stable")
            sorted_key = right_key[order]
            lo = np.searchsorted(sorted_key, left_key, side="left")
            hi = np.searchsorted(sorted_key, left_key, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if total == 0:
                return ColumnStore.empty(left.dictionary, arity)
            left_ids = np.repeat(np.arange(left.length), counts)
            ends = np.cumsum(counts)
            offsets = np.arange(total) - np.repeat(ends - counts, counts)
            right_ids = order[np.repeat(lo, counts) + offsets]
        columns = tuple(_to_column(np, column[left_ids]) for column in left_cols) + tuple(
            _to_column(np, right_cols[p][right_ids]) for p in right_keep
        )
        return ColumnStore(left.dictionary, columns, int(left_ids.shape[0]))
    # stdlib: probe the right side's cached int-array bucket index.
    left_ids = array("q")
    right_ids = array("q")
    if not left_pos:
        for i in range(left.length):
            for j in range(right.length):
                left_ids.append(i)
                right_ids.append(j)
    else:
        index = right.int_index(tuple(right_pos))
        key_columns = [left.columns[p] for p in left_pos]
        if len(key_columns) == 1:
            single = key_columns[0]
            for i in range(left.length):
                bucket = index.get(single[i])
                if bucket is not None:
                    for j in bucket:
                        left_ids.append(i)
                        right_ids.append(j)
        else:
            for i in range(left.length):
                bucket = index.get(tuple(column[i] for column in key_columns))
                if bucket is not None:
                    for j in bucket:
                        left_ids.append(i)
                        right_ids.append(j)
    columns = tuple(_gather(column, left_ids) for column in left.columns) + tuple(
        _gather(right.columns[p], right_ids) for p in right_keep
    )
    return ColumnStore(left.dictionary, columns, len(left_ids))


def semijoin_stores(
    left: ColumnStore,
    right: ColumnStore,
    left_pos: Sequence[int],
    right_pos: Sequence[int],
    negate: bool = False,
) -> ColumnStore:
    """Semijoin (``negate=False``) or anti-semijoin (``negate=True``).

    ``left_pos`` must be non-empty — the no-common-columns degenerate case
    is resolved by the caller without touching columns at all.
    """
    arity = len(left.columns)
    if left.length == 0:
        return ColumnStore.empty(left.dictionary, arity)
    if right.length == 0:
        if negate:
            return ColumnStore(left.dictionary, left.columns, left.length)
        return ColumnStore.empty(left.dictionary, arity)
    right = _unified(left, right)
    np = _active_numpy()
    if np is not None:
        left_cols = [_as_np(np, column) for column in left.columns]
        right_cols = [_as_np(np, column) for column in right.columns]
        left_key, right_key = _key_codes(
            np, [left_cols[p] for p in left_pos], [right_cols[p] for p in right_pos]
        )
        mask = np.isin(left_key, right_key)
        if negate:
            mask = ~mask
        row_ids = np.flatnonzero(mask)
        columns = tuple(_to_column(np, column[row_ids]) for column in left_cols)
        return ColumnStore(left.dictionary, columns, int(row_ids.shape[0]))
    index = right.int_index(tuple(right_pos))
    key_columns = [left.columns[p] for p in left_pos]
    row_ids = array("q")
    if len(key_columns) == 1:
        single = key_columns[0]
        for i in range(left.length):
            if (single[i] in index) != negate:
                row_ids.append(i)
    else:
        for i in range(left.length):
            if (tuple(column[i] for column in key_columns) in index) != negate:
                row_ids.append(i)
    columns = tuple(_gather(column, row_ids) for column in left.columns)
    return ColumnStore(left.dictionary, columns, len(row_ids))


def select_eq_store(store: ColumnStore, position: int, value: Any) -> ColumnStore:
    """Equality selection ``column == value`` keeping every column."""
    arity = len(store.columns)
    code = store.dictionary.code_of(value)
    if code is None or store.length == 0:
        return ColumnStore.empty(store.dictionary, arity)
    np = _active_numpy()
    if np is not None:
        row_ids = np.flatnonzero(_as_np(np, store.columns[position]) == code)
        columns = tuple(
            _to_column(np, _as_np(np, column)[row_ids]) for column in store.columns
        )
        return ColumnStore(store.dictionary, columns, int(row_ids.shape[0]))
    bucket = store.int_index((position,)).get(code)
    if bucket is None:
        return ColumnStore.empty(store.dictionary, arity)
    columns = tuple(_gather(column, bucket) for column in store.columns)
    return ColumnStore(store.dictionary, columns, len(bucket))


def project_store(store: ColumnStore, positions: Sequence[int]) -> ColumnStore:
    """Projection onto the given (distinct) positions, deduplicating rows.

    A projection onto a permutation of *all* columns cannot introduce
    duplicates and skips the dedup pass entirely.
    """
    if not positions:
        return ColumnStore(store.dictionary, (), 1 if store.length else 0)
    gathered = [store.columns[p] for p in positions]
    if sorted(positions) == list(range(len(store.columns))):
        return ColumnStore(store.dictionary, tuple(gathered), store.length)
    np = _active_numpy()
    if np is not None:
        mats = [_as_np(np, column) for column in gathered]
        if len(mats) == 1:
            unique = np.unique(mats[0])
            return ColumnStore(
                store.dictionary, (_to_column(np, unique),), int(unique.shape[0])
            )
        packed = _pack_codes(np, [mats])
        if packed is not None:
            _, first = np.unique(packed[0], return_index=True)
            columns = tuple(_to_column(np, mat[first]) for mat in mats)
            return ColumnStore(store.dictionary, columns, int(first.shape[0]))
        unique = np.unique(np.stack(mats, axis=1), axis=0)
        columns = tuple(_to_column(np, unique[:, k]) for k in range(len(mats)))
        return ColumnStore(store.dictionary, columns, int(unique.shape[0]))
    seen: set[tuple[int, ...]] = set()
    columns = tuple(array("q") for _ in gathered)
    for i in range(store.length):
        key = tuple(column[i] for column in gathered)
        if key not in seen:
            seen.add(key)
            for out, code in zip(columns, key):
                out.append(code)
    return ColumnStore(store.dictionary, columns, len(seen))


def atom_select_store(
    store: ColumnStore,
    constants: Sequence[tuple[int, Any]],
    repeats: Sequence[tuple[int, int]],
    keep: Sequence[int],
) -> ColumnStore:
    """The relation of one atom over ``store``: the fused constants filter,
    repeated-variable filter and first-occurrence projection.

    ``constants`` pairs ``(position, value)``, ``repeats`` pairs
    ``(position, first_position_of_same_variable)``, ``keep`` the first
    occurrence position of each distinct variable in order.  The kept
    positions plus the filters determine the whole input row, so distinct
    inputs stay distinct and no deduplication is needed — except the
    zero-variable case, which collapses to at most one empty tuple via the
    explicit ``length`` computation below.
    """
    codes: list[tuple[int, int]] = []
    for position, value in constants:
        code = store.dictionary.code_of(value)
        if code is None:
            return ColumnStore.empty(store.dictionary, len(keep))
        codes.append((position, code))
    if store.length == 0:
        return ColumnStore.empty(store.dictionary, len(keep))
    np = _active_numpy()
    if np is not None:
        columns = [_as_np(np, column) for column in store.columns]
        mask = np.ones(store.length, dtype=bool)
        for position, code in codes:
            mask &= columns[position] == code
        for position, first in repeats:
            mask &= columns[position] == columns[first]
        row_ids = np.flatnonzero(mask)
        kept = tuple(_to_column(np, columns[p][row_ids]) for p in keep)
        matched = int(row_ids.shape[0])
    else:
        row_ids = array("q")
        raw = store.columns
        for i in range(store.length):
            if all(raw[position][i] == code for position, code in codes) and all(
                raw[position][i] == raw[first][i] for position, first in repeats
            ):
                row_ids.append(i)
        kept = tuple(_gather(raw[p], row_ids) for p in keep)
        matched = len(row_ids)
    if not keep:
        return ColumnStore(store.dictionary, (), 1 if matched else 0)
    return ColumnStore(store.dictionary, kept, matched)
