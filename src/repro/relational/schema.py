"""Schema objects: attributes, relation schemas and database schemas.

A database, following Section 2.1 of the paper, is a tuple
``(D, R1, ..., Rn)`` where ``D`` is a finite set of constants drawn from a
countable universe and every ``Ri`` is a finite relation of a fixed arity.
The schema layer records names and arities (and, optionally, attribute names)
without storing any tuples; it is what stays *fixed* under the data
complexity measure of Section 3.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError, UnknownRelationError

__all__ = ["Attribute", "RelationSchema", "DatabaseSchema", "schema_from_arities"]


@dataclass(frozen=True, order=True)
class Attribute:
    """A named column of a relation.

    Attributes carry only a name; the engine is untyped (every value is an
    opaque hashable Python object), matching the paper's model where tuples
    range over an uninterpreted domain of constants.
    """

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _normalize_attributes(attributes: Sequence[str | Attribute]) -> tuple[Attribute, ...]:
    """Convert a mixed sequence of strings/Attributes into Attribute objects."""
    result = []
    for attr in attributes:
        if isinstance(attr, Attribute):
            result.append(attr)
        elif isinstance(attr, str):
            result.append(Attribute(attr))
        else:
            raise SchemaError(f"attribute must be a string or Attribute, got {attr!r}")
    return tuple(result)


@dataclass(frozen=True)
class RelationSchema:
    """The name and column list of a relation.

    Parameters
    ----------
    name:
        The relation name (``rel(DB)`` membership in the paper's notation).
    attributes:
        Ordered column names.  Column names must be unique within a schema.
    """

    name: str
    attributes: tuple[Attribute, ...]

    def __init__(self, name: str, attributes: Sequence[str | Attribute]) -> None:
        attrs = _normalize_attributes(attributes)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {name!r}: {names}")
        if not name:
            raise SchemaError("relation name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        """Number of columns (``a(R)`` in the paper)."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """The column names in order."""
        return tuple(a.name for a in self.attributes)

    def position_of(self, attribute: str | Attribute) -> int:
        """Return the 0-based position of an attribute.

        Raises :class:`SchemaError` if the attribute is not part of the schema.
        """
        name = attribute.name if isinstance(attribute, Attribute) else attribute
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def rename(self, new_name: str) -> "RelationSchema":
        """Return a copy of this schema under a different relation name."""
        return RelationSchema(new_name, self.attributes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(self.attribute_names)
        return f"{self.name}({cols})"


class DatabaseSchema:
    """A fixed collection of relation schemas.

    Under the data-complexity measure (Section 3.2, item 2) the database
    schema is fixed in advance while the instance varies; this class is the
    object that gets fixed.
    """

    def __init__(self, relation_schemas: Iterable[RelationSchema] = ()) -> None:
        self._schemas: dict[str, RelationSchema] = {}
        for schema in relation_schemas:
            self.add(schema)

    def add(self, schema: RelationSchema) -> None:
        """Register a relation schema; names must be unique."""
        if schema.name in self._schemas:
            raise SchemaError(f"relation {schema.name!r} already declared")
        self._schemas[schema.name] = schema

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """All relation names, in insertion order."""
        return tuple(self._schemas)

    def arities(self) -> Mapping[str, int]:
        """Mapping from relation name to arity."""
        return {name: schema.arity for name, schema in self._schemas.items()}

    def relations_of_arity(self, arity: int) -> tuple[RelationSchema, ...]:
        """All relation schemas with exactly the given arity."""
        return tuple(s for s in self._schemas.values() if s.arity == arity)

    def relations_of_arity_at_least(self, arity: int) -> tuple[RelationSchema, ...]:
        """All relation schemas with arity greater than or equal to ``arity``."""
        return tuple(s for s in self._schemas.values() if s.arity >= arity)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._schemas == other._schemas

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatabaseSchema({list(self._schemas.values())!r})"


def schema_from_arities(arities: Mapping[str, int]) -> DatabaseSchema:
    """Build a :class:`DatabaseSchema` from a ``{name: arity}`` mapping.

    Attribute names are synthesised as ``c0, c1, ...``; convenient for the
    synthetic workloads where column names carry no meaning.
    """
    schemas = []
    for name, arity in arities.items():
        if arity < 0:
            raise SchemaError(f"arity of {name!r} must be non-negative, got {arity}")
        schemas.append(RelationSchema(name, [f"c{i}" for i in range(arity)]))
    return DatabaseSchema(schemas)
