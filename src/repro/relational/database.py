"""The :class:`Database` class: a finite domain plus a set of named relations.

Mirrors the paper's Definition of a database ``DB = (D, R1, ..., Rn)``
(Section 2.1): ``D`` is the finite active domain and each ``Ri`` is a
relation over ``D``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError, UnknownRelationError
from repro.relational.dictionary import ValueDictionary
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema

__all__ = ["Database"]


class Database:
    """A named collection of relations over a shared finite domain.

    Parameters
    ----------
    relations:
        The relations making up the instance.  Names must be unique.
    domain:
        Optional explicit domain ``D``.  When omitted, the active domain
        (union of all constants appearing in some relation) is used.
    name:
        Optional label used in reports and benchmark output.
    """

    def __init__(
        self,
        relations: Iterable[Relation] = (),
        domain: Iterable[Any] | None = None,
        name: str = "DB",
    ) -> None:
        self.name = name
        self._relations: dict[str, Relation] = {}
        self._generations: dict[str, int] = {}
        self._mutation_count = 0
        self._dictionary = ValueDictionary()
        for relation in relations:
            self.add(relation)
        self._explicit_domain = frozenset(domain) if domain is not None else None

    @property
    def dictionary(self) -> ValueDictionary:
        """The database-wide value dictionary of the columnar storage layer.

        Shared by every relation encoded for this database, so equal
        constants across relations map to equal int codes and the join
        kernels compare plain ints.  Append-only: growing it never
        invalidates codes already stored in a column.  It pickles with the
        database (pickle's memo keeps it shared with the relations'
        column stores in the same payload).
        """
        return self._dictionary

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    # Every mutation bumps the touched relation's *generation* and the
    # database-wide mutation counter.  The caches of the evaluation layer
    # (EvaluationContext, BatchEvaluator, the request-level answer cache)
    # snapshot these counters and compare them on each use, so an in-place
    # mutation between calls invalidates exactly the entries that read the
    # mutated relations — no manual ``invalidate_cache()`` required.
    def add(self, relation: Relation) -> None:
        """Add a relation; its name must not already be present."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already present in database")
        # Stamp the shared dictionary as the relation's preferred encoding
        # dictionary, so a lazy first encode (project/select_eq on a
        # not-yet-encoded relation) joins the database-wide code space
        # instead of spawning a private dictionary.
        relation._dict_hint = self._dictionary
        self._relations[relation.name] = relation
        self._bump(relation.name)

    def replace(self, relation: Relation) -> None:
        """Replace (or add) a relation under its own name."""
        relation._dict_hint = self._dictionary
        self._relations[relation.name] = relation
        self._bump(relation.name)

    def _bump(self, name: str) -> None:
        self._generations[name] = self._generations.get(name, 0) + 1
        self._mutation_count += 1

    def _sync_relation(self, relation: Relation, generation: int) -> None:
        """Replace a relation pinning an externally assigned generation.

        Used by sharding workers to mirror the parent database's counters
        exactly: the worker's copy must report the same generation as the
        parent's so repeated sync shipments are idempotent.  Still counts as
        a mutation, so the worker's own caches notice and invalidate.
        """
        store = relation._columnar
        if store is not None and store.dictionary is not self._dictionary:
            # A synced relation arrives encoded under its own pickled
            # dictionary copy; re-encode once on arrival so every later
            # join against local relations compares codes directly instead
            # of translating per operation.
            relation._columnar = store.translated(self._dictionary)
        relation._dict_hint = self._dictionary
        self._relations[relation.name] = relation
        self._generations[relation.name] = generation
        self._mutation_count += 1

    @property
    def mutation_count(self) -> int:
        """Total number of mutations ever applied (an O(1) staleness probe)."""
        return self._mutation_count

    def generation(self, name: str) -> int:
        """The mutation generation of one relation (0 when never present)."""
        return self._generations.get(name, 0)

    def generations(self) -> dict[str, int]:
        """A snapshot of every relation's mutation generation."""
        return dict(self._generations)

    def generation_vector(self) -> tuple[tuple[str, int], ...]:
        """The sorted ``(name, generation)`` pairs — a hashable fingerprint of
        the database's mutation state, used to key request-level caches."""
        return tuple(sorted(self._generations.items()))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of all relations (``rel(DB)`` in the paper)."""
        return tuple(self._relations)

    def relations(self) -> tuple[Relation, ...]:
        """All relations, in insertion order."""
        return tuple(self._relations.values())

    def get(self, name: str, default: Relation | None = None) -> Relation | None:
        """Dictionary-style ``get``."""
        return self._relations.get(name, default)

    def schema(self) -> DatabaseSchema:
        """The database schema induced by the stored relations."""
        return DatabaseSchema(rel.schema for rel in self._relations.values())

    def domain(self) -> frozenset[Any]:
        """The domain ``D``: explicit if given, else the active domain."""
        if self._explicit_domain is not None:
            return self._explicit_domain
        return self.active_domain()

    def active_domain(self) -> frozenset[Any]:
        """Union of the active domains of all relations."""
        values: set[Any] = set()
        for relation in self._relations.values():
            values |= relation.active_domain()
        return frozenset(values)

    def arities(self) -> Mapping[str, int]:
        """Mapping relation name -> arity."""
        return {name: rel.arity for name, rel in self._relations.items()}

    def relations_of_arity(self, arity: int) -> tuple[Relation, ...]:
        """Relations with exactly the given arity."""
        return tuple(r for r in self._relations.values() if r.arity == arity)

    def relations_of_arity_at_least(self, arity: int) -> tuple[Relation, ...]:
        """Relations with arity >= the given arity."""
        return tuple(r for r in self._relations.values() if r.arity >= arity)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations (the instance size)."""
        return sum(len(r) for r in self._relations.values())

    def largest_relation_size(self) -> int:
        """Size ``d`` of the largest relation (used by Theorem 4.12's bound)."""
        if not self._relations:
            return 0
        return max(len(r) for r in self._relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}[{len(rel)}]" for name, rel in self._relations.items())
        return f"Database({self.name}: {parts})"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        relations: Mapping[str, tuple[Sequence[str], Iterable[Sequence[Any]]]],
        name: str = "DB",
    ) -> "Database":
        """Build a database from ``{name: (columns, rows)}``.

        Example
        -------
        >>> db = Database.from_dict({
        ...     "edge": (("src", "dst"), [(1, 2), (2, 3)]),
        ... })
        >>> len(db["edge"])
        2
        """
        rels = [
            Relation(RelationSchema(rel_name, columns), rows)
            for rel_name, (columns, rows) in relations.items()
        ]
        return cls(rels, name=name)
