"""Lazily built, cached hash indexes on column subsets of a relation.

Every :class:`~repro.relational.relation.Relation` owns a small cache
(``Relation._index_cache``) mapping a tuple of column *positions* to a hash
index ``{key_tuple: [row, ...]}`` over its tuples.  The cache is built on
first use and reused by every subsequent ``natural_join`` / ``semijoin`` /
``select_eq`` touching the same column subset — which is the common case in
the metaquery engines, where the same base relations are probed once per
instantiation.

Keys are *positions* rather than column names so that renamed views created
via :meth:`Relation.rename_columns` / :meth:`Relation.with_name` (which keep
the column order) can share the cache of the relation they were derived
from.
"""

from __future__ import annotations

from typing import Any, Iterable, KeysView, Mapping, Sequence

__all__ = ["build_index", "index_for", "key_set"]

Row = tuple


def build_index(
    rows: Iterable[Row], positions: Sequence[int]
) -> dict[tuple[Any, ...], list[Row]]:
    """Build a hash index ``{key: [rows]}`` grouping rows by the given positions."""
    index: dict[tuple[Any, ...], list[Row]] = {}
    if len(positions) == 1:
        pos = positions[0]
        for row in rows:
            index.setdefault((row[pos],), []).append(row)
    else:
        for row in rows:
            index.setdefault(tuple(row[p] for p in positions), []).append(row)
    return index


def index_for(relation, columns: Sequence[str]) -> Mapping[tuple[Any, ...], list[Row]]:
    """The (cached) hash index of ``relation`` on the given columns.

    The returned mapping must be treated as read-only; it is shared between
    all operations probing the same column subset.
    """
    positions = tuple(relation.schema.position_of(c) for c in columns)
    return relation._hash_index(positions)


def key_set(relation, columns: Sequence[str]) -> KeysView:
    """The distinct key tuples of ``relation`` on the given columns."""
    return index_for(relation, columns).keys()
