"""Lazily built, cached hash indexes on column subsets of a relation.

Two index families live here:

* **Value-keyed row indexes** (:func:`build_index`) — the probe API that
  every layer above the relational core consumes: a mapping
  ``{key_tuple: [row, ...]}`` over a relation's value tuples, cached per
  column-position tuple in ``Relation._index_cache``.  The batching layer
  intersects key sets and sums bucket lengths through exactly this shape,
  which is why it is preserved unchanged by the columnar refactor.
* **Int-array bucket indexes** (:func:`build_int_index`) — the storage
  the columnar kernels use internally: dictionary codes (single ints, or
  tuples of ints for multi-column keys) mapped to flat ``array('q')``
  buckets of *row ids* into the encoded columns of a
  :class:`~repro.relational.columnar.ColumnStore`.  Cached per position
  tuple on the store and released together with the value-keyed cache on
  eviction.

Keys are *positions* rather than column names so that renamed views created
via :meth:`Relation.rename_columns` / :meth:`Relation.with_name` (which keep
the column order) can share the cache of the relation they were derived
from.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, KeysView, Mapping, Sequence

__all__ = ["build_index", "build_int_index", "index_for", "key_set"]

Row = tuple


def build_index(
    rows: Iterable[Row], positions: Sequence[int]
) -> dict[tuple[Any, ...], list[Row]]:
    """Build a hash index ``{key: [rows]}`` grouping rows by the given positions."""
    index: dict[tuple[Any, ...], list[Row]] = {}
    if len(positions) == 1:
        pos = positions[0]
        for row in rows:
            index.setdefault((row[pos],), []).append(row)
    else:
        for row in rows:
            index.setdefault(tuple(row[p] for p in positions), []).append(row)
    return index


def build_int_index(
    columns: Sequence["array[int]"], positions: Sequence[int], length: int
) -> dict[Any, "array[int]"]:
    """Group encoded rows by code key: ``{code(s): array('q') of row ids}``.

    Single-position indexes are keyed by the bare int code; wider indexes
    by the tuple of codes.  Buckets are flat int64 arrays of row ids into
    the store's columns, so gathering a bucket never touches Python value
    objects.
    """
    index: dict[Any, "array[int]"] = {}
    if len(positions) == 1:
        column = columns[positions[0]]
        for i in range(length):
            code = column[i]
            bucket = index.get(code)
            if bucket is None:
                bucket = index[code] = array("q")
            bucket.append(i)
    else:
        key_columns = [columns[p] for p in positions]
        for i in range(length):
            key = tuple(column[i] for column in key_columns)
            bucket = index.get(key)
            if bucket is None:
                bucket = index[key] = array("q")
            bucket.append(i)
    return index


def index_for(relation: Any, columns: Sequence[str]) -> Mapping[tuple[Any, ...], list[Row]]:
    """The (cached) hash index of ``relation`` on the given columns.

    The returned mapping must be treated as read-only; it is shared between
    all operations probing the same column subset.
    """
    positions = tuple(relation.schema.position_of(c) for c in columns)
    index: Mapping[tuple[Any, ...], list[Row]] = relation._hash_index(positions)
    return index


def key_set(relation: Any, columns: Sequence[str]) -> KeysView:
    """The distinct key tuples of ``relation`` on the given columns."""
    return index_for(relation, columns).keys()
