"""CSV / JSON import and export for relations and databases.

The workload generators build databases programmatically, but downstream
users of the library typically have data in flat files; these helpers make
the examples runnable on external data as well.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.exceptions import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

__all__ = [
    "relation_from_csv",
    "relation_to_csv",
    "database_to_json",
    "database_from_json",
    "save_database",
    "load_database",
    "database_from_mapping",
]


def relation_from_csv(path: str | Path, name: str | None = None, has_header: bool = True) -> Relation:
    """Load a relation from a CSV file.

    When ``has_header`` is true the first row provides the column names;
    otherwise columns are named ``c0, c1, ...``.  The relation name defaults
    to the file stem.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise SchemaError(f"CSV file {path} is empty; cannot infer a schema")
    if has_header:
        columns, data = rows[0], rows[1:]
    else:
        columns, data = [f"c{i}" for i in range(len(rows[0]))], rows
    return Relation(RelationSchema(name or path.stem, columns), data)


def relation_to_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.columns)
        for row in relation.to_rows():
            writer.writerow(row)


def database_to_json(db: Database) -> str:
    """Serialise a database to a JSON string (columns + sorted rows per relation)."""
    payload: dict[str, Any] = {"name": db.name, "relations": {}}
    for relation in db:
        payload["relations"][relation.name] = {
            "columns": list(relation.columns),
            "rows": [list(row) for row in relation.to_rows()],
        }
    return json.dumps(payload, indent=2, default=str)


def database_from_json(text: str) -> Database:
    """Deserialise a database from the JSON produced by :func:`database_to_json`."""
    payload = json.loads(text)
    relations = []
    for rel_name, body in payload.get("relations", {}).items():
        relations.append(
            Relation(RelationSchema(rel_name, body["columns"]), [tuple(r) for r in body["rows"]])
        )
    return Database(relations, name=payload.get("name", "DB"))


def save_database(db: Database, directory: str | Path) -> None:
    """Write every relation of ``db`` to ``directory`` as one CSV per relation."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for relation in db:
        relation_to_csv(relation, directory / f"{relation.name}.csv")


def load_database(directory: str | Path, name: str = "DB") -> Database:
    """Load a database from a directory of CSV files (one relation per file)."""
    directory = Path(directory)
    relations = [relation_from_csv(p) for p in sorted(directory.glob("*.csv"))]
    return Database(relations, name=name)


def database_from_mapping(
    relations: Mapping[str, tuple[Iterable[str], Iterable[Iterable[Any]]]],
    name: str = "DB",
) -> Database:
    """Alias of :meth:`Database.from_dict` kept for symmetry with the other loaders."""
    return Database.from_dict(
        {rel: (tuple(cols), [tuple(r) for r in rows]) for rel, (cols, rows) in relations.items()},
        name=name,
    )
