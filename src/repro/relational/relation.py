"""The :class:`Relation` class: an immutable set of tuples with named columns.

Relations use *set semantics* (no duplicate tuples), exactly as in the paper,
where every index is a ratio of result-set cardinalities.  All algebra
operations return new :class:`Relation` objects and never mutate their
operands.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import AlgebraError, SchemaError
from repro.relational import indexes
from repro.relational.schema import Attribute, RelationSchema

__all__ = ["Relation"]

Tuple_ = tuple
Row = tuple


class Relation:
    """An immutable relation: a schema plus a finite set of same-arity tuples.

    Parameters
    ----------
    schema:
        Either a :class:`RelationSchema` or a relation name (in which case
        ``columns`` must also be given).
    tuples:
        Iterable of rows; each row is a sequence whose length equals the
        schema arity.  Rows are stored as tuples in a frozenset.
    columns:
        Column names, used only when ``schema`` is a plain name string.
    """

    __slots__ = ("_schema", "_tuples", "_index_cache")

    def __init__(
        self,
        schema: RelationSchema | str,
        tuples: Iterable[Sequence[Any]] = (),
        columns: Sequence[str] | None = None,
    ) -> None:
        if isinstance(schema, str):
            if columns is None:
                raise SchemaError(
                    "columns must be provided when constructing a Relation from a name"
                )
            schema = RelationSchema(schema, columns)
        elif columns is not None:
            raise SchemaError("columns must not be given together with a RelationSchema")
        self._schema = schema
        arity = schema.arity
        frozen = set()
        for row in tuples:
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    f"tuple {row!r} has arity {len(row)}, relation {schema.name!r} "
                    f"expects arity {arity}"
                )
            frozen.add(row)
        self._tuples: frozenset[Row] = frozenset(frozen)
        self._index_cache: dict[tuple[int, ...], dict] | None = None

    @classmethod
    def _from_frozen(
        cls,
        schema: RelationSchema,
        tuples: frozenset[Row],
        index_cache: dict[tuple[int, ...], dict] | None = None,
    ) -> "Relation":
        """Internal fast constructor for rows already validated against ``schema``.

        ``index_cache`` may be the cache of a relation over the same tuples
        with the same column *order* (e.g. a renamed view), since indexes are
        keyed by column positions.
        """
        rel = cls.__new__(cls)
        rel._schema = schema
        rel._tuples = tuples
        rel._index_cache = index_cache
        return rel

    def _hash_index(self, positions: tuple[int, ...]) -> dict:
        """The lazily built hash index on the given column positions."""
        cache = self._index_cache
        if cache is None:
            cache = self._index_cache = {}
        index = cache.get(positions)
        if index is None:
            index = cache[positions] = indexes.build_index(self._tuples, positions)
        return index

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        """The relation schema (name + columns)."""
        return self._schema

    @property
    def name(self) -> str:
        """The relation name."""
        return self._schema.name

    @property
    def columns(self) -> tuple[str, ...]:
        """Column names, in order."""
        return self._schema.attribute_names

    @property
    def arity(self) -> int:
        """Number of columns."""
        return self._schema.arity

    @property
    def tuples(self) -> frozenset[Row]:
        """The underlying frozenset of rows."""
        return self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._tuples)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._tuples

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def is_empty(self) -> bool:
        """True when the relation contains no tuples."""
        return not self._tuples

    def active_domain(self) -> frozenset[Any]:
        """The set of constants appearing anywhere in the relation."""
        return frozenset(value for row in self._tuples for value in row)

    def __eq__(self, other: object) -> bool:
        """Relations are equal when columns and tuple sets coincide.

        The relation *name* is intentionally ignored so that derived results
        (joins, projections) compare equal regardless of their synthetic
        names.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self.columns, self._tuples))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self._schema}, {len(self._tuples)} tuples)"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, name: str, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> "Relation":
        """Convenience constructor from a name, column list and rows."""
        return cls(RelationSchema(name, columns), rows)

    @classmethod
    def empty(cls, name: str, columns: Sequence[str]) -> "Relation":
        """An empty relation over the given columns."""
        return cls(RelationSchema(name, columns), ())

    def with_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Return a new relation with the same schema and the given rows."""
        return Relation(self._schema, rows)

    def with_name(self, name: str) -> "Relation":
        """Return this relation under a different name (same columns/rows)."""
        if self._index_cache is None:
            self._index_cache = {}
        return Relation._from_frozen(self._schema.rename(name), self._tuples, self._index_cache)

    # ------------------------------------------------------------------
    # algebra operations (methods; a functional API lives in algebra.py)
    # ------------------------------------------------------------------
    def project(self, columns: Sequence[str], name: str | None = None) -> "Relation":
        """Projection ``π_columns`` with duplicate elimination.

        ``columns`` may reorder attributes of this relation; every column
        name may appear at most once (the result is itself a relation with
        uniquely named columns).
        """
        positions = [self._schema.position_of(c) for c in columns]
        new_schema = RelationSchema(name or f"π({self.name})", columns)
        rows = frozenset(tuple(row[p] for p in positions) for row in self._tuples)
        return Relation._from_frozen(new_schema, rows)

    def select(self, predicate: Callable[[Mapping[str, Any]], bool], name: str | None = None) -> "Relation":
        """Selection by an arbitrary predicate over a ``{column: value}`` dict."""
        cols = self.columns
        rows = frozenset(row for row in self._tuples if predicate(dict(zip(cols, row))))
        return Relation._from_frozen(self._schema.rename(name or f"σ({self.name})"), rows)

    def select_eq(self, column: str, value: Any, name: str | None = None) -> "Relation":
        """Selection ``σ_{column = value}`` (answered from the cached hash index)."""
        pos = self._schema.position_of(column)
        rows = frozenset(self._hash_index((pos,)).get((value,), ()))
        return Relation._from_frozen(self._schema.rename(name or f"σ({self.name})"), rows)

    def rename_columns(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """Rename columns according to ``mapping`` (missing columns keep their name).

        The renamed view shares this relation's tuples and index cache
        (indexes are keyed by column positions, which renaming preserves).
        """
        new_cols = [mapping.get(c, c) for c in self.columns]
        if self._index_cache is None:
            self._index_cache = {}
        return Relation._from_frozen(
            RelationSchema(name or self.name, new_cols), self._tuples, self._index_cache
        )

    def natural_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join on equal column names.

        The result's columns are this relation's columns followed by the
        columns of ``other`` not already present.  When the operands share no
        columns the result is the cartesian product.
        """
        left_cols = self.columns
        right_cols = other.columns
        common = [c for c in right_cols if c in left_cols]
        right_only = [c for c in right_cols if c not in left_cols]
        result_cols = list(left_cols) + right_only

        left_common_pos = [left_cols.index(c) for c in common]
        right_common_pos = tuple(right_cols.index(c) for c in common)
        right_only_pos = [right_cols.index(c) for c in right_only]

        # hash join on the common columns, probing other's cached index
        index = other._hash_index(right_common_pos)
        rows = []
        for lrow in self._tuples:
            key = tuple(lrow[p] for p in left_common_pos)
            for rrow in index.get(key, ()):
                rows.append(lrow + tuple(rrow[p] for p in right_only_pos))
        schema = RelationSchema(name or f"({self.name} ⋈ {other.name})", result_cols)
        return Relation._from_frozen(schema, frozenset(rows))

    def semijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """Semijoin ``self ⋉ other``: tuples of ``self`` that join with ``other``."""
        common = [c for c in self.columns if c in other.columns]
        if not common:
            # With no shared columns the semijoin keeps everything iff the
            # other relation is non-empty.
            rows = self._tuples if other else frozenset()
            return Relation._from_frozen(self._schema.rename(name or self.name), rows)
        left_pos = [self.columns.index(c) for c in common]
        right_pos = tuple(other.columns.index(c) for c in common)
        keys = other._hash_index(right_pos).keys()
        rows = frozenset(
            row for row in self._tuples if tuple(row[p] for p in left_pos) in keys
        )
        return Relation._from_frozen(self._schema.rename(name or self.name), rows)

    def antijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """Anti-semijoin ``self ▷ other``: tuples of ``self`` that do *not* join."""
        kept = self.semijoin(other).tuples
        return Relation._from_frozen(self._schema.rename(name or self.name), self._tuples - kept)

    def product(self, other: "Relation", name: str | None = None) -> "Relation":
        """Cartesian product; column names must be disjoint."""
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise AlgebraError(f"cartesian product requires disjoint columns, shared: {overlap}")
        return self.natural_join(other, name=name)

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union; the operands must have identical column lists."""
        self._require_same_columns(other, "union")
        return Relation._from_frozen(self._schema.rename(name or self.name), self._tuples | other.tuples)

    def difference(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set difference; the operands must have identical column lists."""
        self._require_same_columns(other, "difference")
        return Relation._from_frozen(self._schema.rename(name or self.name), self._tuples - other.tuples)

    def intersection(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set intersection; the operands must have identical column lists."""
        self._require_same_columns(other, "intersection")
        return Relation._from_frozen(self._schema.rename(name or self.name), self._tuples & other.tuples)

    def _require_same_columns(self, other: "Relation", op: str) -> None:
        if self.columns != other.columns:
            raise AlgebraError(
                f"{op} requires identical column lists, got {self.columns} and {other.columns}"
            )

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def to_rows(self) -> list[Row]:
        """The tuples as a sorted list (sorted by string form, for stable output)."""
        return sorted(self._tuples, key=lambda row: tuple(str(v) for v in row))

    def pretty(self, max_rows: int = 20) -> str:
        """A small ASCII rendering of the relation, for examples and debugging."""
        header = " | ".join(self.columns)
        lines = [f"{self.name}", header, "-" * len(header)]
        for i, row in enumerate(self.to_rows()):
            if i >= max_rows:
                lines.append(f"... ({len(self) - max_rows} more rows)")
                break
            lines.append(" | ".join(str(v) for v in row))
        return "\n".join(lines)
