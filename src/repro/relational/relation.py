"""The :class:`Relation` class: an immutable set of tuples with named columns.

Relations use *set semantics* (no duplicate tuples), exactly as in the paper,
where every index is a ratio of result-set cardinalities.  All algebra
operations return new :class:`Relation` objects and never mutate their
operands.

Internally a relation has two interchangeable representations:

* the classic ``frozenset`` of value tuples (``_tuples``) — always the
  source of truth for equality, hashing, iteration and the value-keyed
  probe indexes every layer above consumes; and
* an optional dictionary-encoded :class:`~repro.relational.columnar.ColumnStore`
  (``_columnar``) — flat ``array('q')`` int64 columns the vectorized
  kernels of :mod:`repro.relational.columnar` operate on.

Kernel results are born columnar with ``_tuples`` unset and decode lazily
on first set-shaped access; because decoding yields tuples *equal* to the
ones the per-tuple path builds, and ``frozenset`` iteration order depends
only on its elements, the two paths are byte-for-byte interchangeable.
The kernels engage only when the columnar switch is on
(:func:`repro.relational.columnar.enabled`) and the operands are large
enough to benefit (:data:`~repro.relational.columnar.MIN_KERNEL_ROWS`), or
already encoded.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import AlgebraError, SchemaError
from repro.relational import columnar, indexes
from repro.relational.columnar import ColumnStore
from repro.relational.dictionary import ValueDictionary
from repro.relational.schema import Attribute, RelationSchema

__all__ = ["Relation"]

Tuple_ = tuple
Row = tuple

#: The value-keyed index cache type shared between renamed views.
IndexCache = dict[tuple[int, ...], dict[tuple[Any, ...], list[Row]]]


class Relation:
    """An immutable relation: a schema plus a finite set of same-arity tuples.

    Parameters
    ----------
    schema:
        Either a :class:`RelationSchema` or a relation name (in which case
        ``columns`` must also be given).
    tuples:
        Iterable of rows; each row is a sequence whose length equals the
        schema arity.  Rows are stored as tuples in a frozenset.
    columns:
        Column names, used only when ``schema`` is a plain name string.
    """

    __slots__ = ("_schema", "_tuples", "_index_cache", "_columnar", "_dict_hint")

    def __init__(
        self,
        schema: RelationSchema | str,
        tuples: Iterable[Sequence[Any]] = (),
        columns: Sequence[str] | None = None,
    ) -> None:
        if isinstance(schema, str):
            if columns is None:
                raise SchemaError(
                    "columns must be provided when constructing a Relation from a name"
                )
            schema = RelationSchema(schema, columns)
        elif columns is not None:
            raise SchemaError("columns must not be given together with a RelationSchema")
        self._schema = schema
        arity = schema.arity
        frozen = set()
        for row in tuples:
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    f"tuple {row!r} has arity {len(row)}, relation {schema.name!r} "
                    f"expects arity {arity}"
                )
            frozen.add(row)
        self._tuples: frozenset[Row] | None = frozenset(frozen)
        self._index_cache: IndexCache | None = None
        self._columnar: ColumnStore | None = None
        #: The preferred encoding dictionary for a lazy first encode —
        #: stamped by the owning Database so unary operations on not-yet-
        #: encoded relations (project/select_eq) encode under the shared
        #: database dictionary instead of a fresh private one.
        self._dict_hint: ValueDictionary | None = None

    @classmethod
    def _from_frozen(
        cls,
        schema: RelationSchema,
        tuples: frozenset[Row],
        index_cache: IndexCache | None = None,
        columnar_store: ColumnStore | None = None,
    ) -> "Relation":
        """Internal fast constructor for rows already validated against ``schema``.

        ``index_cache`` may only be the cache of a relation over the *same
        tuples in the same column order* (e.g. a renamed view), since
        indexes are keyed by column positions — prefer :meth:`_view`, which
        shares both caches from a donor relation and asserts the schemas
        are compatible.  A debug-mode check below catches caches indexed
        beyond this schema's arity; it cannot catch a same-arity column
        permutation, which is why internal view construction goes through
        the donor API.
        """
        assert index_cache is None or all(
            position < schema.arity for positions in index_cache for position in positions
        ), "index cache indexes columns beyond the target schema's arity"
        rel = cls.__new__(cls)
        rel._schema = schema
        rel._tuples = tuples
        rel._index_cache = index_cache
        rel._columnar = columnar_store
        rel._dict_hint = columnar_store.dictionary if columnar_store is not None else None
        return rel

    @classmethod
    def _from_columnar(cls, schema: RelationSchema, store: ColumnStore) -> "Relation":
        """A kernel-produced relation; rows decode lazily on first access."""
        assert len(store.columns) == schema.arity
        rel = cls.__new__(cls)
        rel._schema = schema
        rel._tuples = None
        rel._index_cache = None
        rel._columnar = store
        rel._dict_hint = store.dictionary
        return rel

    def _view(self, schema: RelationSchema) -> "Relation":
        """A renamed view sharing this relation's rows and *all* its caches.

        The donor (``self``) and the view must have the same column order,
        which pure renames preserve by construction; the assertion guards
        future refactors against aliasing a cache across schemas of a
        different shape (see the ``_from_frozen`` docstring).
        """
        assert schema.arity == self._schema.arity, (
            f"view schema {schema.attribute_names} is incompatible with donor "
            f"{self._schema.attribute_names}: column counts differ"
        )
        if self._index_cache is None:
            self._index_cache = {}
        rel = Relation.__new__(Relation)
        rel._schema = schema
        rel._tuples = self._tuples
        rel._index_cache = self._index_cache
        rel._columnar = self._columnar
        rel._dict_hint = self._dict_hint
        return rel

    # ------------------------------------------------------------------
    # the two representations
    # ------------------------------------------------------------------
    def _rows(self) -> frozenset[Row]:
        """The frozenset of value tuples, decoding the columns on demand."""
        rows = self._tuples
        if rows is None:
            assert self._columnar is not None
            rows = self._tuples = self._columnar.decode()
        return rows

    def _ensure_columnar(self, dictionary: ValueDictionary | None) -> ColumnStore:
        """The columnar store, encoding the rows on demand.

        ``dictionary`` is the preferred encoding dictionary for a fresh
        encode; when ``None``, the owning database's dictionary
        (``_dict_hint``, stamped by ``Database.add``) is used so unary
        operations on database relations never spawn private
        dictionaries, and a fresh one is created only for free-standing
        relations.  A store that already exists is returned as-is —
        ``_paired_stores`` translates (and caches) across dictionaries
        when operands disagree.

        Concurrency: two threads may race on the lazy first encode (the
        async facade evaluates up to ``max_concurrency`` metaqueries over
        one shared engine).  ``ValueDictionary.intern`` is thread-safe,
        so both threads build stores with identical codes over the same
        frozen rows; the losing assignment is overwritten by an
        equivalent store, never a corrupt one.
        """
        store = self._columnar
        if store is None:
            if dictionary is None:
                dictionary = self._dict_hint
                if dictionary is None:
                    dictionary = ValueDictionary()
            store = self._columnar = ColumnStore.from_rows(
                dictionary, self._rows(), self._schema.arity
            )
        return store

    def _kernels_apply(self, other: "Relation | None" = None) -> bool:
        """True when this operation should run on the vectorized kernels."""
        if not columnar.enabled():
            return False
        if self._columnar is not None:
            return True
        if other is not None and other._columnar is not None:
            return True
        size = len(self) + (len(other) if other is not None else 0)
        return size >= columnar.MIN_KERNEL_ROWS

    def _paired_stores(self, other: "Relation") -> tuple[ColumnStore, ColumnStore]:
        """Both operands encoded under one dictionary, translations cached.

        When both operands are already encoded under *different*
        dictionaries, the store of the smaller dictionary is translated
        into the larger (almost always the shared database dictionary)
        and the translation is **cached back on the relation**, so a hot
        loop joining the same operand repeatedly translates once instead
        of building and discarding a temp store per call.
        """
        preferred = None
        if self._columnar is None and other._columnar is not None:
            preferred = other._columnar.dictionary
        left = self._ensure_columnar(preferred)
        right = other._ensure_columnar(left.dictionary)
        if left.dictionary is not right.dictionary:
            if len(left.dictionary) >= len(right.dictionary):
                right = other._columnar = right.translated(left.dictionary)
            else:
                left = self._columnar = left.translated(right.dictionary)
        return left, right

    def release_indexes(self) -> None:
        """Drop every derived cache, keeping the relation fully usable.

        Clears the value-keyed index cache *in place* (renamed views alias
        the same dict) and the columnar store's bucket-index and
        decoded-rows caches; an encoded relation also drops its
        materialized tuples, which decode again on demand — *unless* the
        dictionary has unified equal-but-distinguishable values
        (``1``/``True``/``1.0`` split across relations), in which case
        re-decoding could swap a value for a cross-relation
        representative, so the original tuples are retained.  Called by
        the cache-eviction hooks of the lifecycle layer.
        """
        if self._index_cache is not None:
            self._index_cache.clear()
        if self._columnar is not None:
            self._columnar.release()
            if not self._columnar.dictionary.unifies_representatives:
                self._tuples = None

    def _hash_index(self, positions: tuple[int, ...]) -> dict:
        """The lazily built hash index on the given column positions."""
        cache = self._index_cache
        if cache is None:
            cache = self._index_cache = {}
        index = cache.get(positions)
        if index is None:
            index = cache[positions] = indexes.build_index(self._rows(), positions)
        return index

    # ------------------------------------------------------------------
    # pickling: ship the compact representation, drop the caches
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple[RelationSchema, frozenset[Row] | None, ColumnStore | None]:
        if self._columnar is not None:
            # The encoded form is the compact one, and pickle's memo shares
            # one ValueDictionary across all relations in the same payload.
            # When the dictionary has unified equal-but-distinguishable
            # values, decoding on the other side could substitute a
            # cross-relation representative (1 for True), so the exact
            # tuples ride along when they are materialized.
            if self._columnar.dictionary.unifies_representatives:
                return (self._schema, self._tuples, self._columnar)
            return (self._schema, None, self._columnar)
        return (self._schema, self._tuples, None)

    def __setstate__(
        self, state: tuple[RelationSchema, frozenset[Row] | None, ColumnStore | None]
    ) -> None:
        self._schema, self._tuples, self._columnar = state
        self._index_cache = None
        self._dict_hint = self._columnar.dictionary if self._columnar is not None else None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RelationSchema:
        """The relation schema (name + columns)."""
        return self._schema

    @property
    def name(self) -> str:
        """The relation name."""
        return self._schema.name

    @property
    def columns(self) -> tuple[str, ...]:
        """Column names, in order."""
        return self._schema.attribute_names

    @property
    def arity(self) -> int:
        """Number of columns."""
        return self._schema.arity

    @property
    def tuples(self) -> frozenset[Row]:
        """The underlying frozenset of rows."""
        return self._rows()

    def __len__(self) -> int:
        if self._tuples is not None:
            return len(self._tuples)
        assert self._columnar is not None
        return self._columnar.length

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows())

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows()

    def __bool__(self) -> bool:
        return len(self) > 0

    def is_empty(self) -> bool:
        """True when the relation contains no tuples."""
        return len(self) == 0

    def active_domain(self) -> frozenset[Any]:
        """The set of constants appearing anywhere in the relation."""
        return frozenset(value for row in self._rows() for value in row)

    def __eq__(self, other: object) -> bool:
        """Relations are equal when columns and tuple sets coincide.

        The relation *name* is intentionally ignored so that derived results
        (joins, projections) compare equal regardless of their synthetic
        names.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self._rows() == other._rows()

    def __hash__(self) -> int:
        return hash((self.columns, self._rows()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self._schema}, {len(self)} tuples)"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, name: str, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> "Relation":
        """Convenience constructor from a name, column list and rows."""
        return cls(RelationSchema(name, columns), rows)

    @classmethod
    def empty(cls, name: str, columns: Sequence[str]) -> "Relation":
        """An empty relation over the given columns."""
        return cls(RelationSchema(name, columns), ())

    def with_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Return a new relation with the same schema and the given rows."""
        return Relation(self._schema, rows)

    def with_name(self, name: str) -> "Relation":
        """Return this relation under a different name (same columns/rows)."""
        return self._view(self._schema.rename(name))

    # ------------------------------------------------------------------
    # algebra operations (methods; a functional API lives in algebra.py)
    # ------------------------------------------------------------------
    def project(self, columns: Sequence[str], name: str | None = None) -> "Relation":
        """Projection ``π_columns`` with duplicate elimination.

        ``columns`` may reorder attributes of this relation; every column
        name may appear at most once (the result is itself a relation with
        uniquely named columns).
        """
        positions = [self._schema.position_of(c) for c in columns]
        new_schema = RelationSchema(name or f"π({self.name})", columns)
        if self._kernels_apply():
            store = columnar.project_store(self._ensure_columnar(None), positions)
            return Relation._from_columnar(new_schema, store)
        rows = frozenset(tuple(row[p] for p in positions) for row in self._rows())
        return Relation._from_frozen(new_schema, rows)

    def select(self, predicate: Callable[[Mapping[str, Any]], bool], name: str | None = None) -> "Relation":
        """Selection by an arbitrary predicate over a ``{column: value}`` dict."""
        cols = self.columns
        rows = frozenset(row for row in self._rows() if predicate(dict(zip(cols, row))))
        return Relation._from_frozen(self._schema.rename(name or f"σ({self.name})"), rows)

    def select_eq(self, column: str, value: Any, name: str | None = None) -> "Relation":
        """Selection ``σ_{column = value}`` (answered from the cached hash index)."""
        pos = self._schema.position_of(column)
        new_schema = self._schema.rename(name or f"σ({self.name})")
        if self._kernels_apply():
            store = columnar.select_eq_store(self._ensure_columnar(None), pos, value)
            return Relation._from_columnar(new_schema, store)
        rows = frozenset(self._hash_index((pos,)).get((value,), ()))
        return Relation._from_frozen(new_schema, rows)

    def rename_columns(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """Rename columns according to ``mapping`` (missing columns keep their name).

        The renamed view shares this relation's tuples and index caches
        (indexes are keyed by column positions, which renaming preserves).
        """
        new_cols = [mapping.get(c, c) for c in self.columns]
        return self._view(RelationSchema(name or self.name, new_cols))

    def natural_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join on equal column names.

        The result's columns are this relation's columns followed by the
        columns of ``other`` not already present.  When the operands share no
        columns the result is the cartesian product.
        """
        left_cols = self.columns
        right_cols = other.columns
        common = [c for c in right_cols if c in left_cols]
        right_only = [c for c in right_cols if c not in left_cols]
        result_cols = list(left_cols) + right_only

        left_common_pos = [left_cols.index(c) for c in common]
        right_common_pos = tuple(right_cols.index(c) for c in common)
        right_only_pos = [right_cols.index(c) for c in right_only]

        schema = RelationSchema(name or f"({self.name} ⋈ {other.name})", result_cols)
        if self._kernels_apply(other):
            left, right = self._paired_stores(other)
            store = columnar.join_stores(
                left, right, left_common_pos, right_common_pos, right_only_pos
            )
            return Relation._from_columnar(schema, store)

        # hash join on the common columns, probing other's cached index
        index = other._hash_index(right_common_pos)
        rows = []
        for lrow in self._rows():
            key = tuple(lrow[p] for p in left_common_pos)
            for rrow in index.get(key, ()):
                rows.append(lrow + tuple(rrow[p] for p in right_only_pos))
        return Relation._from_frozen(schema, frozenset(rows))

    def semijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """Semijoin ``self ⋉ other``: tuples of ``self`` that join with ``other``."""
        common = [c for c in self.columns if c in other.columns]
        new_schema = self._schema.rename(name or self.name)
        if not common:
            # With no shared columns the semijoin keeps everything iff the
            # other relation is non-empty.
            rows = self._rows() if other else frozenset()
            return Relation._from_frozen(new_schema, rows)
        left_pos = [self.columns.index(c) for c in common]
        right_pos = tuple(other.columns.index(c) for c in common)
        if self._kernels_apply(other):
            left, right = self._paired_stores(other)
            store = columnar.semijoin_stores(left, right, left_pos, right_pos)
            return Relation._from_columnar(new_schema, store)
        keys = other._hash_index(right_pos).keys()
        rows = frozenset(
            row for row in self._rows() if tuple(row[p] for p in left_pos) in keys
        )
        return Relation._from_frozen(new_schema, rows)

    def antijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """Anti-semijoin ``self ▷ other``: tuples of ``self`` that do *not* join."""
        common = [c for c in self.columns if c in other.columns]
        new_schema = self._schema.rename(name or self.name)
        if common and self._kernels_apply(other):
            left_pos = [self.columns.index(c) for c in common]
            right_pos = tuple(other.columns.index(c) for c in common)
            left, right = self._paired_stores(other)
            store = columnar.semijoin_stores(left, right, left_pos, right_pos, negate=True)
            return Relation._from_columnar(new_schema, store)
        kept = self.semijoin(other).tuples
        return Relation._from_frozen(new_schema, self._rows() - kept)

    def product(self, other: "Relation", name: str | None = None) -> "Relation":
        """Cartesian product; column names must be disjoint."""
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise AlgebraError(f"cartesian product requires disjoint columns, shared: {overlap}")
        return self.natural_join(other, name=name)

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union; the operands must have identical column lists."""
        self._require_same_columns(other, "union")
        return Relation._from_frozen(self._schema.rename(name or self.name), self._rows() | other.tuples)

    def difference(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set difference; the operands must have identical column lists."""
        self._require_same_columns(other, "difference")
        return Relation._from_frozen(self._schema.rename(name or self.name), self._rows() - other.tuples)

    def intersection(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set intersection; the operands must have identical column lists."""
        self._require_same_columns(other, "intersection")
        return Relation._from_frozen(self._schema.rename(name or self.name), self._rows() & other.tuples)

    def _require_same_columns(self, other: "Relation", op: str) -> None:
        if self.columns != other.columns:
            raise AlgebraError(
                f"{op} requires identical column lists, got {self.columns} and {other.columns}"
            )

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def to_rows(self) -> list[Row]:
        """The tuples as a sorted list (sorted by string form, for stable output)."""
        return sorted(self._rows(), key=lambda row: tuple(str(v) for v in row))

    def pretty(self, max_rows: int = 20) -> str:
        """A small ASCII rendering of the relation, for examples and debugging."""
        header = " | ".join(self.columns)
        lines = [f"{self.name}", header, "-" * len(header)]
        for i, row in enumerate(self.to_rows()):
            if i >= max_rows:
                lines.append(f"... ({len(self) - max_rows} more rows)")
                break
            lines.append(" | ".join(str(v) for v in row))
        return "\n".join(lines)
