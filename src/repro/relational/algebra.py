"""Functional relational-algebra API.

Thin wrappers around the :class:`~repro.relational.relation.Relation`
methods, plus the multi-way operations used throughout the metaquery engine:
``natural_join_all`` (the paper's ``J(R)`` operator over a set of atoms'
relations) and ``full_outer_union`` style helpers are *not* needed; the
paper's semantics only requires joins, projections, selections and semijoins.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, Sequence

from repro.exceptions import AlgebraError
from repro.relational.relation import Relation

__all__ = [
    "project",
    "select_eq",
    "rename",
    "natural_join",
    "semijoin",
    "antijoin",
    "union",
    "difference",
    "natural_join_all",
    "join_and_project",
    "intersect_all",
]


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """Projection ``π_columns(relation)``."""
    return relation.project(columns)


def select_eq(relation: Relation, column: str, value: object) -> Relation:
    """Selection ``σ_{column=value}(relation)``."""
    return relation.select_eq(column, value)


def rename(relation: Relation, mapping: dict[str, str]) -> Relation:
    """Rename columns of ``relation`` according to ``mapping``."""
    return relation.rename_columns(mapping)


def natural_join(left: Relation, right: Relation) -> Relation:
    """Binary natural join."""
    return left.natural_join(right)


def semijoin(left: Relation, right: Relation) -> Relation:
    """Semijoin ``left ⋉ right``."""
    return left.semijoin(right)


def antijoin(left: Relation, right: Relation) -> Relation:
    """Anti-semijoin ``left ▷ right``."""
    return left.antijoin(right)


def union(left: Relation, right: Relation) -> Relation:
    """Set union of two relations over the same columns."""
    return left.union(right)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference of two relations over the same columns."""
    return left.difference(right)


def natural_join_all(relations: Iterable[Relation]) -> Relation:
    """Natural join of an arbitrary non-empty collection of relations.

    This is the paper's ``J(R)`` operator (Section 2.2) applied to the
    relations corresponding to a set of atoms.  Joins are performed left to
    right in a greedy smallest-first order, which keeps intermediate results
    small on the synthetic workloads without changing the result.
    """
    rels = list(relations)
    if not rels:
        raise AlgebraError("natural_join_all requires at least one relation")
    if len(rels) == 1:
        return rels[0]
    # Greedy ordering: repeatedly join the smallest relation that shares a
    # column with the accumulated result (falling back to the smallest
    # overall if none shares columns, which degenerates to a product).
    rels.sort(key=len)
    acc = rels.pop(0)
    while rels:
        acc_cols = set(acc.columns)
        best_idx = None
        for i, rel in enumerate(rels):
            if acc_cols & set(rel.columns):
                best_idx = i
                break
        if best_idx is None:
            best_idx = 0
        acc = acc.natural_join(rels.pop(best_idx))
    return acc


def join_and_project(relations: Iterable[Relation], columns: Sequence[str]) -> Relation:
    """``π_columns(J(relations))`` — the building block of every index."""
    return natural_join_all(relations).project(columns)


def intersect_all(relations: Sequence[Relation]) -> Relation:
    """Intersection of relations over identical column lists."""
    if not relations:
        raise AlgebraError("intersect_all requires at least one relation")
    return reduce(lambda a, b: a.intersection(b), relations)
