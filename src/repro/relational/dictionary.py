"""Dictionary encoding: interning arbitrary hashable values to dense ints.

A :class:`ValueDictionary` is the translation table behind the columnar
storage layer (:mod:`repro.relational.columnar`): every constant appearing
in a relation is *interned* to a small non-negative integer code, and the
relation's columns store those codes in flat ``array('q')`` buffers.  One
dictionary is shared per :class:`~repro.relational.database.Database`, so
equal constants in different relations of the same database map to the
same code and join kernels can compare plain int64s instead of hashing
Python objects per probe.

Design points:

* **Append-only.**  Codes are assigned by first-intern order and never
  change or disappear; growing the dictionary never invalidates codes
  already stored in a column.  This is what makes it safe to share one
  dictionary across every relation of a database, including relations
  encoded at different times.
* **Semantic equality.**  Interning uses ordinary ``dict`` key equality,
  exactly like the ``frozenset`` row storage it encodes: values that
  compare equal (``1 == True == 1.0``) share one code and decode to the
  first-interned representative.  Joins therefore match exactly the pairs
  the set-based path matches.
* **Picklable.**  Only the value list crosses a process boundary; the
  code lookup table is rebuilt on unpickle.  Relations shipped to pool
  workers (the PR-5 relation sync) carry their encoded columns plus the
  dictionary, and pickle's memo shares one dictionary copy across all
  relations serialized in the same payload (e.g. a whole ``Database``).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

__all__ = ["ValueDictionary"]


class ValueDictionary:
    """An append-only bidirectional mapping ``value <-> dense int code``."""

    __slots__ = ("_codes", "_values")

    def __init__(self, values: Iterable[Hashable] = ()) -> None:
        self._codes: dict[Any, int] = {}
        self._values: list[Any] = []
        for value in values:
            self.intern(value)

    def intern(self, value: Hashable) -> int:
        """The code of ``value``, assigning the next dense code if new."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def code_of(self, value: Hashable) -> int | None:
        """The code of ``value`` if already interned, else ``None``."""
        return self._codes.get(value)

    def value_of(self, code: int) -> Any:
        """The value interned under ``code`` (IndexError when out of range)."""
        return self._values[code]

    @property
    def values(self) -> list[Any]:
        """The interned values in code order.  Treat as read-only."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._codes

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValueDictionary({len(self._values)} values)"

    # ------------------------------------------------------------------
    # pickling: ship the value list only; rebuild the lookup table.
    # ------------------------------------------------------------------
    def __getstate__(self) -> list[Any]:
        return self._values

    def __setstate__(self, state: list[Any]) -> None:
        self._values = state
        self._codes = {value: code for code, value in enumerate(state)}
