"""Dictionary encoding: interning arbitrary hashable values to dense ints.

A :class:`ValueDictionary` is the translation table behind the columnar
storage layer (:mod:`repro.relational.columnar`): every constant appearing
in a relation is *interned* to a small non-negative integer code, and the
relation's columns store those codes in flat ``array('q')`` buffers.  One
dictionary is shared per :class:`~repro.relational.database.Database`, so
equal constants in different relations of the same database map to the
same code and join kernels can compare plain int64s instead of hashing
Python objects per probe.

Design points:

* **Append-only.**  Codes are assigned by first-intern order and never
  change or disappear; growing the dictionary never invalidates codes
  already stored in a column.  This is what makes it safe to share one
  dictionary across every relation of a database, including relations
  encoded at different times.
* **Thread-safe.**  One dictionary is shared by every relation of a
  database, and relations encode *lazily* — under
  :class:`~repro.core.aio.AsyncMetaqueryEngine` up to ``max_concurrency``
  evaluations run concurrently over one engine, so two worker threads can
  intern new values at the same time.  :meth:`intern` therefore uses
  double-checked locking: a lock-free lookup serves the hit path, and the
  assign path re-checks under the lock so two threads interning different
  new values can never hand out the same code.  A value is appended to
  the value list *before* its code is published in the lookup table, so a
  lock-free hit can always decode its code immediately.  Reads
  (:meth:`code_of`, :meth:`value_of`, iteration) stay lock-free: the
  structure is append-only, so a concurrent reader sees either "absent"
  or a fully published entry, never a torn one.
* **Semantic equality.**  Interning uses ordinary ``dict`` key equality,
  exactly like the ``frozenset`` row storage it encodes: values that
  compare equal (``1 == True == 1.0``) share one code and decode to the
  first-interned representative.  Joins therefore match exactly the pairs
  the set-based path matches.  When such a *distinguishable* unification
  is ever observed, the sticky :attr:`unifies_representatives` flag is
  raised; the relation layer consults it to retain original tuples across
  pickling and cache eviction so base-relation values are never silently
  swapped for a cross-relation representative (see
  ``Relation.__getstate__`` / ``Relation.release_indexes``).
* **Picklable.**  Only the value list (plus the unification flag) crosses
  a process boundary; the code lookup table and the lock are rebuilt on
  unpickle.  Relations shipped to pool workers (the PR-5 relation sync)
  carry their encoded columns plus the dictionary, and pickle's memo
  shares one dictionary copy across all relations serialized in the same
  payload (e.g. a whole ``Database``).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

from repro.tools.sanitizer import create_lock

__all__ = ["ValueDictionary"]


def _distinguishable(representative: Any, value: Any) -> bool:
    """True when two *equal* values are nevertheless distinguishable.

    Equal values of different types (``True`` / ``1`` / ``1.0``) render
    differently on the JSON/SSE wire; so do the equal floats ``0.0`` and
    ``-0.0``.  Same-type values whose equality does not determine their
    ``repr`` (e.g. ``Decimal('1')`` vs ``Decimal('1.0')``) are out of
    scope — the storage layer documents them as a known exclusion.
    """
    if type(representative) is not type(value):
        return True
    return type(value) is float and repr(representative) != repr(value)


class ValueDictionary:
    """An append-only bidirectional mapping ``value <-> dense int code``."""

    __slots__ = ("_codes", "_values", "_unifies", "_lock")

    def __init__(self, values: Iterable[Hashable] = ()) -> None:
        self._codes: dict[Any, int] = {}
        self._values: list[Any] = []
        self._unifies = False
        self._lock = create_lock("repro.relational.dictionary:ValueDictionary")
        for value in values:
            self.intern(value)

    def intern(self, value: Hashable) -> int:
        """The code of ``value``, assigning the next dense code if new.

        Safe to call from concurrent threads: the hit path is a single
        lock-free dict read, and the assign path holds the dictionary's
        lock around the re-check + append + publish sequence.
        """
        code = self._codes.get(value)
        if code is None:
            with self._lock:
                code = self._codes.get(value)
                if code is None:
                    code = len(self._values)
                    # Append before publishing the code so a lock-free
                    # reader that sees the code can always decode it.
                    self._values.append(value)
                    self._codes[value] = code
                    return code
        representative = self._values[code]
        if representative is not value and _distinguishable(representative, value):
            with self._lock:
                self._unifies = True
        return code

    @property
    def unifies_representatives(self) -> bool:
        """True once two equal-but-distinguishable values shared a code.

        Sticky for the life of the dictionary (and preserved across
        pickling): once ``True``, decoding a column may substitute a
        value with an equal representative of a different type, so the
        relation layer keeps original tuples alongside the encoded form.
        """
        return self._unifies

    def code_of(self, value: Hashable) -> int | None:
        """The code of ``value`` if already interned, else ``None``."""
        return self._codes.get(value)

    def value_of(self, code: int) -> Any:
        """The value interned under ``code`` (IndexError when out of range)."""
        return self._values[code]

    @property
    def values(self) -> list[Any]:
        """The interned values in code order.  Treat as read-only."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._codes

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValueDictionary({len(self._values)} values)"

    # ------------------------------------------------------------------
    # pickling: ship the value list + unification flag; rebuild the rest.
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple[list[Any], bool]:
        return (self._values, self._unifies)

    def __setstate__(self, state: tuple[list[Any], bool]) -> None:
        self._values, self._unifies = state
        self._codes = {value: code for code, value in enumerate(self._values)}
        self._lock = create_lock("repro.relational.dictionary:ValueDictionary")
