"""Project--join expression trees.

The data-complexity proofs of the paper (Theorems 3.37 and 3.38) are stated
for *project--join expressions*: relational expressions built from base
relations with natural joins, projections and equality selections.  The
circuit builders in :mod:`repro.circuits` compile these expression trees into
constant-depth boolean circuit families; the engine also evaluates them
directly against a :class:`~repro.relational.database.Database`, which the
tests use as the reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.exceptions import AlgebraError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

__all__ = ["Expression", "BaseRelation", "Join", "Project", "Select", "join_all"]


class Expression:
    """Abstract base class of project--join expression nodes."""

    def evaluate(self, db: Database) -> Relation:
        """Evaluate the expression over the given database instance."""
        raise NotImplementedError

    def columns(self, db: Database) -> tuple[str, ...]:
        """The output column names of the expression over ``db``'s schema."""
        raise NotImplementedError

    def base_relations(self) -> frozenset[str]:
        """Names of the base relations the expression mentions."""
        raise NotImplementedError

    def depth(self) -> int:
        """Height of the expression tree (a proxy for circuit depth)."""
        raise NotImplementedError

    # small operator-style sugar -------------------------------------------------
    def join(self, other: "Expression") -> "Join":
        """Natural join of two expressions."""
        return Join(self, other)

    def project(self, columns: Sequence[str]) -> "Project":
        """Projection of this expression onto ``columns``."""
        return Project(self, tuple(columns))

    def where(self, column: str, value: Any) -> "Select":
        """Equality selection ``column = value``."""
        return Select(self, column, value)


@dataclass(frozen=True)
class BaseRelation(Expression):
    """A leaf: a database relation, optionally with renamed columns.

    ``columns`` gives the *logical* column names (typically variable names of
    an atom); when provided, its length must match the relation arity and the
    relation columns are positionally renamed.  Repeated logical names impose
    an equality selection, matching the semantics of an atom with repeated
    variables.
    """

    relation_name: str
    rename: tuple[str, ...] | None = None

    def evaluate(self, db: Database) -> Relation:
        relation = db[self.relation_name]
        if self.rename is None:
            return relation
        if len(self.rename) != relation.arity:
            raise AlgebraError(
                f"rename of {self.relation_name!r} has {len(self.rename)} columns, "
                f"relation has arity {relation.arity}"
            )
        # Repeated names: keep the first occurrence, select equality on the rest.
        seen: dict[str, int] = {}
        keep_positions: list[int] = []
        keep_names: list[str] = []
        rows = relation.tuples
        filtered = []
        for row in rows:
            ok = True
            for pos, logical in enumerate(self.rename):
                if logical in seen and row[seen[logical]] != row[pos]:
                    ok = False
                    break
                seen.setdefault(logical, pos)
            if ok:
                filtered.append(row)
            seen = {n: p for n, p in seen.items() if True}
        # recompute keep positions deterministically
        seen = {}
        for pos, logical in enumerate(self.rename):
            if logical not in seen:
                seen[logical] = pos
                keep_positions.append(pos)
                keep_names.append(logical)
        projected = {tuple(row[p] for p in keep_positions) for row in filtered}
        schema = RelationSchema(f"{self.relation_name}", keep_names)
        return Relation(schema, projected)

    def columns(self, db: Database) -> tuple[str, ...]:
        relation = db[self.relation_name]
        if self.rename is None:
            return relation.columns
        out: list[str] = []
        for logical in self.rename:
            if logical not in out:
                out.append(logical)
        return tuple(out)

    def base_relations(self) -> frozenset[str]:
        return frozenset({self.relation_name})

    def depth(self) -> int:
        return 1


@dataclass(frozen=True)
class Join(Expression):
    """Natural join of two sub-expressions."""

    left: Expression
    right: Expression

    def evaluate(self, db: Database) -> Relation:
        return self.left.evaluate(db).natural_join(self.right.evaluate(db))

    def columns(self, db: Database) -> tuple[str, ...]:
        left_cols = self.left.columns(db)
        right_cols = self.right.columns(db)
        return left_cols + tuple(c for c in right_cols if c not in left_cols)

    def base_relations(self) -> frozenset[str]:
        return self.left.base_relations() | self.right.base_relations()

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())


@dataclass(frozen=True)
class Project(Expression):
    """Projection of a sub-expression onto a column list."""

    child: Expression
    onto: tuple[str, ...]

    def evaluate(self, db: Database) -> Relation:
        return self.child.evaluate(db).project(self.onto)

    def columns(self, db: Database) -> tuple[str, ...]:
        return self.onto

    def base_relations(self) -> frozenset[str]:
        return self.child.base_relations()

    def depth(self) -> int:
        return 1 + self.child.depth()


@dataclass(frozen=True)
class Select(Expression):
    """Equality selection ``column = value`` on a sub-expression."""

    child: Expression
    column: str
    value: Any

    def evaluate(self, db: Database) -> Relation:
        return self.child.evaluate(db).select_eq(self.column, self.value)

    def columns(self, db: Database) -> tuple[str, ...]:
        return self.child.columns(db)

    def base_relations(self) -> frozenset[str]:
        return self.child.base_relations()

    def depth(self) -> int:
        return 1 + self.child.depth()


def join_all(expressions: Sequence[Expression]) -> Expression:
    """Left-deep natural join of a non-empty sequence of expressions."""
    if not expressions:
        raise AlgebraError("join_all requires at least one expression")
    expr = expressions[0]
    for other in expressions[1:]:
        expr = Join(expr, other)
    return expr
