"""Pure-Python set-semantics relational algebra engine.

This package is the storage and query substrate used by every other part of
the library.  It provides:

* :class:`~repro.relational.schema.RelationSchema` and
  :class:`~repro.relational.schema.DatabaseSchema` — typed descriptions of
  relations and databases;
* :class:`~repro.relational.relation.Relation` — an immutable, named,
  set-of-tuples relation with named columns and the usual algebra operations
  (natural join, projection, selection, rename, semijoin, union, difference,
  cartesian product);
* :class:`~repro.relational.database.Database` — a collection of relations
  over a common domain, as defined in Section 2.1 of the paper;
* :mod:`~repro.relational.indexes` — lazily built, cached hash indexes on
  column subsets, shared by joins, semijoins and equality selections;
* :mod:`~repro.relational.expressions` — project--join expression trees used
  by the data-complexity circuit constructions;
* :mod:`~repro.relational.io` — CSV / JSON loading and dumping.
"""

from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.relation import Relation
from repro.relational.database import Database
from repro.relational import algebra
from repro.relational import indexes
from repro.relational.expressions import (
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
)

__all__ = [
    "Attribute",
    "RelationSchema",
    "DatabaseSchema",
    "Relation",
    "Database",
    "algebra",
    "indexes",
    "Expression",
    "BaseRelation",
    "Join",
    "Project",
    "Select",
]
