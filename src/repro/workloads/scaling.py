"""Size-parameterised workloads for the columnar / cache scaling curves.

The ablation benchmarks (``benchmarks/run_cache_ablation.py`` and
``benchmarks/run_columnar_ablation.py``) sweep database size ``d`` over
several orders of magnitude (10^3 → 10^5 total tuples) while holding the
metaquery shape fixed.  This module provides the deterministic generators
for those sweeps: each point of a curve is a :func:`scaled_chain_database`
(or its star-join sibling) whose *total* tuple budget is the sweep
parameter, so the x-axis of a scaling plot is directly comparable across
workload shapes.

The generators delegate to :mod:`repro.workloads.synthetic` — they add the
"budget" parameterisation and the canonical sweep sizes, not new structure.
"""

from __future__ import annotations

from typing import Sequence

from repro.relational.database import Database
from repro.workloads.synthetic import chain_database, star_database

__all__ = [
    "SCALING_SIZES",
    "SMOKE_SIZES",
    "scaled_chain_database",
    "scaled_star_database",
    "scaling_curve",
]

#: Canonical total-tuple budgets for the full scaling curve (10^3 → 10^5).
SCALING_SIZES: tuple[int, ...] = (1_000, 10_000, 100_000)

#: The budgets used by the CI smoke leg — the smallest full point only.
SMOKE_SIZES: tuple[int, ...] = (1_000,)


def scaled_chain_database(
    total_tuples: int,
    relations: int = 5,
    planted_fraction: float = 0.3,
    seed: int = 0,
) -> Database:
    """A join-chain database holding ``total_tuples`` tuples overall.

    The budget is split evenly across ``relations`` binary relations; the
    domain grows with the per-relation size so selectivity stays roughly
    constant along the sweep (doubling ``d`` should roughly double join
    input *and* output, which is the regime where the paper's ``d^c log d``
    body-phase cost is visible).
    """
    if total_tuples < relations:
        raise ValueError("total_tuples must be at least the relation count")
    per_relation = total_tuples // relations
    domain_size = max(4, per_relation // 2)
    return chain_database(
        relations=relations,
        tuples_per_relation=per_relation,
        domain_size=domain_size,
        planted_fraction=planted_fraction,
        seed=seed,
        name=f"scaled-chain-{total_tuples}",
    )


def scaled_star_database(
    total_tuples: int,
    rays: int = 4,
    seed: int = 0,
) -> Database:
    """A star-join database holding ``total_tuples`` tuples overall."""
    if total_tuples < rays:
        raise ValueError("total_tuples must be at least the ray count")
    per_relation = total_tuples // rays
    return star_database(
        rays=rays,
        tuples_per_relation=per_relation,
        domain_size=max(4, per_relation // 2),
        seed=seed,
    )


def scaling_curve(
    smoke: bool = False,
    sizes: Sequence[int] | None = None,
) -> tuple[int, ...]:
    """The sweep sizes to run: explicit ``sizes``, else smoke/full defaults."""
    if sizes is not None:
        chosen = tuple(int(size) for size in sizes)
        if not chosen or any(size <= 0 for size in chosen):
            raise ValueError("sizes must be a non-empty sequence of positive ints")
        return chosen
    return SMOKE_SIZES if smoke else SCALING_SIZES
