"""The paper's telecom example database (Figures 1 and 2) and scaled variants.

``db1`` reproduces Figure 1 exactly: the relations ``UsCa`` (user/carrier),
``CaTe`` (carrier/technology) and ``UsPT`` (user/phone-type).  ``db1_prime``
replaces ``UsPT`` with the three-attribute version of Figure 2 (adding the
phone ``Model``), the database used to motivate type-2 instantiations.

``scaled_telecom`` generates arbitrarily large databases with the same
schema and the same planted dependency — "users use the technologies of
their carriers" — contaminated by a configurable noise rate, so the
benchmark sweeps exercise realistic index values rather than all-1.0 rules.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["db1", "db1_prime", "transitivity_metaquery_text", "scaled_telecom"]

USCA_COLUMNS = ("User", "Carrier")
CATE_COLUMNS = ("Carrier", "Technology")
USPT_COLUMNS = ("User", "PhoneType")
USPT_PRIME_COLUMNS = ("User", "PhoneType", "Model")


def db1() -> Database:
    """The database DB1 of Figure 1, verbatim."""
    usca = Relation.from_rows(
        "usca",
        USCA_COLUMNS,
        [
            ("John K.", "Omnitel"),
            ("John K.", "Tim"),
            ("Anastasia A.", "Omnitel"),
        ],
    )
    cate = Relation.from_rows(
        "cate",
        CATE_COLUMNS,
        [
            ("Tim", "ETACS"),
            ("Tim", "GSM 900"),
            ("Tim", "GSM 1800"),
            ("Omnitel", "GSM 900"),
            ("Omnitel", "GSM 1800"),
            ("Wind", "GSM 1800"),
        ],
    )
    uspt = Relation.from_rows(
        "uspt",
        USPT_COLUMNS,
        [
            ("John K.", "GSM 900"),
            ("John K.", "GSM 1800"),
            ("Anastasia A.", "GSM 900"),
        ],
    )
    return Database([usca, cate, uspt], name="DB1")


def db1_prime() -> Database:
    """DB1 with the Figure 2 version of ``UsPT`` (extra ``Model`` attribute)."""
    base = db1()
    uspt_prime = Relation.from_rows(
        "uspt",
        USPT_PRIME_COLUMNS,
        [
            ("John K.", "GSM 900", "Nokia 6150"),
            ("John K.", "GSM 1800", "Nokia 6150"),
            ("Anastasia A.", "GSM 900", "Bosch 607"),
        ],
    )
    return Database([base["usca"], base["cate"], uspt_prime], name="DB1'")


def transitivity_metaquery_text() -> str:
    """The paper's metaquery (4): ``R(X,Z) <- P(X,Y), Q(Y,Z)``."""
    return "R(X,Z) <- P(X,Y), Q(Y,Z)"


def scaled_telecom(
    users: int = 50,
    carriers: int = 5,
    technologies: int = 4,
    noise: float = 0.1,
    seed: int = 0,
    with_model: bool = False,
) -> Database:
    """A larger telecom database with the same planted dependency as DB1.

    Every user subscribes to one or two carriers; every carrier supports a
    subset of the technologies; a user's phone types are (mostly) the
    technologies of their carriers, except that a ``noise`` fraction of the
    phone-type tuples are drawn uniformly at random — these are the tuples
    that keep confidence strictly below 1.

    Parameters
    ----------
    users, carriers, technologies:
        Sizes of the three entity sets.
    noise:
        Fraction of ``uspt`` tuples replaced by random ones.
    seed:
        PRNG seed; the same seed always produces the same database.
    with_model:
        Add the Figure 2 ``Model`` column to ``uspt`` (for type-2 sweeps).
    """
    rng = random.Random(seed)
    user_names = [f"user{i}" for i in range(users)]
    carrier_names = [f"carrier{i}" for i in range(carriers)]
    tech_names = [f"tech{i}" for i in range(technologies)]
    model_names = [f"model{i}" for i in range(max(2, technologies))]

    usca_rows = set()
    for user in user_names:
        for carrier in rng.sample(carrier_names, k=rng.choice([1, 1, 2])):
            usca_rows.add((user, carrier))

    cate_rows = set()
    for carrier in carrier_names:
        count = rng.randint(1, technologies)
        for tech in rng.sample(tech_names, k=count):
            cate_rows.add((carrier, tech))

    uspt_rows = set()
    carrier_to_techs: dict[str, list[str]] = {}
    for carrier, tech in cate_rows:
        carrier_to_techs.setdefault(carrier, []).append(tech)
    for user, carrier in usca_rows:
        for tech in carrier_to_techs.get(carrier, []):
            if rng.random() < noise:
                tech = rng.choice(tech_names)
            if with_model:
                uspt_rows.add((user, tech, rng.choice(model_names)))
            else:
                uspt_rows.add((user, tech))

    usca = Relation.from_rows("usca", USCA_COLUMNS, usca_rows)
    cate = Relation.from_rows("cate", CATE_COLUMNS, cate_rows)
    columns: Sequence[str] = USPT_PRIME_COLUMNS if with_model else USPT_COLUMNS
    uspt = Relation.from_rows("uspt", columns, uspt_rows)
    return Database([usca, cate, uspt], name=f"telecom-{users}u-{carriers}c")
