"""Graph workloads for the hardness-reduction experiments.

The NP-hardness proofs of the paper reduce from graph problems (3-COLORING
in Theorems 3.21 and 3.35, HAMILTONIAN PATH in Theorem 3.33).  This module
generates the graph instances those experiments sweep over: random
Erdős–Rényi graphs, graphs guaranteed to be 3-colorable (built from a random
3-partition), odd wheels (never 3-colorable for odd rims ≥ 5 plus hub... in
fact W5 needs 4 colors), path graphs (trivially Hamiltonian) and random
graphs with a planted Hamiltonian path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "Graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "random_graph",
    "random_3colorable_graph",
    "non_3colorable_graph",
    "random_hamiltonian_graph",
    "star_graph",
    "disconnected_graph",
]


@dataclass(frozen=True)
class Graph:
    """A simple undirected graph: a vertex tuple plus an edge set.

    Edges are stored as ordered pairs ``(u, v)`` with ``u < v`` (by string
    comparison) so that the same undirected edge is never stored twice.
    """

    vertices: tuple[str, ...]
    edges: frozenset[tuple[str, str]]

    def __init__(self, vertices: Iterable[str], edges: Iterable[tuple[str, str]]) -> None:
        object.__setattr__(self, "vertices", tuple(vertices))
        normalized = set()
        vertex_set = set(self.vertices)
        for u, v in edges:
            if u == v:
                continue
            if u not in vertex_set or v not in vertex_set:
                raise ValueError(f"edge ({u}, {v}) references an unknown vertex")
            normalized.add((u, v) if str(u) < str(v) else (v, u))
        object.__setattr__(self, "edges", frozenset(normalized))

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self.vertices)

    @property
    def edge_count(self) -> int:
        """Number of (undirected) edges."""
        return len(self.edges)

    def neighbours(self, vertex: str) -> frozenset[str]:
        """The neighbours of a vertex."""
        result = set()
        for u, v in self.edges:
            if u == vertex:
                result.add(v)
            elif v == vertex:
                result.add(u)
        return frozenset(result)

    def directed_edges(self) -> frozenset[tuple[str, str]]:
        """Both orientations of every edge (used by the relational encodings)."""
        return frozenset(
            pair for u, v in self.edges for pair in ((u, v), (v, u))
        )

    def has_edge(self, u: str, v: str) -> bool:
        """True when ``{u, v}`` is an edge."""
        key = (u, v) if str(u) < str(v) else (v, u)
        return key in self.edges


def path_graph(n: int) -> Graph:
    """The path ``v0 - v1 - ... - v(n-1)`` (always has a Hamiltonian path)."""
    vertices = [f"v{i}" for i in range(n)]
    edges = [(vertices[i], vertices[i + 1]) for i in range(n - 1)]
    return Graph(vertices, edges)


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n`` vertices (3-colorable iff ``n`` is even or ``n >= 3`` odd... odd cycles need 3 colors, still 3-colorable)."""
    vertices = [f"v{i}" for i in range(n)]
    edges = [(vertices[i], vertices[(i + 1) % n]) for i in range(n)]
    return Graph(vertices, edges)


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` (3-colorable iff ``n <= 3``)."""
    vertices = [f"v{i}" for i in range(n)]
    edges = [(vertices[i], vertices[j]) for i in range(n) for j in range(i + 1, n)]
    return Graph(vertices, edges)


def random_graph(n: int, edge_probability: float, seed: int = 0) -> Graph:
    """An Erdős–Rényi ``G(n, p)`` graph."""
    rng = random.Random(seed)
    vertices = [f"v{i}" for i in range(n)]
    edges = [
        (vertices[i], vertices[j])
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_probability
    ]
    return Graph(vertices, edges)


def random_3colorable_graph(n: int, edge_probability: float = 0.5, seed: int = 0) -> Graph:
    """A random graph guaranteed 3-colorable: edges only across a hidden 3-partition."""
    rng = random.Random(seed)
    vertices = [f"v{i}" for i in range(n)]
    colour = {v: rng.randint(0, 2) for v in vertices}
    edges = [
        (vertices[i], vertices[j])
        for i in range(n)
        for j in range(i + 1, n)
        if colour[vertices[i]] != colour[vertices[j]] and rng.random() < edge_probability
    ]
    return Graph(vertices, edges)


def non_3colorable_graph(extra_vertices: int = 0, seed: int = 0) -> Graph:
    """``K4`` optionally padded with isolated extra vertices — never 3-colorable."""
    base = complete_graph(4)
    vertices = list(base.vertices) + [f"x{i}" for i in range(extra_vertices)]
    return Graph(vertices, base.edges)


def random_hamiltonian_graph(n: int, extra_edge_probability: float = 0.2, seed: int = 0) -> Graph:
    """A random graph with a planted Hamiltonian path (a random vertex permutation)."""
    rng = random.Random(seed)
    vertices = [f"v{i}" for i in range(n)]
    order = vertices[:]
    rng.shuffle(order)
    edges = {(order[i], order[i + 1]) for i in range(n - 1)}
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < extra_edge_probability:
                edges.add((vertices[i], vertices[j]))
    return Graph(vertices, edges)


def star_graph(n: int) -> Graph:
    """A star ``K_{1,n}`` — it has a Hamiltonian path only for ``n <= 2``."""
    vertices = ["hub"] + [f"leaf{i}" for i in range(n)]
    edges = [("hub", f"leaf{i}") for i in range(n)]
    return Graph(vertices, edges)


def disconnected_graph(component_sizes: Sequence[int]) -> Graph:
    """A disjoint union of paths — never Hamiltonian when it has ≥ 2 components."""
    vertices: list[str] = []
    edges: list[tuple[str, str]] = []
    for c, size in enumerate(component_sizes):
        names = [f"c{c}_{i}" for i in range(size)]
        vertices.extend(names)
        edges.extend((names[i], names[i + 1]) for i in range(size - 1))
    return Graph(vertices, edges)
