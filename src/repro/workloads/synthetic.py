"""Synthetic databases with planted rules and controllable scaling knobs.

These generators drive the Figure 4 / Figure 5 scaling benchmarks: they let
the harness grow the database size ``d``, the number of relations ``n`` and
the body length ``m`` independently, which is exactly how the paper's cost
formulas (``n^(m-1) d^c log d`` for the body phase, ``(nd)^m`` overall) are
parameterised.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.metaquery import LiteralScheme, MetaQuery
from repro.datalog.terms import Variable
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "chain_database",
    "chain_metaquery",
    "transitive_chain_metaquery",
    "cyclic_metaquery",
    "random_database",
    "planted_rule_database",
    "star_database",
    "widen_metaquery_arity",
]


def chain_database(
    relations: int,
    tuples_per_relation: int,
    domain_size: int | None = None,
    planted_fraction: float = 0.5,
    seed: int = 0,
    name: str | None = None,
) -> Database:
    """A database of binary relations ``r0, ..., r(n-1)`` forming a join chain.

    A ``planted_fraction`` of the tuples of consecutive relations are
    constructed to join (``r_i``'s second column feeds ``r_{i+1}``'s first
    column), so chain metaqueries over this database have non-trivial
    support; the rest of the tuples are uniform noise.  The relation ``r0``
    additionally gets a "result" role: chain metaquery heads instantiated to
    ``r0`` score a positive cover.
    """
    rng = random.Random(seed)
    domain_size = domain_size or max(4, tuples_per_relation)
    domain = [f"v{i}" for i in range(domain_size)]

    rows_per_relation: list[set[tuple[str, str]]] = [set() for _ in range(relations)]
    # planted joining chains
    planted = int(tuples_per_relation * planted_fraction)
    for _ in range(planted):
        chain_values = [rng.choice(domain) for _ in range(relations + 1)]
        for i in range(relations):
            rows_per_relation[i].add((chain_values[i], chain_values[i + 1]))
        # plant the "conclusion" tuple so the chain head has positive cover
        rows_per_relation[0].add((chain_values[0], chain_values[relations]))
    # noise
    for i in range(relations):
        while len(rows_per_relation[i]) < tuples_per_relation:
            rows_per_relation[i].add((rng.choice(domain), rng.choice(domain)))

    relations_list = [
        Relation.from_rows(f"r{i}", ("a", "b"), rows) for i, rows in enumerate(rows_per_relation)
    ]
    return Database(relations_list, name=name or f"chain-{relations}x{tuples_per_relation}")


def chain_metaquery(length: int) -> MetaQuery:
    """The chain metaquery matching :func:`chain_database`.

    ``R(X0, X1) <- P1(X0, X1), ..., Pm(X(m-1), Xm)`` with distinct predicate
    variables.  The head ranges over the *first* body pattern's variables (as
    in the paper's acyclic example ``P(X,Y) <- P(Y,Z), Q(Z,W)``), which keeps
    the metaquery hypergraph acyclic — these are the templates of the
    Figure 5 row 4 (tractable-case) sweeps.
    """
    variables = [Variable(f"X{i}") for i in range(length + 1)]
    body = [
        LiteralScheme.pattern(f"P{i + 1}", [variables[i], variables[i + 1]]) for i in range(length)
    ]
    head = LiteralScheme.pattern("R", [variables[0], variables[1]])
    return MetaQuery(head, body, name=f"chain-mq-{length}")


def transitive_chain_metaquery(length: int) -> MetaQuery:
    """The transitivity-shaped variant ``R(X0, Xm) <- P1(X0,X1), ..., Pm(X(m-1),Xm)``.

    Its head connects the two chain ends, which makes ``H(MQ)`` cyclic
    (though the *body* is still width 1); used by the benchmarks to contrast
    acyclic and cyclic templates of the same body shape.
    """
    variables = [Variable(f"X{i}") for i in range(length + 1)]
    body = [
        LiteralScheme.pattern(f"P{i + 1}", [variables[i], variables[i + 1]]) for i in range(length)
    ]
    head = LiteralScheme.pattern("R", [variables[0], variables[length]])
    return MetaQuery(head, body, name=f"transitive-chain-mq-{length}")


def cyclic_metaquery(length: int) -> MetaQuery:
    """A cyclic variant: the last body pattern closes the loop back to ``X0``.

    ``R(X0, X0') <- P1(X0, X1), ..., Pm(X(m-1), X0)`` — its body hypergraph
    contains a cycle, forcing hypertree width 2 and exercising the general
    (intractable) engine path.
    """
    if length < 3:
        raise ValueError("a cyclic body needs at least three patterns")
    variables = [Variable(f"X{i}") for i in range(length)]
    body = [
        LiteralScheme.pattern(f"P{i + 1}", [variables[i], variables[(i + 1) % length]])
        for i in range(length)
    ]
    head = LiteralScheme.pattern("R", [variables[0], variables[1]])
    return MetaQuery(head, body, name=f"cycle-mq-{length}")


def random_database(
    relations: int,
    arity: int,
    tuples_per_relation: int,
    domain_size: int,
    seed: int = 0,
    name: str | None = None,
) -> Database:
    """Uniformly random relations — the "no structure" control workload."""
    rng = random.Random(seed)
    domain = [f"v{i}" for i in range(domain_size)]
    columns = tuple(f"c{i}" for i in range(arity))
    relation_objects = []
    for r in range(relations):
        rows = set()
        while len(rows) < min(tuples_per_relation, domain_size**arity):
            rows.add(tuple(rng.choice(domain) for _ in range(arity)))
        relation_objects.append(Relation.from_rows(f"r{r}", columns, rows))
    return Database(relation_objects, name=name or f"random-{relations}x{tuples_per_relation}")


def planted_rule_database(
    tuples: int = 100,
    noise: float = 0.2,
    confidence_target: float = 0.8,
    seed: int = 0,
) -> Database:
    """A three-relation database with one planted high-confidence rule.

    The planted dependency is ``head(X, Z) <- left(X, Y), right(Y, Z)``:
    roughly ``confidence_target`` of the joining (X, Z) pairs are inserted
    into ``head``.  A ``noise`` fraction of extra random tuples is added to
    every relation.  Used by the quickstart example and the FindRules
    correctness benchmarks.
    """
    rng = random.Random(seed)
    domain = [f"v{i}" for i in range(max(8, tuples // 2))]

    left = set()
    right = set()
    for _ in range(tuples):
        x, y, z = rng.choice(domain), rng.choice(domain), rng.choice(domain)
        left.add((x, y))
        right.add((y, z))
    # Plant the rule: a confidence_target fraction of the (X, Z) pairs that the
    # body join produces are inserted into the head relation.
    joining_pairs = sorted(
        {(x, z) for (x, y1) in left for (y2, z) in right if y1 == y2}
    )
    head = {pair for pair in joining_pairs if rng.random() < confidence_target}
    noise_count = int(tuples * noise)
    for _ in range(noise_count):
        left.add((rng.choice(domain), rng.choice(domain)))
        right.add((rng.choice(domain), rng.choice(domain)))
        head.add((rng.choice(domain), rng.choice(domain)))
    if not head:
        head = set(joining_pairs[:1]) or {(domain[0], domain[1])}

    return Database(
        [
            Relation.from_rows("left", ("a", "b"), left),
            Relation.from_rows("right", ("a", "b"), right),
            Relation.from_rows("head", ("a", "b"), head),
        ],
        name="planted-rule",
    )


def star_database(
    rays: int,
    tuples_per_relation: int,
    domain_size: int | None = None,
    seed: int = 0,
) -> Database:
    """Binary relations sharing their first column — the star-join workload."""
    rng = random.Random(seed)
    domain_size = domain_size or max(4, tuples_per_relation)
    hubs = [f"h{i}" for i in range(domain_size)]
    leaves = [f"l{i}" for i in range(domain_size)]
    relation_objects = []
    for r in range(rays):
        rows = set()
        while len(rows) < tuples_per_relation:
            rows.add((rng.choice(hubs), rng.choice(leaves)))
        relation_objects.append(Relation.from_rows(f"s{r}", ("hub", "leaf"), rows))
    return Database(relation_objects, name=f"star-{rays}x{tuples_per_relation}")


def widen_metaquery_arity(mq: MetaQuery, extra: int) -> MetaQuery:
    """Append ``extra`` fresh variables to every literal scheme of a metaquery.

    Used by the type-2 sweeps: the widened template is then mined over
    databases whose relations carry the extra attributes.
    """
    counter = 0

    def widen(scheme: LiteralScheme) -> LiteralScheme:
        nonlocal counter
        extra_terms = []
        for _ in range(extra):
            counter += 1
            extra_terms.append(Variable(f"W{counter}"))
        return LiteralScheme(scheme.predicate, list(scheme.terms) + extra_terms, scheme.is_pattern)

    return MetaQuery(widen(mq.head), [widen(s) for s in mq.body], name=f"{mq.name}-wide{extra}")
