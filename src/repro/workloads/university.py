"""A university-enrolment scenario: a second realistic mining workload.

The schema links students, courses, departments and instructors::

    enrolled(Student, Course)
    teaches(Instructor, Course)
    member_of(Instructor, Department)
    majors_in(Student, Department)
    attends_dept(Student, Department)   -- the "discoverable" relation

The planted dependency is *students attend courses taught by the department
they major in*: ``attends_dept`` is (mostly) the composition of ``enrolled``,
``teaches`` and ``member_of``.  The schema-driven-discovery example mines
this database with automatically generated chain metaqueries and finds the
dependency without being told where to look.
"""

from __future__ import annotations

import random

from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["university_database"]


def university_database(
    students: int = 40,
    courses: int = 12,
    instructors: int = 8,
    departments: int = 4,
    noise: float = 0.1,
    seed: int = 7,
) -> Database:
    """Generate the university workload.

    ``noise`` is the fraction of ``attends_dept`` tuples replaced by random
    pairs; it keeps the planted rule's confidence strictly below 1 so the
    thresholds in the example have something to do.
    """
    rng = random.Random(seed)
    student_names = [f"student{i}" for i in range(students)]
    course_names = [f"course{i}" for i in range(courses)]
    instructor_names = [f"instructor{i}" for i in range(instructors)]
    department_names = [f"dept{i}" for i in range(departments)]

    teaches = set()
    member_of = set()
    for instructor in instructor_names:
        department = rng.choice(department_names)
        member_of.add((instructor, department))
        for course in rng.sample(course_names, k=rng.randint(1, 3)):
            teaches.add((instructor, course))

    enrolled = set()
    majors_in = set()
    for student in student_names:
        majors_in.add((student, rng.choice(department_names)))
        for course in rng.sample(course_names, k=rng.randint(1, 4)):
            enrolled.add((student, course))

    course_to_departments: dict[str, set[str]] = {}
    instructor_department = dict(member_of)
    for instructor, course in teaches:
        course_to_departments.setdefault(course, set()).add(instructor_department[instructor])

    attends_dept = set()
    for student, course in enrolled:
        for department in course_to_departments.get(course, set()):
            if rng.random() < noise:
                department = rng.choice(department_names)
            attends_dept.add((student, department))

    return Database(
        [
            Relation.from_rows("enrolled", ("student", "course"), enrolled),
            Relation.from_rows("teaches", ("instructor", "course"), teaches),
            Relation.from_rows("member_of", ("instructor", "department"), member_of),
            Relation.from_rows("majors_in", ("student", "department"), majors_in),
            Relation.from_rows("attends_dept", ("student", "department"), attends_dept),
        ],
        name="university",
    )
