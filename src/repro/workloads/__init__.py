"""Workload generators used by examples, tests and benchmarks.

* :mod:`~repro.workloads.telecom` — the paper's running example: the
  relations ``UsCa``, ``CaTe`` and ``UsPT`` of Figures 1 and 2, plus a
  scalable synthetic generator that preserves the same dependencies;
* :mod:`~repro.workloads.synthetic` — random databases with planted rules,
  chain/star-join databases for the scaling experiments;
* :mod:`~repro.workloads.scaling` — size-parameterised wrappers (total
  tuple budget 10^3 → 10^5) driving the ablation scaling curves;
* :mod:`~repro.workloads.graphs` — random graphs, guaranteed-3-colorable
  graphs, path/cycle graphs and Hamiltonian-path gadgets used by the
  hardness-reduction experiments;
* :mod:`~repro.workloads.university` — a second realistic scenario
  (students, courses, enrolments, prerequisites) used by the
  schema-driven-discovery example.
"""

from repro.workloads import graphs, scaling, synthetic, telecom, university

__all__ = ["telecom", "synthetic", "scaling", "graphs", "university"]
