"""Hardness reductions and the reference solvers used to verify them.

Every NP / NP^PP / #P hardness claim of the paper comes with an explicit
reduction.  This package implements:

* the *source problems* and small exact solvers for them (CNF SAT and model
  counting, graph 3-coloring, Hamiltonian path, ∃C-3SAT), and
* the paper's *reductions* from those problems to metaquerying instances:

  - 3-COLORING → ``⟨DB, MQ, I, 0, T⟩``            (Theorem 3.21)
  - 3-COLORING → semi-acyclic type-0 metaquery    (Theorem 3.35)
  - HAMILTONIAN PATH → acyclic type-1/2 metaquery (Theorem 3.33)
  - ∃C-3SAT → ``⟨DB, MQ, cnf, k, 0/1/2⟩``          (Theorems 3.28/3.29)
  - 3SAT → #BCQ (parsimonious)                    (Proposition 3.26)

The Figure 5 benchmarks sweep instance sizes through these reductions and
check that the metaquery engine's verdict always matches the reference
solver's.
"""

from repro.reductions.sat import (
    CNFFormula,
    Clause,
    Literal,
    count_models,
    is_satisfiable_formula,
    random_3cnf,
)
from repro.reductions.coloring import (
    coloring_reduction,
    is_3colorable,
    semi_acyclic_coloring_reduction,
)
from repro.reductions.hamiltonian import hamiltonian_path_reduction, has_hamiltonian_path
from repro.reductions.ec3sat import (
    EC3SATInstance,
    ec3sat_holds,
    ec3sat_reduction_type0,
    ec3sat_reduction_type12,
)
from repro.reductions.bcq import sharp_3sat_to_bcq

__all__ = [
    "Literal",
    "Clause",
    "CNFFormula",
    "random_3cnf",
    "is_satisfiable_formula",
    "count_models",
    "is_3colorable",
    "coloring_reduction",
    "semi_acyclic_coloring_reduction",
    "has_hamiltonian_path",
    "hamiltonian_path_reduction",
    "EC3SATInstance",
    "ec3sat_holds",
    "ec3sat_reduction_type0",
    "ec3sat_reduction_type12",
    "sharp_3sat_to_bcq",
]
