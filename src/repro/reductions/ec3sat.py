"""∃C-3SAT and its reductions to confidence-threshold metaquerying.

``∃C-3SAT`` (Definition 3.12) asks: given a 3-CNF formula ``F`` over two
disjoint variable sets ``Π`` (the existential block) and ``χ`` (the counting
block) and an integer ``k'``, is there an assignment of ``Π`` under which at
least ``k'`` assignments of ``χ`` satisfy ``F``?  The problem is complete for
``∃C·P = NP^PP`` (Theorem 3.13), and Theorems 3.28 / 3.29 reduce it to
``⟨DB, MQ, cnf, (k'-1)/2^h, T⟩`` — this is where the confidence index's need
for exact counting shows up in the complexity.

Both reductions of the paper are implemented: the type-0 one (one predicate
variable per Π-variable; relations ``pa``/``pb`` carry the guessed truth
value) and the type-1/2 one (a single predicate variable ``P'``; the
*argument permutation* carries the guessed truth value, with the auxiliary
``ch`` relation pinning the third attribute).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.core.instantiation import InstantiationType
from repro.core.metaquery import LiteralScheme, MetaQuery
from repro.core.problems import MetaqueryDecisionProblem
from repro.datalog.terms import Variable
from repro.exceptions import ReductionError
from repro.reductions.sat import CNFFormula, iter_assignments
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = [
    "EC3SATInstance",
    "ec3sat_holds",
    "ec3sat_database_type0",
    "ec3sat_metaquery_type0",
    "ec3sat_reduction_type0",
    "ec3sat_database_type12",
    "ec3sat_metaquery_type12",
    "ec3sat_reduction_type12",
]


@dataclass(frozen=True)
class EC3SATInstance:
    """One ∃C-3SAT instance ``⟨F, k', Π, χ⟩``.

    ``formula`` must be in 3-CNF; every clause literal's variable must belong
    to ``pi_variables ∪ chi_variables``.
    """

    formula: CNFFormula
    k_prime: int
    pi_variables: tuple[str, ...]
    chi_variables: tuple[str, ...]

    def __init__(
        self,
        formula: CNFFormula,
        k_prime: int,
        pi_variables: Sequence[str],
        chi_variables: Sequence[str],
    ) -> None:
        if not formula.is_3cnf():
            raise ReductionError("∃C-3SAT requires a 3-CNF formula")
        pi = tuple(pi_variables)
        chi = tuple(chi_variables)
        if set(pi) & set(chi):
            raise ReductionError("Π and χ must be disjoint")
        unknown = set(formula.variables) - set(pi) - set(chi)
        if unknown:
            raise ReductionError(f"formula variables outside Π ∪ χ: {sorted(unknown)}")
        if k_prime < 1:
            raise ReductionError("k' must be at least 1")
        object.__setattr__(self, "formula", formula)
        object.__setattr__(self, "k_prime", k_prime)
        object.__setattr__(self, "pi_variables", pi)
        object.__setattr__(self, "chi_variables", chi)

    @property
    def threshold(self) -> Fraction:
        """The confidence threshold ``(k' - 1) / 2^h`` of the reduction."""
        return Fraction(self.k_prime - 1, 2 ** len(self.chi_variables))


def ec3sat_holds(instance: EC3SATInstance) -> bool:
    """Reference solver: brute-force over Π and count χ assignments."""
    for pi_assignment in iter_assignments(instance.pi_variables):
        count = 0
        for chi_assignment in iter_assignments(instance.chi_variables):
            assignment = {**pi_assignment, **chi_assignment}
            if instance.formula.satisfied_by(assignment):
                count += 1
        if count >= instance.k_prime:
            return True
    return False


# ----------------------------------------------------------------------
# shared pieces of both reductions
# ----------------------------------------------------------------------
def _clause_relation() -> Relation:
    """``c'(L1, L2, L3, C)``: the truth table of a three-literal clause."""
    rows = []
    for l1 in (0, 1):
        for l2 in (0, 1):
            for l3 in (0, 1):
                rows.append((l1, l2, l3, 1 if (l1 or l2 or l3) else 0))
    return Relation.from_rows("cprime", ("l1", "l2", "l3", "c"), rows)


def _head_relation(n_clauses: int) -> Relation:
    """``c(C1, ..., Cn) = {⟨1, ..., 1⟩}``: selects all-satisfied clause vectors."""
    columns = tuple(f"cl{i}" for i in range(n_clauses))
    return Relation.from_rows("call", columns, [tuple(1 for _ in range(n_clauses))])


def _literal_argument(instance: EC3SATInstance, variable: str, positive: bool) -> Variable:
    """The metaquery variable standing for one literal occurrence."""
    if variable in instance.pi_variables:
        return Variable(f"P_{variable}" if positive else f"NP_{variable}")
    return Variable(f"Q_{variable}" if positive else f"NQ_{variable}")


def _clause_schemes(instance: EC3SATInstance) -> list[LiteralScheme]:
    """One ``c'`` atom per clause, padded to three literals by repetition."""
    schemes = []
    for i, clause in enumerate(instance.formula.clauses):
        literals = list(clause.literals)
        while len(literals) < 3:
            literals.append(literals[-1])
        args = [_literal_argument(instance, lit.variable, lit.positive) for lit in literals[:3]]
        args.append(Variable(f"C{i}"))
        schemes.append(LiteralScheme.atom("cprime", args))
    return schemes


def _head_scheme(instance: EC3SATInstance) -> LiteralScheme:
    return LiteralScheme.atom(
        "call", [Variable(f"C{i}") for i in range(len(instance.formula.clauses))]
    )


def _chi_schemes(instance: EC3SATInstance) -> list[LiteralScheme]:
    """``q(Q_y, NQ_y)`` for every counting variable ``y``."""
    return [
        LiteralScheme.atom("q", [Variable(f"Q_{y}"), Variable(f"NQ_{y}")])
        for y in instance.chi_variables
    ]


# ----------------------------------------------------------------------
# Theorem 3.28: the type-0 reduction
# ----------------------------------------------------------------------
def ec3sat_database_type0(instance: EC3SATInstance) -> Database:
    """``DB_csat`` for the type-0 reduction: ``pa``, ``pb``, ``q``, ``c'``, ``c``."""
    pa = Relation.from_rows("pa", ("t", "f", "y"), [(1, 0, "l")])
    pb = Relation.from_rows("pb", ("t", "f", "y"), [(0, 1, "l")])
    q = Relation.from_rows("q", ("t", "f"), [(1, 0), (0, 1)])
    return Database(
        [pa, pb, q, _clause_relation(), _head_relation(len(instance.formula.clauses))],
        name="DBcsat-type0",
    )


def ec3sat_metaquery_type0(instance: EC3SATInstance) -> MetaQuery:
    """``MQ_csat`` for the type-0 reduction: one predicate variable per Π-variable."""
    body: list[LiteralScheme] = []
    shared_y = Variable("Y")
    for p in instance.pi_variables:
        body.append(
            LiteralScheme.pattern(
                f"PV_{p}", [Variable(f"P_{p}"), Variable(f"NP_{p}"), shared_y]
            )
        )
    body.extend(_chi_schemes(instance))
    body.extend(_clause_schemes(instance))
    return MetaQuery(_head_scheme(instance), body, name="MQcsat-type0")


def ec3sat_reduction_type0(instance: EC3SATInstance) -> MetaqueryDecisionProblem:
    """Theorem 3.28: YES iff the ∃C-3SAT instance is a YES instance."""
    if not instance.pi_variables:
        raise ReductionError("the type-0 reduction needs at least one Π variable")
    return MetaqueryDecisionProblem(
        db=ec3sat_database_type0(instance),
        mq=ec3sat_metaquery_type0(instance),
        index="cnf",
        k=instance.threshold,
        itype=InstantiationType.TYPE_0,
        label=f"EC3SAT(|Π|={len(instance.pi_variables)},|χ|={len(instance.chi_variables)},k'={instance.k_prime})",
    )


# ----------------------------------------------------------------------
# Theorem 3.29: the type-1 / type-2 reduction
# ----------------------------------------------------------------------
def ec3sat_database_type12(instance: EC3SATInstance) -> Database:
    """``DB_csat`` for the type-1/2 reduction: ``p``, ``q``, ``ch``, ``c'``, ``c``."""
    p = Relation.from_rows("p", ("t", "f", "y"), [(1, 0, "l")])
    q = Relation.from_rows("q", ("t", "f"), [(1, 0), (0, 1)])
    ch = Relation.from_rows("ch", ("y",), [("l",)])
    return Database(
        [p, q, ch, _clause_relation(), _head_relation(len(instance.formula.clauses))],
        name="DBcsat-type12",
    )


def ec3sat_metaquery_type12(instance: EC3SATInstance) -> MetaQuery:
    """``MQ_csat`` for the type-1/2 reduction: a single predicate variable ``P'``.

    The permutation chosen for each occurrence ``P'(P_p, NP_p, Y)`` encodes
    the truth value of the Π-variable ``p``; the ``ch(Y)`` atom forces the
    shared third attribute so ``P'`` can only match ``p`` and the permutation
    cannot hide ``Y`` in a value column.
    """
    body: list[LiteralScheme] = []
    shared_y = Variable("Y")
    for p in instance.pi_variables:
        body.append(
            LiteralScheme.pattern("PV", [Variable(f"P_{p}"), Variable(f"NP_{p}"), shared_y])
        )
    body.append(LiteralScheme.atom("ch", [shared_y]))
    body.extend(_chi_schemes(instance))
    body.extend(_clause_schemes(instance))
    return MetaQuery(_head_scheme(instance), body, name="MQcsat-type12")


def ec3sat_reduction_type12(
    instance: EC3SATInstance,
    itype: InstantiationType | int = InstantiationType.TYPE_1,
) -> MetaqueryDecisionProblem:
    """Theorem 3.29: YES iff the ∃C-3SAT instance is a YES instance (types 1/2)."""
    itype = InstantiationType.coerce(itype)
    if itype is InstantiationType.TYPE_0:
        raise ReductionError("Theorem 3.29 applies to instantiation types 1 and 2 only")
    if not instance.pi_variables:
        raise ReductionError("the type-1/2 reduction needs at least one Π variable")
    return MetaqueryDecisionProblem(
        db=ec3sat_database_type12(instance),
        mq=ec3sat_metaquery_type12(instance),
        index="cnf",
        k=instance.threshold,
        itype=itype,
        label=f"EC3SAT-perm(|Π|={len(instance.pi_variables)},|χ|={len(instance.chi_variables)},k'={instance.k_prime})",
    )
