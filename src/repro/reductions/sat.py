"""CNF formulas, a DPLL satisfiability solver and an exact model counter.

These are the *reference oracles* of the complexity experiments: the
reductions of Theorems 3.21-3.29 and Proposition 3.26 transform SAT-like
instances into metaquerying instances, and the benchmarks check that the
metaquery engine's verdict matches the verdict computed here directly.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import ReductionError

__all__ = [
    "Literal",
    "Clause",
    "CNFFormula",
    "clause_from_ints",
    "formula_from_ints",
    "random_3cnf",
    "dpll",
    "is_satisfiable_formula",
    "iter_assignments",
    "count_models",
]


@dataclass(frozen=True, order=True)
class Literal:
    """A propositional literal: a variable name and a sign."""

    variable: str
    positive: bool = True

    def negate(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        """True when the (total) assignment makes this literal true."""
        return assignment[self.variable] == self.positive

    def __str__(self) -> str:
        return self.variable if self.positive else f"~{self.variable}"


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals."""

    literals: tuple[Literal, ...]

    def __init__(self, literals: Iterable[Literal]) -> None:
        object.__setattr__(self, "literals", tuple(literals))
        if not self.literals:
            raise ReductionError("a clause must contain at least one literal")

    @property
    def variables(self) -> frozenset[str]:
        """Variables mentioned by the clause."""
        return frozenset(lit.variable for lit in self.literals)

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        """True when some literal of the clause is true under the assignment."""
        return any(lit.satisfied_by(assignment) for lit in self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __str__(self) -> str:
        return "(" + " | ".join(str(lit) for lit in self.literals) + ")"


@dataclass(frozen=True)
class CNFFormula:
    """A conjunction of clauses."""

    clauses: tuple[Clause, ...]

    def __init__(self, clauses: Iterable[Clause]) -> None:
        object.__setattr__(self, "clauses", tuple(clauses))
        if not self.clauses:
            raise ReductionError("a CNF formula must contain at least one clause")

    @property
    def variables(self) -> tuple[str, ...]:
        """All variables, sorted for deterministic iteration."""
        names: set[str] = set()
        for clause in self.clauses:
            names |= clause.variables
        return tuple(sorted(names))

    def is_3cnf(self) -> bool:
        """True when every clause has at most three literals."""
        return all(len(clause) <= 3 for clause in self.clauses)

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        """True when every clause is satisfied."""
        return all(clause.satisfied_by(assignment) for clause in self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:
        return " & ".join(str(c) for c in self.clauses)


# ----------------------------------------------------------------------
# construction helpers
# ----------------------------------------------------------------------
def clause_from_ints(ints: Sequence[int], prefix: str = "x") -> Clause:
    """DIMACS-style clause: positive/negative integers name the variables."""
    literals = []
    for value in ints:
        if value == 0:
            raise ReductionError("0 is not a valid DIMACS literal")
        literals.append(Literal(f"{prefix}{abs(value)}", value > 0))
    return Clause(literals)


def formula_from_ints(clauses: Sequence[Sequence[int]], prefix: str = "x") -> CNFFormula:
    """Build a formula from DIMACS-style integer clauses."""
    return CNFFormula(clause_from_ints(c, prefix) for c in clauses)


def random_3cnf(variables: int, clauses: int, seed: int = 0) -> CNFFormula:
    """A uniformly random 3-CNF formula over ``x1 .. x{variables}``."""
    rng = random.Random(seed)
    names = [f"x{i + 1}" for i in range(variables)]
    built = []
    for _ in range(clauses):
        chosen = rng.sample(names, k=min(3, variables))
        built.append(Clause(Literal(v, rng.random() < 0.5) for v in chosen))
    return CNFFormula(built)


# ----------------------------------------------------------------------
# solving and counting
# ----------------------------------------------------------------------
def _unit_propagate(clauses: list[frozenset[Literal]], assignment: dict[str, bool]) -> list[frozenset[Literal]] | None:
    """Simplify by unit propagation; None signals a conflict."""
    changed = True
    while changed:
        changed = False
        new_clauses: list[frozenset[Literal]] = []
        for clause in clauses:
            satisfied = False
            remaining: list[Literal] = []
            for lit in clause:
                if lit.variable in assignment:
                    if assignment[lit.variable] == lit.positive:
                        satisfied = True
                        break
                else:
                    remaining.append(lit)
            if satisfied:
                continue
            if not remaining:
                return None
            if len(remaining) == 1:
                unit = remaining[0]
                assignment[unit.variable] = unit.positive
                changed = True
            else:
                new_clauses.append(frozenset(remaining))
        clauses = new_clauses
    return clauses


def dpll(formula: CNFFormula) -> dict[str, bool] | None:
    """A satisfying assignment, or None when the formula is unsatisfiable."""

    def search(clauses: list[frozenset[Literal]], assignment: dict[str, bool]) -> dict[str, bool] | None:
        simplified = _unit_propagate(list(clauses), assignment)
        if simplified is None:
            return None
        if not simplified:
            return assignment
        # pick the first unassigned variable of the first clause
        variable = next(iter(simplified[0])).variable
        for value in (True, False):
            trial = dict(assignment)
            trial[variable] = value
            result = search(simplified, trial)
            if result is not None:
                return result
        return None

    initial = [frozenset(clause.literals) for clause in formula.clauses]
    partial = search(initial, {})
    if partial is None:
        return None
    return {v: partial.get(v, False) for v in formula.variables}


def is_satisfiable_formula(formula: CNFFormula) -> bool:
    """SAT decision via :func:`dpll`."""
    return dpll(formula) is not None


def iter_assignments(variables: Sequence[str]) -> Iterator[dict[str, bool]]:
    """All total assignments over the given variables (lexicographic order)."""
    for bits in itertools.product((False, True), repeat=len(variables)):
        yield dict(zip(variables, bits))


def count_models(formula: CNFFormula, over: Sequence[str] | None = None) -> int:
    """Exact #SAT: the number of satisfying total assignments.

    ``over`` optionally fixes the variable set the count ranges over (so
    formulas not mentioning some variable still count both of its values);
    by default the formula's own variables are used.
    """
    variables = tuple(over) if over is not None else formula.variables
    missing = set(formula.variables) - set(variables)
    if missing:
        raise ReductionError(f"count variables missing from 'over': {sorted(missing)}")
    return sum(1 for assignment in iter_assignments(variables) if formula.satisfied_by(assignment))
