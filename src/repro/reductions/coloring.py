"""Graph 3-coloring: exact solver and the paper's two reductions.

* :func:`is_3colorable` — a backtracking reference solver.
* :func:`coloring_reduction` — Theorem 3.21: 3-COLORING reduces to
  ``⟨DB, MQ, I, 0, T⟩`` for every index ``I ∈ {sup, cnf, cvr}`` and every
  instantiation type, using a single binary relation ``e`` holding the six
  legally-colored ordered pairs and a metaquery that encodes the graph's
  edges as relation patterns over a single predicate variable.
* :func:`semi_acyclic_coloring_reduction` — Theorem 3.35: the variant whose
  metaquery is *semi-acyclic* (one predicate variable per graph node, three
  color relations ``r'``, ``g'``, ``b'``), showing that semi-acyclicity does
  not buy tractability for type-0 evaluation.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.core.instantiation import InstantiationType
from repro.core.metaquery import LiteralScheme, MetaQuery
from repro.core.problems import MetaqueryDecisionProblem
from repro.datalog.terms import Variable
from repro.exceptions import ReductionError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.workloads.graphs import Graph

__all__ = [
    "find_3coloring",
    "is_3colorable",
    "coloring_database",
    "coloring_metaquery",
    "coloring_reduction",
    "semi_acyclic_coloring_database",
    "semi_acyclic_coloring_metaquery",
    "semi_acyclic_coloring_reduction",
]


# ----------------------------------------------------------------------
# reference solver
# ----------------------------------------------------------------------
def find_3coloring(graph: Graph) -> Mapping[str, int] | None:
    """A proper 3-coloring (vertex -> {0,1,2}), or None when none exists."""
    vertices = sorted(graph.vertices, key=lambda v: -len(graph.neighbours(v)))
    colouring: dict[str, int] = {}

    def backtrack(index: int) -> bool:
        if index == len(vertices):
            return True
        vertex = vertices[index]
        for colour in range(3):
            if all(colouring.get(n) != colour for n in graph.neighbours(vertex)):
                colouring[vertex] = colour
                if backtrack(index + 1):
                    return True
                del colouring[vertex]
        return False

    return dict(colouring) if backtrack(0) else None


def is_3colorable(graph: Graph) -> bool:
    """True when the graph admits a proper 3-coloring."""
    return find_3coloring(graph) is not None


# ----------------------------------------------------------------------
# Theorem 3.21: 3-COLORING -> <DB, MQ, I, 0, T>
# ----------------------------------------------------------------------
def coloring_database() -> Database:
    """``DB_3col``: the single relation ``e`` of legally colored ordered pairs."""
    pairs = [(a, b) for a, b in itertools.permutations((1, 2, 3), 2)]
    return Database([Relation.from_rows("e", ("c1", "c2"), pairs)], name="DB3col")


def coloring_metaquery(graph: Graph) -> MetaQuery:
    """``MQ_3col``: the graph's edges as patterns over one predicate variable ``E``.

    The head repeats the first edge pattern, so the whole rule's certifying
    set (for any of the three indices) is exactly the edge encoding ``S``.
    """
    if graph.edge_count == 0:
        raise ReductionError("the 3-coloring reduction needs at least one edge")
    edges = sorted(graph.edges)
    patterns = [
        LiteralScheme.pattern("E", [Variable(f"X_{u}"), Variable(f"X_{v}")]) for u, v in edges
    ]
    return MetaQuery(patterns[0], patterns, name=f"MQ3col-{graph.vertex_count}v")


def coloring_reduction(
    graph: Graph,
    index: str = "cnf",
    itype: InstantiationType | int = InstantiationType.TYPE_0,
) -> MetaqueryDecisionProblem:
    """The full Theorem 3.21 instance: YES iff the graph is 3-colorable."""
    return MetaqueryDecisionProblem(
        db=coloring_database(),
        mq=coloring_metaquery(graph),
        index=index,
        k=0,
        itype=itype,
        label=f"3COL({graph.vertex_count}v,{graph.edge_count}e)",
    )


# ----------------------------------------------------------------------
# Theorem 3.35: the semi-acyclic variant
# ----------------------------------------------------------------------
def semi_acyclic_coloring_database() -> Database:
    """The three color relations ``r'``, ``g'``, ``b'`` of Theorem 3.35."""
    r_prime = Relation.from_rows("r_prime", ("other", "own"), [("g", "r"), ("b", "r")])
    g_prime = Relation.from_rows("g_prime", ("other", "own"), [("r", "g"), ("b", "g")])
    b_prime = Relation.from_rows("b_prime", ("other", "own"), [("g", "b"), ("r", "b")])
    return Database([r_prime, g_prime, b_prime], name="DB3col-semiacyclic")


def semi_acyclic_coloring_metaquery(graph: Graph) -> MetaQuery:
    """``MQ_3col`` of Theorem 3.35: one predicate variable ``X'_u`` per node.

    The body is ``S' ∪ S''`` where ``S'`` encodes the edges (pattern
    ``X'_u(X_v, _)`` for every edge ``(u, v)``) and ``S''`` ties each node's
    predicate variable to its own color (pattern ``X'_z(_, X_z)``); every
    ``_`` is a fresh mute variable.  The head repeats the first edge pattern.
    """
    if graph.edge_count == 0:
        raise ReductionError("the 3-coloring reduction needs at least one edge")
    mute_counter = itertools.count(1)

    def mute() -> Variable:
        return Variable(f"M{next(mute_counter)}")

    edges = sorted(graph.edges)
    s_prime = [
        LiteralScheme.pattern(f"C_{u}", [Variable(f"X_{v}"), mute()]) for u, v in edges
    ]
    s_second = [
        LiteralScheme.pattern(f"C_{z}", [mute(), Variable(f"X_{z}")]) for z in graph.vertices
    ]
    head = s_prime[0]
    return MetaQuery(head, s_prime + s_second, name=f"MQ3col-semiacyclic-{graph.vertex_count}v")


def semi_acyclic_coloring_reduction(
    graph: Graph,
    index: str = "cnf",
) -> MetaqueryDecisionProblem:
    """The Theorem 3.35 instance (type-0 only): YES iff the graph is 3-colorable."""
    return MetaqueryDecisionProblem(
        db=semi_acyclic_coloring_database(),
        mq=semi_acyclic_coloring_metaquery(graph),
        index=index,
        k=0,
        itype=InstantiationType.TYPE_0,
        label=f"3COL-semiacyclic({graph.vertex_count}v,{graph.edge_count}e)",
    )
