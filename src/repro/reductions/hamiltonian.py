"""Hamiltonian path: exact solver and the Theorem 3.33 reduction.

Theorem 3.33 shows that acyclicity alone does not make type-1/2 metaquerying
tractable: an undirected graph has a Hamiltonian path iff the (acyclic)
metaquery

``N(X1, ..., Xn) <- N(X1, ..., Xn), e(X1, X2), ..., e(X(n-1), Xn)``

has an instantiation with a positive index over the database holding one
``g`` tuple listing the node names and the edge relation ``e`` — under
type-1 (or type-2) instantiations the predicate variable ``N`` can only
match ``g``, and the argument permutation it picks *is* the Hamiltonian
path.
"""

from __future__ import annotations

from repro.core.instantiation import InstantiationType
from repro.core.metaquery import LiteralScheme, MetaQuery
from repro.core.problems import MetaqueryDecisionProblem
from repro.datalog.terms import Variable
from repro.exceptions import ReductionError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.workloads.graphs import Graph

__all__ = [
    "find_hamiltonian_path",
    "has_hamiltonian_path",
    "hamiltonian_database",
    "hamiltonian_metaquery",
    "hamiltonian_path_reduction",
]


def find_hamiltonian_path(graph: Graph) -> list[str] | None:
    """A Hamiltonian path as a vertex list, or None when none exists."""
    vertices = list(graph.vertices)
    n = len(vertices)
    if n == 0:
        return None
    if n == 1:
        return vertices

    def backtrack(path: list[str], remaining: set[str]) -> list[str] | None:
        if not remaining:
            return path
        last = path[-1]
        for vertex in sorted(remaining):
            if graph.has_edge(last, vertex):
                result = backtrack(path + [vertex], remaining - {vertex})
                if result is not None:
                    return result
        return None

    for start in vertices:
        result = backtrack([start], set(vertices) - {start})
        if result is not None:
            return result
    return None


def has_hamiltonian_path(graph: Graph) -> bool:
    """True when the graph contains a Hamiltonian path."""
    return find_hamiltonian_path(graph) is not None


def hamiltonian_database(graph: Graph) -> Database:
    """``DB_ham``: the single-tuple node-list relation ``g`` plus the edge relation ``e``.

    The edge relation stores both orientations of every undirected edge so
    that a path can traverse an edge in either direction.
    """
    vertices = list(graph.vertices)
    g = Relation.from_rows("g", tuple(f"n{i}" for i in range(len(vertices))), [tuple(vertices)])
    e = Relation.from_rows("e", ("src", "dst"), sorted(graph.directed_edges()))
    return Database([g, e], name=f"DBham-{len(vertices)}v")


def hamiltonian_metaquery(graph: Graph) -> MetaQuery:
    """``MQ_ham``: the acyclic metaquery whose instantiation encodes the path."""
    n = graph.vertex_count
    if n <= 2:
        raise ReductionError("the Hamiltonian-path reduction assumes |V| > 2")
    variables = [Variable(f"X{i + 1}") for i in range(n)]
    pattern = LiteralScheme.pattern("N", variables)
    body: list[LiteralScheme] = [pattern]
    body.extend(
        LiteralScheme.atom("e", [variables[i], variables[i + 1]]) for i in range(n - 1)
    )
    return MetaQuery(pattern, body, name=f"MQham-{n}v")


def hamiltonian_path_reduction(
    graph: Graph,
    index: str = "sup",
    itype: InstantiationType | int = InstantiationType.TYPE_1,
) -> MetaqueryDecisionProblem:
    """The Theorem 3.33 instance: YES iff the graph has a Hamiltonian path.

    Only types 1 and 2 are meaningful (under type-0 the identity argument
    order forces the path ``v1, v2, ..., vn`` in the node-list order, so the
    reduction would no longer be equivalence-preserving); passing type 0
    raises :class:`ReductionError`.
    """
    itype = InstantiationType.coerce(itype)
    if itype is InstantiationType.TYPE_0:
        raise ReductionError("Theorem 3.33 applies to instantiation types 1 and 2 only")
    return MetaqueryDecisionProblem(
        db=hamiltonian_database(graph),
        mq=hamiltonian_metaquery(graph),
        index=index,
        k=0,
        itype=itype,
        label=f"HAMPATH({graph.vertex_count}v,{graph.edge_count}e)",
    )
