"""The parsimonious 3SAT → #BCQ reduction of Proposition 3.26.

Counting the substitutions that satisfy a Boolean conjunctive query is
#P-complete: every 3-CNF formula ``F`` maps to a conjunctive query ``Q`` and
a database ``DB`` such that the number of satisfying assignments of ``F``
equals the number of satisfying substitutions of ``Q`` over ``DB``.  The
confidence index needs exactly this kind of count, which is what pushes its
combined complexity to NP^PP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.atoms import Atom
from repro.datalog.rules import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.exceptions import ReductionError
from repro.reductions.sat import CNFFormula
from repro.relational.database import Database
from repro.relational.relation import Relation

__all__ = ["BCQInstance", "sharp_3sat_to_bcq"]


@dataclass(frozen=True)
class BCQInstance:
    """The output of the reduction: a conjunctive query plus its database."""

    query: ConjunctiveQuery
    db: Database


def sharp_3sat_to_bcq(formula: CNFFormula) -> BCQInstance:
    """Proposition 3.26: a parsimonious transformation from #3SAT to #BCQ.

    Every clause ``cl_i = x1 ∨ x2 ∨ x3`` becomes a ternary relation ``c_i``
    over ``{0, 1}`` containing all tuples except the single one encoding
    "every literal false", and a query atom ``c_i(X1, X2, X3)`` whose
    variables are the clause's *propositional variables* (so positive and
    negative occurrences of the same variable share the query variable).
    The number of satisfying substitutions of the query equals the number of
    satisfying assignments of the formula over the variables it mentions.
    """
    if not formula.is_3cnf():
        raise ReductionError("the reduction is defined for 3-CNF formulas")

    universe = (0, 1)
    relations = []
    atoms = []
    for i, clause in enumerate(formula.clauses):
        literals = list(clause.literals)
        while len(literals) < 3:
            literals.append(literals[-1])
        literals = literals[:3]
        # the unique falsifying tuple: 0 for a positive literal, 1 for a negative one
        falsifying = tuple(0 if lit.positive else 1 for lit in literals)
        rows = [
            (a, b, c)
            for a in universe
            for b in universe
            for c in universe
            if (a, b, c) != falsifying
        ]
        relations.append(Relation.from_rows(f"c{i}", ("p1", "p2", "p3"), rows))
        atoms.append(Atom(f"c{i}", [Variable(f"V_{lit.variable}") for lit in literals]))

    return BCQInstance(query=ConjunctiveQuery(atoms), db=Database(relations, name="DB-sharpbcq"))
