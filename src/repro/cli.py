"""Command-line interface: mine a directory of CSV files with a metaquery.

Usage (also available as ``python -m repro``)::

    python -m repro mine DATA_DIR "R(X,Z) <- P(X,Y), Q(Y,Z)" \
        --support 0.2 --confidence 0.5 --cover 0.0 --type 1

    python -m repro mine DATA_DIR "R(X,Z) <- P(X,Y), Q(Y,Z)" --workers 4
    python -m repro serve DATA_DIR --port 8265
    python -m repro info DATA_DIR
    python -m repro classify "R(X,Z) <- P(X,Y), Q(Y,Z)"

``DATA_DIR`` must contain one CSV file per relation (header row = column
names), as produced by :func:`repro.relational.io.save_database`.

The ``mine`` subcommand exposes the engine's four ablation switches:
``--no-cache`` (evaluation memoization), ``--no-fast-path`` (acyclic
Yannakakis joins), ``--no-batch`` (shape-grouped batched evaluation) and
``--workers N`` (shard shape groups across N worker processes; the default
``--workers 1`` is fully serial and never spawns a pool), plus the cache
lifecycle knobs ``--cache-limit N`` (LRU-bound the memoization caches for
long-running use) and ``--no-request-cache`` (disable the request-level
answer cache).  All switches only change speed, never answers — see
``docs/architecture.md`` for the full matrix.  ``--stream`` prints answers
incrementally as the engine confirms them (with ``--limit`` as an early
stop) and ``--stats`` reports the cache/batch/lifecycle/request/shard
telemetry counters after mining.

The ``serve`` subcommand puts the :mod:`repro.server` HTTP/1.1 + SSE
front end over one or more CSV database directories (database-per-tenant)
with per-client rate limits, stream backpressure, and a graceful
SIGTERM drain — see ``docs/architecture.md``'s service-layer section.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Sequence

from repro.core.acyclicity import classify
from repro.core.answers import Thresholds
from repro.core.engine import ALGORITHMS, MetaqueryEngine
from repro.core.metaquery import parse_metaquery
from repro.relational.io import load_database

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Metaquery mining (reproduction of 'Computational Properties of Metaquerying Problems')",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    mine = subparsers.add_parser("mine", help="answer a metaquery over a CSV database directory")
    mine.add_argument("data_dir", help="directory with one CSV file per relation")
    mine.add_argument("metaquery", help="metaquery text, e.g. 'R(X,Z) <- P(X,Y), Q(Y,Z)'")
    mine.add_argument("--support", type=float, default=None, help="support threshold (strict >)")
    mine.add_argument("--confidence", type=float, default=None, help="confidence threshold (strict >)")
    mine.add_argument("--cover", type=float, default=None, help="cover threshold (strict >)")
    mine.add_argument("--type", dest="itype", type=int, choices=(0, 1, 2), default=0,
                      help="instantiation type (default 0)")
    mine.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    mine.add_argument("--sort-by", choices=("sup", "cnf", "cvr"), default="cnf")
    mine.add_argument("--limit", type=int, default=None, help="print at most this many answers")
    mine.add_argument("--no-cache", action="store_true",
                      help="disable evaluation memoization (ablation baseline)")
    mine.add_argument("--no-fast-path", action="store_true",
                      help="disable the acyclic Yannakakis join fast path")
    mine.add_argument("--no-batch", action="store_true",
                      help="disable shape-grouped batched instantiation evaluation")
    mine.add_argument("--workers", type=int, default=1, metavar="N",
                      help="shard shape groups across N worker processes "
                           "(default 1: serial, no pool is spawned)")
    mine.add_argument("--cache-limit", type=int, default=None, metavar="N",
                      help="bound the memoization caches to N entries total "
                           "(atoms + joins + fractions + shape groups, LRU "
                           "eviction; default: unbounded)")
    mine.add_argument("--no-request-cache", action="store_true",
                      help="disable the request-level answer cache (repeat "
                           "requests re-evaluate instead of replaying)")
    mine.add_argument("--stream", action="store_true",
                      help="print answers incrementally as the engine confirms them "
                           "(emission order; --sort-by is ignored, --limit stops early)")
    mine.add_argument("--stats", action="store_true",
                      help="print cache/batch/shard telemetry counters after mining")

    serve = subparsers.add_parser(
        "serve", help="serve metaquery mining over HTTP/1.1 + SSE (see repro.server)"
    )
    serve.add_argument("data_dir", help="CSV database directory for the 'default' tenant")
    serve.add_argument("--tenant", action="append", default=[], metavar="NAME=DIR",
                       help="serve an additional tenant from another CSV database "
                            "directory (repeatable)")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind (default loopback)")
    serve.add_argument("--port", type=int, default=8265,
                       help="port to bind (0 picks an ephemeral port; default 8265)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes per tenant engine (default 1: serial)")
    serve.add_argument("--cache-limit", type=int, default=None, metavar="N",
                       help="bound each tenant engine's memoization caches to N entries")
    serve.add_argument("--no-request-cache", action="store_true",
                       help="disable the request-level answer cache (repeat requests "
                            "re-evaluate instead of replaying)")
    serve.add_argument("--max-concurrency", type=int, default=8, metavar="N",
                       help="process-wide cap on concurrently executing blocking "
                            "stages, shared by all tenants (default 8)")
    serve.add_argument("--rate", type=float, default=50.0, metavar="R",
                       help="per-client admission rate in requests/second "
                            "(0 disables rate limiting; default 50)")
    serve.add_argument("--burst", type=float, default=20.0, metavar="B",
                       help="per-client token-bucket burst size (default 20)")
    serve.add_argument("--max-streams", type=int, default=8, metavar="N",
                       help="cap on concurrently executing SSE streams; beyond it "
                            "the server answers 503 with Retry-After (default 8)")
    serve.add_argument("--drain-timeout", type=float, default=10.0, metavar="SECONDS",
                       help="how long the SIGTERM drain waits for in-flight streams "
                            "before closing the engines (default 10)")

    info = subparsers.add_parser("info", help="show the schema and sizes of a CSV database directory")
    info.add_argument("data_dir")

    classify_cmd = subparsers.add_parser("classify", help="classify a metaquery (acyclic / semi-acyclic / cyclic)")
    classify_cmd.add_argument("metaquery")
    classify_cmd.add_argument("--relation-names", nargs="*", default=(),
                              help="identifiers to treat as relation names even if capitalised")
    return parser


def _print_stats(engine: MetaqueryEngine) -> None:
    """Print the engine's telemetry counters (``mine --stats``)."""
    print("# stats:")
    for section, counters in engine.stats().items():
        rendered = "  ".join(f"{key}={value}" for key, value in counters.items())
        print(f"#   {section}: {rendered}")


def _run_mine(args: argparse.Namespace) -> int:
    """``mine``: answer one metaquery over a CSV database directory.

    Builds a :class:`~repro.core.engine.MetaqueryEngine` with the requested
    ablation switches (``--no-cache``/``--no-fast-path``/``--no-batch``/
    ``--workers``), runs the request pipeline and prints a sorted answer
    table — or, with ``--stream``, each answer the moment the engine
    confirms it (time-to-first-answer instead of full-collection latency;
    ``--limit`` then stops the evaluation early).  The engine is used as a
    context manager so a ``--workers N`` pool is always released, even when
    mining raises.
    """
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.cache_limit is not None and args.cache_limit < 1:
        print(f"error: --cache-limit must be >= 1, got {args.cache_limit}", file=sys.stderr)
        return 2
    db = load_database(args.data_dir)
    with MetaqueryEngine(
        db,
        default_itype=args.itype,
        cache=not args.no_cache,
        fast_path=not args.no_fast_path,
        batch=not args.no_batch,
        workers=args.workers,
        cache_limit=args.cache_limit,
        request_cache=None if args.no_request_cache else 128,
    ) as engine:
        thresholds = Thresholds(support=args.support, confidence=args.confidence, cover=args.cover)
        prepared = engine.prepare(
            args.metaquery, thresholds, itype=args.itype, algorithm=args.algorithm
        )
        print(f"# database: {args.data_dir} ({len(db)} relations, {db.total_tuples()} tuples)")
        print(f"# metaquery: {args.metaquery}")
        print(
            f"# thresholds: {thresholds}   type-{args.itype}   "
            f"algorithm={prepared.algorithm} (requested {args.algorithm})   "
            f"cache={'off' if args.no_cache else 'on'}   "
            f"batch={'off' if args.no_batch else 'on'}   "
            f"workers={args.workers}"
        )
        if args.stream:
            printed = 0
            for answer in prepared.stream():
                print(answer, flush=True)
                printed += 1
                if args.limit is not None and printed >= args.limit:
                    print(f"... (stopped after {printed} answers)")
                    break
            else:
                print(f"# {printed} answers (streamed in emission order)")
        else:
            answers = prepared.collect()
            print(answers.sorted_by(args.sort_by).to_table(max_rows=args.limit))
        if args.stats:
            _print_stats(engine)
    return 0


def _parse_tenant_specs(specs: Sequence[str]) -> dict[str, str] | None:
    """Parse repeated ``--tenant NAME=DIR`` flags; None on a malformed spec."""
    tenants: dict[str, str] = {}
    for spec in specs:
        name, sep, directory = spec.partition("=")
        if not sep or not name.strip() or not directory.strip():
            return None
        tenants[name.strip()] = directory.strip()
    return tenants


async def _serve_async(server: "object", host: str, drain_timeout: float) -> None:
    """Bind, announce, serve until SIGTERM/SIGINT, then gracefully drain.

    Annotated loosely to keep :mod:`repro.server` imports local to the
    ``serve`` subcommand (the other subcommands never touch asyncio).
    """
    from repro.server.service import MetaqueryServer

    assert isinstance(server, MetaqueryServer)
    await server.start()
    shutdown = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, shutdown.set)
        except NotImplementedError:
            # Platforms without loop signal handlers (Windows): rely on
            # KeyboardInterrupt cancelling asyncio.run instead.
            pass
    print(f"# serving on http://{host}:{server.port}", flush=True)
    print("# endpoints: POST /mine  POST /mine/stream  GET /healthz  GET /stats", flush=True)
    await server.serve_until(shutdown, drain_timeout=drain_timeout)
    print("# drained; bye", flush=True)


def _run_serve(args: argparse.Namespace) -> int:
    """``serve``: put the HTTP/SSE service over one or more CSV databases.

    The positional directory becomes the ``default`` tenant; repeated
    ``--tenant NAME=DIR`` flags add more (database-per-tenant, engines
    built lazily, one shared concurrency budget).  SIGTERM/SIGINT trigger
    the graceful drain: stop accepting, let in-flight streams finish (up
    to ``--drain-timeout``), close the tenant engines, exit 0.
    """
    from repro.server.registry import EngineRegistry
    from repro.server.service import MetaqueryServer, MetaqueryService

    for flag, value, minimum in (
        ("--workers", args.workers, 1),
        ("--max-concurrency", args.max_concurrency, 1),
        ("--max-streams", args.max_streams, 1),
        ("--port", args.port, 0),
    ):
        if value < minimum:
            print(f"error: {flag} must be >= {minimum}, got {value}", file=sys.stderr)
            return 2
    if args.cache_limit is not None and args.cache_limit < 1:
        print(f"error: --cache-limit must be >= 1, got {args.cache_limit}", file=sys.stderr)
        return 2
    if args.rate < 0:
        print(f"error: --rate must be >= 0, got {args.rate}", file=sys.stderr)
        return 2
    tenant_dirs = _parse_tenant_specs(args.tenant)
    if tenant_dirs is None:
        print("error: --tenant expects NAME=DIR", file=sys.stderr)
        return 2
    if "default" in tenant_dirs:
        print("error: tenant 'default' is the positional data_dir", file=sys.stderr)
        return 2
    tenant_dirs = {"default": args.data_dir, **tenant_dirs}
    databases = {name: load_database(path) for name, path in tenant_dirs.items()}
    for name, db in databases.items():
        print(f"# tenant {name!r}: {len(db)} relations, {db.total_tuples()} tuples")
    registry = EngineRegistry(
        databases,
        max_concurrency=args.max_concurrency,
        workers=args.workers,
        cache_limit=args.cache_limit,
        request_cache=None if args.no_request_cache else 128,
    )
    service = MetaqueryService(
        registry,
        rate=args.rate if args.rate > 0 else None,
        burst=args.burst,
        max_streams=args.max_streams,
    )
    server = MetaqueryServer(service, host=args.host, port=args.port)
    asyncio.run(_serve_async(server, args.host, args.drain_timeout))
    return 0


def _run_info(args: argparse.Namespace) -> int:
    """``info``: print the schema, per-relation sizes and domain of a database."""
    db = load_database(args.data_dir)
    print(f"database directory: {args.data_dir}")
    print(f"relations: {len(db)}   tuples: {db.total_tuples()}   domain size: {len(db.active_domain())}")
    for relation in db:
        print(f"  {relation.name}({', '.join(relation.columns)}) — {len(relation)} tuples")
    return 0


def _run_classify(args: argparse.Namespace) -> int:
    """``classify``: report purity and the acyclic/semi-acyclic/cyclic class.

    The classification drives which complexity results of the paper apply
    (acyclic metaqueries admit the polynomial Figure-4 fast paths).
    """
    mq = parse_metaquery(args.metaquery, relation_names=args.relation_names)
    print(f"metaquery: {mq}")
    print(f"pure: {mq.is_pure()}")
    print(f"predicate variables: {', '.join(mq.predicate_variables) or '(none)'}")
    print(f"classification: {classify(mq)}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "mine":
        return _run_mine(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "info":
        return _run_info(args)
    if args.command == "classify":
        return _run_classify(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
