"""Tests for the CNF machinery, the DPLL solver and the exact model counter."""

import pytest

from repro.exceptions import ReductionError
from repro.reductions.sat import (
    CNFFormula,
    Clause,
    Literal,
    clause_from_ints,
    count_models,
    dpll,
    formula_from_ints,
    is_satisfiable_formula,
    iter_assignments,
    random_3cnf,
)


class TestConstruction:
    def test_literal_negation(self):
        lit = Literal("x", True)
        assert lit.negate() == Literal("x", False)
        assert lit.negate().negate() == lit

    def test_clause_and_formula_variables(self):
        formula = formula_from_ints([[1, -2], [2, 3]])
        assert formula.variables == ("x1", "x2", "x3")
        assert formula.clauses[0].variables == frozenset({"x1", "x2"})

    def test_empty_clause_rejected(self):
        with pytest.raises(ReductionError):
            Clause([])

    def test_empty_formula_rejected(self):
        with pytest.raises(ReductionError):
            CNFFormula([])

    def test_dimacs_zero_rejected(self):
        with pytest.raises(ReductionError):
            clause_from_ints([0])

    def test_is_3cnf(self):
        assert formula_from_ints([[1, 2, 3]]).is_3cnf()
        assert not formula_from_ints([[1, 2, 3, 4]]).is_3cnf()

    def test_satisfied_by(self):
        formula = formula_from_ints([[1, -2]])
        assert formula.satisfied_by({"x1": True, "x2": True})
        assert not formula.satisfied_by({"x1": False, "x2": True})

    def test_str_rendering(self):
        formula = formula_from_ints([[1, -2]])
        assert "~x2" in str(formula)


class TestSolving:
    def test_satisfiable_formula(self):
        formula = formula_from_ints([[1, 2], [-1, 2], [1, -2]])
        model = dpll(formula)
        assert model is not None
        assert formula.satisfied_by(model)

    def test_unsatisfiable_formula(self):
        formula = formula_from_ints([[1], [-1]])
        assert dpll(formula) is None
        assert not is_satisfiable_formula(formula)

    def test_all_clause_combinations_unsat(self):
        formula = formula_from_ints([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert not is_satisfiable_formula(formula)

    def test_dpll_agrees_with_brute_force_on_random_formulas(self):
        for seed in range(8):
            formula = random_3cnf(variables=5, clauses=8, seed=seed)
            brute = count_models(formula) > 0
            assert is_satisfiable_formula(formula) == brute

    def test_model_covers_all_variables(self):
        formula = formula_from_ints([[1, 2, 3]])
        model = dpll(formula)
        assert set(model) == {"x1", "x2", "x3"}


class TestCounting:
    def test_iter_assignments_count(self):
        assert len(list(iter_assignments(["a", "b", "c"]))) == 8

    def test_count_models_simple(self):
        # x1 OR x2 has 3 satisfying assignments over 2 variables
        assert count_models(formula_from_ints([[1, 2]])) == 3

    def test_count_models_with_extra_variables(self):
        formula = formula_from_ints([[1]])
        assert count_models(formula, over=["x1", "x2"]) == 2

    def test_count_models_missing_variable_rejected(self):
        formula = formula_from_ints([[1, 2]])
        with pytest.raises(ReductionError):
            count_models(formula, over=["x1"])

    def test_count_models_unsat_is_zero(self):
        assert count_models(formula_from_ints([[1], [-1]])) == 0

    def test_random_3cnf_reproducible(self):
        assert str(random_3cnf(4, 6, seed=3)) == str(random_3cnf(4, 6, seed=3))
        assert str(random_3cnf(4, 6, seed=3)) != str(random_3cnf(4, 6, seed=4))
