"""Tests for the #BCQ reduction (Prop. 3.26) and the ∃C-3SAT reductions (Thms 3.28/3.29)."""

from fractions import Fraction

import pytest

from repro.datalog.counting import count_substitutions
from repro.exceptions import ReductionError
from repro.reductions.bcq import sharp_3sat_to_bcq
from repro.reductions.ec3sat import (
    EC3SATInstance,
    ec3sat_holds,
    ec3sat_reduction_type0,
    ec3sat_reduction_type12,
)
from repro.reductions.sat import count_models, formula_from_ints, random_3cnf


class TestSharpBCQ:
    def test_parsimonious_on_random_formulas(self):
        for seed in range(5):
            formula = random_3cnf(variables=4, clauses=5, seed=seed)
            instance = sharp_3sat_to_bcq(formula)
            assert count_substitutions(instance.query, instance.db) == count_models(formula)

    def test_clause_relation_has_seven_tuples(self):
        instance = sharp_3sat_to_bcq(formula_from_ints([[1, 2, 3]]))
        assert len(instance.db["c0"]) == 7

    def test_unsatisfiable_formula_counts_zero(self):
        formula = formula_from_ints([[1, 1, 1], [-1, -1, -1]])
        instance = sharp_3sat_to_bcq(formula)
        assert count_substitutions(instance.query, instance.db) == 0

    def test_shared_variables_are_shared_query_variables(self):
        formula = formula_from_ints([[1, 2, 3], [-1, 2, 3]])
        instance = sharp_3sat_to_bcq(formula)
        assert len(instance.query.variables) == 3

    def test_short_clauses_are_padded(self):
        formula = formula_from_ints([[1, 2]])
        instance = sharp_3sat_to_bcq(formula)
        assert count_substitutions(instance.query, instance.db) == count_models(formula) == 3

    def test_non_3cnf_rejected(self):
        with pytest.raises(ReductionError):
            sharp_3sat_to_bcq(formula_from_ints([[1, 2, 3, 4]]))


@pytest.fixture
def small_instance() -> EC3SATInstance:
    formula = formula_from_ints([[1, 3, 4], [-1, 2, -3], [2, 3, -4]])
    return EC3SATInstance(formula, 3, ("x1", "x2"), ("x3", "x4"))


class TestEC3SATInstance:
    def test_threshold(self, small_instance):
        assert small_instance.threshold == Fraction(2, 4)

    def test_validation(self):
        formula = formula_from_ints([[1, 2]])
        with pytest.raises(ReductionError):
            EC3SATInstance(formula, 1, ("x1",), ("x1",))  # overlap
        with pytest.raises(ReductionError):
            EC3SATInstance(formula, 1, ("x1",), ())  # x2 unaccounted
        with pytest.raises(ReductionError):
            EC3SATInstance(formula, 0, ("x1",), ("x2",))  # k' < 1
        with pytest.raises(ReductionError):
            EC3SATInstance(formula_from_ints([[1, 2, 3, 4]]), 1, ("x1", "x2"), ("x3", "x4"))

    def test_reference_solver(self, small_instance):
        # x1 = x2 = True satisfies every clause regardless of x3/x4, so all
        # four counting assignments work and the instance is a YES instance.
        assert ec3sat_holds(small_instance) is True


class TestEC3SATReductions:
    def test_type0_equivalence(self, small_instance):
        expected = ec3sat_holds(small_instance)
        assert ec3sat_reduction_type0(small_instance).decide() == expected

    @pytest.mark.parametrize("itype", [1, 2])
    def test_type12_equivalence(self, small_instance, itype):
        expected = ec3sat_holds(small_instance)
        assert ec3sat_reduction_type12(small_instance, itype=itype).decide() == expected

    def test_yes_and_no_instances(self):
        formula = formula_from_ints([[1, 2, 2], [1, -2, -2]])  # satisfied iff x1 or (x2 xor...) — brute checked below
        easy_yes = EC3SATInstance(formula, 2, ("x1",), ("x2",))
        hard_no = EC3SATInstance(formula, 2, ("x2",), ("x1",))
        assert ec3sat_holds(easy_yes) == ec3sat_reduction_type0(easy_yes).decide()
        assert ec3sat_holds(hard_no) == ec3sat_reduction_type0(hard_no).decide()

    def test_threshold_value_passed_through(self, small_instance):
        problem = ec3sat_reduction_type0(small_instance)
        assert problem.k == small_instance.threshold
        assert problem.index.name == "cnf"

    def test_type0_requires_pi_variables(self):
        formula = formula_from_ints([[1, 2, 2]])
        instance = EC3SATInstance(formula, 1, (), ("x1", "x2"))
        with pytest.raises(ReductionError):
            ec3sat_reduction_type0(instance)
        with pytest.raises(ReductionError):
            ec3sat_reduction_type12(instance)

    def test_type12_rejects_type0(self, small_instance):
        with pytest.raises(ReductionError):
            ec3sat_reduction_type12(small_instance, itype=0)

    def test_counting_blocks_matter(self):
        """Raising k' past the best achievable count flips the answer.

        The clause ``x2 ∨ x3`` is satisfied by exactly 3 of the 4 assignments
        of the counting block {x2, x3}, whatever the existential block does,
        so k' = 3 is a YES instance and k' = 4 a NO instance.
        """
        formula = formula_from_ints([[2, 3, 3]])
        low = EC3SATInstance(formula, 3, ("x1",), ("x2", "x3"))
        high = EC3SATInstance(formula, 4, ("x1",), ("x2", "x3"))
        assert ec3sat_holds(low)
        assert ec3sat_reduction_type0(low).decide()
        assert not ec3sat_holds(high)
        assert not ec3sat_reduction_type0(high).decide()
