"""Tests for the 3-coloring and Hamiltonian-path reductions (Thms 3.21, 3.33, 3.35)."""

import pytest

from repro.core.acyclicity import classify
from repro.exceptions import ReductionError
from repro.reductions.coloring import (
    coloring_database,
    coloring_metaquery,
    coloring_reduction,
    find_3coloring,
    is_3colorable,
    semi_acyclic_coloring_reduction,
)
from repro.reductions.hamiltonian import (
    find_hamiltonian_path,
    hamiltonian_path_reduction,
    has_hamiltonian_path,
)
from repro.workloads.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    disconnected_graph,
    path_graph,
    random_3colorable_graph,
    random_graph,
    random_hamiltonian_graph,
    star_graph,
)


class TestColoringSolver:
    def test_triangle_colorable(self):
        colouring = find_3coloring(complete_graph(3))
        assert colouring is not None
        assert len(set(colouring.values())) == 3

    def test_k4_not_colorable(self):
        assert not is_3colorable(complete_graph(4))

    def test_odd_cycle_colorable(self):
        assert is_3colorable(cycle_graph(5))

    def test_coloring_is_proper(self):
        graph = random_3colorable_graph(8, seed=5)
        colouring = find_3coloring(graph)
        for u, v in graph.edges:
            assert colouring[u] != colouring[v]


class TestColoringReduction:
    def test_database_shape(self):
        db = coloring_database()
        assert len(db["e"]) == 6

    def test_metaquery_encodes_edges(self):
        graph = complete_graph(3)
        mq = coloring_metaquery(graph)
        assert len(mq.body) == graph.edge_count
        assert mq.predicate_variables == ("E",)

    def test_edgeless_graph_rejected(self):
        with pytest.raises(ReductionError):
            coloring_metaquery(Graph(["a", "b"], []))

    @pytest.mark.parametrize("index", ["sup", "cnf", "cvr"])
    @pytest.mark.parametrize("itype", [0, 1, 2])
    def test_equivalence_on_small_graphs(self, index, itype):
        for graph in (complete_graph(3), complete_graph(4)):
            problem = coloring_reduction(graph, index=index, itype=itype)
            assert problem.decide() == is_3colorable(graph)

    def test_equivalence_on_random_graphs(self):
        for seed in range(3):
            graph = random_graph(5, 0.6, seed=seed)
            if graph.edge_count == 0:
                continue
            problem = coloring_reduction(graph)
            assert problem.decide() == is_3colorable(graph)

    def test_witness_encodes_coloring(self):
        graph = cycle_graph(4)
        witness = coloring_reduction(graph).witness()
        assert witness is not None


class TestSemiAcyclicColoringReduction:
    def test_metaquery_is_semi_acyclic_not_acyclic(self):
        graph = complete_graph(3)
        problem = semi_acyclic_coloring_reduction(graph)
        assert classify(problem.mq) == "semi-acyclic"

    @pytest.mark.parametrize("index", ["sup", "cnf", "cvr"])
    def test_equivalence(self, index):
        for graph, expected in ((complete_graph(3), True), (complete_graph(4), False), (cycle_graph(5), True)):
            problem = semi_acyclic_coloring_reduction(graph, index=index)
            assert problem.decide() == expected

    def test_per_node_predicate_variables(self):
        graph = cycle_graph(4)
        problem = semi_acyclic_coloring_reduction(graph)
        assert len(problem.mq.predicate_variables) == graph.vertex_count


class TestHamiltonianSolver:
    def test_path_graph_has_path(self):
        assert find_hamiltonian_path(path_graph(5)) is not None

    def test_star_has_no_path(self):
        assert not has_hamiltonian_path(star_graph(3))

    def test_disconnected_has_no_path(self):
        assert not has_hamiltonian_path(disconnected_graph([3, 3]))

    def test_found_path_is_valid(self):
        graph = random_hamiltonian_graph(7, seed=11)
        path = find_hamiltonian_path(graph)
        assert path is not None
        assert sorted(path) == sorted(graph.vertices)
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)


class TestHamiltonianReduction:
    def test_metaquery_is_acyclic(self):
        problem = hamiltonian_path_reduction(path_graph(4))
        assert classify(problem.mq) == "acyclic"

    def test_type0_rejected(self):
        with pytest.raises(ReductionError):
            hamiltonian_path_reduction(path_graph(4), itype=0)

    def test_small_graph_rejected(self):
        with pytest.raises(ReductionError):
            hamiltonian_path_reduction(path_graph(2))

    @pytest.mark.parametrize("itype", [1, 2])
    @pytest.mark.parametrize("index", ["sup", "cnf", "cvr"])
    def test_equivalence(self, itype, index):
        cases = [
            (path_graph(4), True),
            (star_graph(3), False),
            (disconnected_graph([2, 2]), False),
            (random_hamiltonian_graph(4, seed=1), True),
        ]
        for graph, expected in cases:
            problem = hamiltonian_path_reduction(graph, index=index, itype=itype)
            assert problem.decide() == expected == has_hamiltonian_path(graph)

    def test_database_contains_both_orientations(self):
        problem = hamiltonian_path_reduction(path_graph(4))
        edge = problem.db["e"]
        assert ("v0", "v1") in edge and ("v1", "v0") in edge
