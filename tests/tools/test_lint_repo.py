"""Regression pins: the violations this battery surfaced stay fixed.

The linter's first run over the repository found real bugs (lifecycle
counters mutated outside the lock) and systematic gaps (50 modules with no
``__all__``).  These tests pin each fix class directly so a regression
fails a *named* test, not just the broad full-repo gate in
``test_lint_cli.py``.
"""

from __future__ import annotations

import importlib
import pkgutil
from pathlib import Path

from repro.datalog.lifecycle import CacheLimit, LifecycleCache, RequestCache
from repro.tools.lint.framework import Linter

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def lint_file(rule: str, relpath: str) -> list:
    linter = Linter(root=REPO_ROOT, rules=[rule])
    return linter.lint([REPO_ROOT / relpath])


class TestLockDisciplineFixes:
    """The REP102 findings in lifecycle.py: fixed, not suppressed."""

    def test_lifecycle_module_is_lock_clean(self):
        assert lint_file("lock-discipline", "src/repro/datalog/lifecycle.py") == []

    def test_oversize_rejection_counts_under_lock(self):
        # The `put` fast-exit used to bump stats.rejected outside the lock.
        cache = LifecycleCache(CacheLimit(max_tuples=5))
        cache.put("atom", "huge", object(), frozenset({"r"}), weight=10)
        assert cache.get("atom", "huge") is None
        assert cache.stats_dict()["rejected"] == 1

    def test_shrink_helper_declares_lock_contract(self):
        # `_shrink` was renamed `_shrink_locked`: the suffix is the naming
        # convention REP102 enforces on call sites.
        assert hasattr(LifecycleCache, "_shrink_locked")
        assert not hasattr(LifecycleCache, "_shrink")

    def test_lifecycle_stats_snapshot_is_complete(self):
        cache = LifecycleCache(CacheLimit(max_entries=1))
        cache.put("atom", "a", object(), frozenset({"r"}), weight=0)
        cache.put("atom", "b", object(), frozenset({"r"}), weight=0)
        snapshot = cache.stats_dict()
        assert snapshot["evictions"] == 1
        assert set(snapshot) == {
            "evictions", "evicted_tuples", "invalidated_entries", "rejected",
        }

    def test_request_cache_stats_snapshot_is_complete(self):
        cache = RequestCache(max_entries=2)
        cache.put("k", (1,), object())
        cache.get("k", (1,))      # hit
        cache.get("k", (2,))      # vector moved: invalidated + miss
        snapshot = cache.stats_dict()
        assert snapshot == {"hits": 1, "misses": 1, "evictions": 0, "invalidated": 1}


class TestPragmaFixes:
    """Deliberate exceptions carry pragmas instead of weakening the rules."""

    def test_answers_display_floats_are_suppressed_not_exempted(self):
        source = (SRC / "repro/core/answers.py").read_text(encoding="utf-8")
        assert "# repro-lint: disable=exact-arithmetic" in source
        assert lint_file("exact-arithmetic", "src/repro/core/answers.py") == []

    def test_sharding_finalizer_swallow_is_suppressed(self):
        source = (SRC / "repro/datalog/sharding.py").read_text(encoding="utf-8")
        assert "# repro-lint: disable=no-silent-except" in source
        assert lint_file("no-silent-except", "src/repro/datalog/sharding.py") == []


class TestApiSurfaceFixes:
    """Every module under src/repro declares a truthful ``__all__``."""

    def test_every_module_exports_resolve(self):
        import repro

        checked = 0
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue
            module = importlib.import_module(info.name)
            exported = getattr(module, "__all__", None)
            assert exported is not None, f"{info.name} has no __all__"
            for name in exported:
                assert hasattr(module, name), f"{info.name}.__all__ lists missing {name!r}"
            checked += 1
        assert checked > 40  # the whole tree, not a lucky subset

    def test_public_api_rule_is_clean_on_src(self):
        linter = Linter(root=REPO_ROOT, rules=["public-api"])
        assert linter.lint([SRC]) == []
