"""Tests for the runtime lock sanitizer (:mod:`repro.tools.sanitizer`).

Covers the detector itself (order-edge recording, cross-thread inversion
detection, same-thread re-acquire self-deadlock evidence, wait
accounting), the construction-time ``create_lock`` resolution the runtime
classes rely on, and the integration path: lifecycle caches built under
``REPRO_SANITIZE=1`` exercise sanitized locks end to end with zero
inversions.
"""

from __future__ import annotations

import threading

import pytest

from repro.datalog.lifecycle import CacheLimit, LifecycleCache
from repro.tools import sanitizer
from repro.tools.sanitizer import Inversion, SanitizedLock, create_lock


@pytest.fixture(autouse=True)
def _clean_registry():
    """Isolate every test from records left by the surrounding session."""
    sanitizer.reset()
    yield
    sanitizer.reset()


class TestOrderRecording:
    def test_nested_acquisition_records_an_edge(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        with a:
            with b:
                pass
        assert ("A", "B") in sanitizer.order_edges()
        assert ("B", "A") not in sanitizer.order_edges()
        assert sanitizer.inversions() == ()

    def test_held_locks_tracks_the_current_thread(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        assert sanitizer.held_locks() == ()
        with a:
            assert sanitizer.held_locks() == ("A",)
            with b:
                assert sanitizer.held_locks() == ("A", "B")
            assert sanitizer.held_locks() == ("A",)
        assert sanitizer.held_locks() == ()

    def test_consistent_order_across_threads_is_clean(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")

        def forward() -> None:
            with a:
                with b:
                    pass

        threads = [threading.Thread(target=forward) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        forward()
        assert sanitizer.inversions() == ()


class TestInversionDetection:
    def test_two_threads_opposite_orders(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")

        def forward() -> None:
            with a:
                with b:
                    pass

        def backward() -> None:
            with b:
                with a:
                    pass

        # Sequential execution: the detector flags the *potential* deadlock
        # even though this run trivially cannot deadlock.
        t1 = threading.Thread(target=forward, name="fwd")
        t1.start()
        t1.join()
        t2 = threading.Thread(target=backward, name="bwd")
        t2.start()
        t2.join()

        found = sanitizer.inversions()
        assert len(found) == 1
        inv = found[0]
        assert (inv.first, inv.second) == ("B", "A")
        assert inv.thread == "bwd"
        assert inv.prior_thread == "fwd"
        assert "inversion" in inv.describe()
        assert "fwd" in inv.describe() and "bwd" in inv.describe()

    def test_same_thread_reacquire_is_recorded_before_blocking(self):
        # Non-reentrant self-deadlock: the evidence must exist *before* the
        # second acquire blocks, so probe with blocking=False.
        lock = SanitizedLock("L")
        assert lock.acquire()
        assert not lock.acquire(blocking=False)
        found = sanitizer.inversions()
        assert found and found[0] == Inversion(
            first="L", second="L", thread=found[0].thread, prior_thread=found[0].thread
        )
        lock.release()

    def test_inversion_report_survives_in_snapshot(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        snapshot = sanitizer.report()
        assert snapshot["inversions"]
        assert "A -> B" in snapshot["order_edges"]
        assert "B -> A" in snapshot["order_edges"]


class TestAccounting:
    def test_wait_time_split_by_held_state(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        with a:
            with b:
                pass
        with b:
            pass
        snapshot = sanitizer.report()
        locks = snapshot["locks"]
        assert locks["A"]["acquisitions"] == 1
        assert locks["B"]["acquisitions"] == 2
        # B was acquired once with A held and once with nothing held, so
        # the while-holding share cannot exceed the total.
        assert 0 <= locks["B"]["wait_ns_while_holding"] <= locks["B"]["wait_ns_total"]
        assert locks["A"]["wait_ns_while_holding"] == 0
        assert locks["B"]["max_wait_ns"] <= locks["B"]["wait_ns_total"]

    def test_reset_drops_everything(self):
        with SanitizedLock("A"):
            pass
        sanitizer.reset()
        assert sanitizer.order_edges() == {}
        assert sanitizer.inversions() == ()
        assert sanitizer.report()["locks"] == {}


class TestLockApi:
    def test_context_manager_and_locked(self):
        lock = SanitizedLock("L")
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_out_of_order_release_keeps_held_view_sane(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        a.acquire()
        b.acquire()
        a.release()  # legal, if unusual
        assert sanitizer.held_locks() == ("B",)
        b.release()
        assert sanitizer.held_locks() == ()


class TestCreateLock:
    def test_plain_lock_when_disabled(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
        assert not sanitizer.enabled()
        lock = create_lock("repro.test:Plain")
        assert not isinstance(lock, SanitizedLock)

    def test_sanitized_when_enabled(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        lock = create_lock("repro.test:Sanitized")
        assert isinstance(lock, SanitizedLock)
        assert lock.name == "repro.test:Sanitized"

    def test_resolution_is_at_construction_time(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        instrumented = create_lock("repro.test:Before")
        monkeypatch.delenv(sanitizer.ENV_FLAG)
        plain = create_lock("repro.test:After")
        assert isinstance(instrumented, SanitizedLock)
        assert not isinstance(plain, SanitizedLock)


class TestRuntimeIntegration:
    def test_lifecycle_cache_is_sanitized_end_to_end(self, lock_sanitizer):
        # Built while REPRO_SANITIZE=1 (the lock_sanitizer fixture), the
        # cache's internal lock records real acquisitions; the fixture's
        # teardown asserts the workload produced zero inversions.
        cache = LifecycleCache(CacheLimit.coerce(8))
        section = cache.section("atom")

        def worker(i: int) -> None:
            for k in range(16):
                section.put((i, k), k, relations=frozenset({"r"}), weight=1)
                section.get((i, k))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        snapshot = sanitizer.report()
        name = "repro.datalog.lifecycle:LifecycleCache"
        assert name in snapshot["locks"]
        assert snapshot["locks"][name]["acquisitions"] > 0
        assert sanitizer.inversions() == ()
