"""Unit tests for the lint framework plumbing (:mod:`repro.tools.lint`).

Covers the suppression pragmas, diagnostic rendering, the rule registry
and selection, and the :class:`~repro.tools.lint.framework.Linter` runner's
scoping / parse-error behaviour.  The rule battery itself is exercised by
``test_lint_rules.py``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.tools.lint.diagnostics import Diagnostic, render
from repro.tools.lint.framework import (
    Linter,
    all_rules,
    find_repo_root,
    resolve_rules,
)
from repro.tools.lint.pragmas import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_trailing_pragma_suppresses_its_line(self):
        source = "x = float(1)  # repro-lint: disable=exact-arithmetic\n"
        sup = parse_suppressions(source)
        assert sup.is_suppressed("exact-arithmetic", "REP101", 1)
        assert not sup.is_suppressed("exact-arithmetic", "REP101", 2)

    def test_pragma_accepts_codes_too(self):
        source = "x = float(1)  # repro-lint: disable=REP101\n"
        sup = parse_suppressions(source)
        assert sup.is_suppressed("exact-arithmetic", "REP101", 1)

    def test_comment_only_pragma_covers_next_line(self):
        source = textwrap.dedent(
            """\
            # display only, floats fine here
            # repro-lint: disable=exact-arithmetic
            x = float(1)
            """
        )
        sup = parse_suppressions(source)
        assert sup.is_suppressed("exact-arithmetic", "REP101", 3)

    def test_disable_file_covers_everything(self):
        source = "# repro-lint: disable-file=lock-discipline\nx = 1\ny = 2\n"
        sup = parse_suppressions(source)
        assert sup.is_suppressed("lock-discipline", "REP102", 99)
        assert not sup.is_suppressed("exact-arithmetic", "REP101", 99)

    def test_disable_all(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=all\n")
        assert sup.is_suppressed("anything", "REP999", 1)

    def test_comma_separated_rule_list(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=exact-arithmetic, lock-discipline\n"
        )
        assert sup.is_suppressed("exact-arithmetic", "REP101", 1)
        assert sup.is_suppressed("lock-discipline", "REP102", 1)
        assert not sup.is_suppressed("public-api", "REP106", 1)

    def test_pragma_inside_string_literal_is_ignored(self):
        source = 's = "# repro-lint: disable=all"\n'
        sup = parse_suppressions(source)
        assert not sup.is_suppressed("exact-arithmetic", "REP101", 1)

    def test_unparseable_source_yields_no_suppressions(self):
        sup = parse_suppressions("def broken(:\n")
        assert not sup.is_suppressed("exact-arithmetic", "REP101", 1)


# ----------------------------------------------------------------------
# diagnostics
# ----------------------------------------------------------------------
class TestDiagnostics:
    def _diag(self, **overrides):
        base = dict(
            path="src/x.py", line=3, column=4, code="REP101",
            rule="exact-arithmetic", message="no floats",
        )
        base.update(overrides)
        return Diagnostic(**base)

    def test_format_text(self):
        assert (
            self._diag().format_text()
            == "src/x.py:3:4: REP101 [exact-arithmetic] no floats"
        )

    def test_render_json_round_trips(self):
        payload = json.loads(render([self._diag()], "json"))
        assert payload == [
            {
                "path": "src/x.py", "line": 3, "column": 4,
                "code": "REP101", "rule": "exact-arithmetic",
                "message": "no floats",
            }
        ]

    def test_render_sorts_by_location(self):
        early = self._diag(line=1)
        late = self._diag(line=9)
        assert render([late, early], "text").splitlines()[0] == early.format_text()

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown lint output format"):
            render([], "xml")


# ----------------------------------------------------------------------
# registry and selection
# ----------------------------------------------------------------------
class TestRegistry:
    def test_battery_has_all_eight_rules(self):
        names = set(all_rules())
        assert {
            "exact-arithmetic", "lock-discipline", "generation-probe",
            "pool-picklable", "no-silent-except", "public-api",
            "stable-cache-key", "doc-refs",
        } <= names

    def test_codes_are_unique(self):
        codes = [cls.code for cls in all_rules().values()]
        assert len(codes) == len(set(codes))

    def test_resolve_by_name_and_code(self):
        by_name = resolve_rules(["exact-arithmetic"])
        by_code = resolve_rules(["REP101"])
        assert type(by_name[0]) is type(by_code[0])

    def test_resolve_deduplicates(self):
        assert len(resolve_rules(["REP101", "exact-arithmetic"])) == 1

    def test_resolve_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            resolve_rules(["no-such-rule"])

    def test_every_rule_documents_itself(self):
        for name, cls in all_rules().items():
            assert cls.description, f"rule {name} has no description"
            assert cls.code.startswith("REP"), f"rule {name} has no REP code"


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class TestLinter:
    def test_find_repo_root_walks_up_to_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_repo_root(nested) == tmp_path

    def test_syntax_error_becomes_parse_diagnostic(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        linter = Linter(root=tmp_path, rules=["exact-arithmetic"], force_scope=True)
        findings = linter.lint([bad])
        assert len(findings) == 1
        assert findings[0].code == "REP100"
        assert findings[0].rule == "parse-error"

    def test_default_scope_skips_out_of_scope_files(self, tmp_path):
        # exact-arithmetic defaults to src/repro/core/; a stray file with a
        # float must not be flagged without force_scope.
        stray = tmp_path / "stray.py"
        stray.write_text('"""D."""\n\n__all__: list[str] = []\n\nx = float(1)\n')
        linter = Linter(root=tmp_path, rules=["exact-arithmetic"])
        assert linter.lint([stray]) == []

    def test_force_scope_lints_any_path(self, tmp_path):
        stray = tmp_path / "stray.py"
        stray.write_text("x = float(1)\n")
        linter = Linter(root=tmp_path, rules=["exact-arithmetic"], force_scope=True)
        assert [d.code for d in linter.lint([stray])] == ["REP101"]

    def test_suppressed_findings_are_filtered(self, tmp_path):
        stray = tmp_path / "stray.py"
        stray.write_text("x = float(1)  # repro-lint: disable=exact-arithmetic\n")
        linter = Linter(root=tmp_path, rules=["exact-arithmetic"], force_scope=True)
        assert linter.lint([stray]) == []

    def test_repo_rules_do_not_run_on_explicit_paths(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "bad.md").write_text("[broken](missing-file.md)\n")
        target = tmp_path / "code.py"
        target.write_text('"""D."""\n')
        linter = Linter(root=tmp_path, rules=["doc-refs"])
        assert linter.lint([target]) == []
        assert any(d.code == "REP108" for d in linter.lint())
