"""Fixture tests for the rule battery (:mod:`repro.tools.lint.rules`).

Every rule gets at least one *true positive* fixture reconstructing the bug
class it pins (including the PR-1 ``limit_denominator`` threshold bug and
the PR-5 unlocked-lifecycle-state bug) and at least one *clean* fixture
proving the idiomatic repo pattern passes.  Fixtures are linted through the
real :class:`~repro.tools.lint.framework.Linter` with ``force_scope`` — the
same path the CLI takes for ``--rule NAME path``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.tools.lint.framework import Linter
from repro.tools.lint.rules.doc_refs import DocRefsRule


def run_rule(tmp_path: Path, rule: str, source: str) -> list:
    """Lint ``source`` with one rule, scoping bypassed (the fixture path)."""
    fixture = tmp_path / "fixture.py"
    fixture.write_text(textwrap.dedent(source), encoding="utf-8")
    linter = Linter(root=tmp_path, rules=[rule], force_scope=True)
    return linter.lint([fixture])


# ----------------------------------------------------------------------
# REP101 exact-arithmetic
# ----------------------------------------------------------------------
class TestExactArithmetic:
    def test_pr1_limit_denominator_reconstruction(self, tmp_path):
        # The PR-1 bug: a denominator cap collapsed 1e-10 to 0, flipping the
        # paper's strict `I > k` comparisons.
        findings = run_rule(
            tmp_path,
            "exact-arithmetic",
            """\
            from fractions import Fraction

            def coerce_threshold(value):
                return Fraction(value).limit_denominator(10**9)
            """,
        )
        assert [d.code for d in findings] == ["REP101"]
        assert "limit_denominator" in findings[0].message

    def test_float_call_and_literal_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "exact-arithmetic",
            """\
            def support(n, d):
                return float(n) / d

            DEFAULT = 0.5
            """,
        )
        assert len(findings) == 2
        assert all(d.code == "REP101" for d in findings)

    def test_exact_fraction_idiom_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "exact-arithmetic",
            """\
            from fractions import Fraction

            def exact(value):
                return Fraction(str(value))

            HALF = Fraction(1, 2)
            """,
        )
        assert findings == []

    def test_display_dunders_are_exempt(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "exact-arithmetic",
            """\
            class Answer:
                def __str__(self):
                    return f"{float(self.support):.3f}"

                def __repr__(self):
                    return str(float(self.support))
            """,
        )
        assert findings == []

    def test_limit_denominator_flagged_even_in_display_code(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "exact-arithmetic",
            """\
            class Answer:
                def __str__(self):
                    return str(self.support.limit_denominator(100))
            """,
        )
        assert [d.code for d in findings] == ["REP101"]


# ----------------------------------------------------------------------
# REP102 lock-discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    def test_pr5_unlocked_state_reconstruction(self, tmp_path):
        # The PR-5 bug class: lifecycle state shared across threads mutated
        # outside `with self._lock:`.
        findings = run_rule(
            tmp_path,
            "lock-discipline",
            """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._tuples = 0

                def put(self, key, value):
                    self._entries[key] = value
                    self._tuples += 1

                def drop(self, key):
                    self._entries.pop(key, None)
            """,
        )
        messages = [d.message for d in findings]
        assert len(findings) == 3
        assert any("writes self._entries" in m for m in messages)
        assert any("writes self._tuples" in m for m in messages)
        assert any("self._entries.pop()" in m for m in messages)

    def test_locked_mutations_are_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "lock-discipline",
            """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
                        self._shrink_locked()

                def _shrink_locked(self):
                    self._entries.clear()

                def get(self, key):
                    return self._entries.get(key)
            """,
        )
        assert findings == []

    def test_locked_helper_called_without_lock_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "lock-discipline",
            """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def shrink(self):
                    self._shrink_locked()

                def _shrink_locked(self):
                    self._entries.clear()
            """,
        )
        assert [d.code for d in findings] == ["REP102"]
        assert "caller-holds-lock" in findings[0].message

    def test_lockless_classes_are_ignored(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "lock-discipline",
            """\
            class PlainDictCache:
                def __init__(self):
                    self._entries = {}

                def put(self, key, value):
                    self._entries[key] = value
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP103 generation-probe
# ----------------------------------------------------------------------
class TestGenerationProbe:
    def test_memo_read_without_refresh_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "generation-probe",
            """\
            class Context:
                def __init__(self, store):
                    self._atoms = store.section("atom")

                def refresh(self):
                    pass

                def lookup(self, key):
                    return self._atoms.get(key)
            """,
        )
        assert [d.code for d in findings] == ["REP103"]
        assert "without calling self.refresh()" in findings[0].message

    def test_memo_read_with_refresh_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "generation-probe",
            """\
            class Context:
                def __init__(self, store):
                    self._atoms = store.section("atom")

                def refresh(self):
                    pass

                def lookup(self, key):
                    self.refresh()
                    return self._atoms.get(key)
            """,
        )
        assert findings == []

    def test_relation_mutation_without_bump_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "generation-probe",
            """\
            class Database:
                def __init__(self):
                    self._relations = {}
                    self._generations = {}

                def add(self, name, relation):
                    self._relations[name] = relation
            """,
        )
        assert [d.code for d in findings] == ["REP103"]
        assert "generation counters" in findings[0].message

    def test_relation_mutation_with_bump_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "generation-probe",
            """\
            class Database:
                def __init__(self):
                    self._relations = {}
                    self._generations = {}

                def add(self, name, relation):
                    self._relations[name] = relation
                    self._bump(name)

                def replace(self, name, relation):
                    self._relations[name] = relation
                    self._generations[name] = self._generations.get(name, 0) + 1

                def _bump(self, name):
                    self._generations[name] = self._generations.get(name, 0) + 1
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP104 pool-picklable
# ----------------------------------------------------------------------
class TestPoolBoundary:
    def test_lambda_to_pool_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "pool-picklable",
            """\
            def run(pool, items):
                return pool.map(lambda item: item + 1, items)
            """,
        )
        assert [d.code for d in findings] == ["REP104"]
        assert "lambda" in findings[0].message

    def test_nested_function_to_pool_flagged(self, tmp_path):
        # The PR-3 bug class: a closure over request state shipped to
        # workers pickles only on the one code path that shards.
        findings = run_rule(
            tmp_path,
            "pool-picklable",
            """\
            def run(pool, items, offset):
                def task(item):
                    return item + offset

                return pool.imap_unordered(task, items)
            """,
        )
        assert [d.code for d in findings] == ["REP104"]
        assert "task" in findings[0].message

    def test_module_level_task_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "pool-picklable",
            """\
            def _task(item):
                return item + 1

            def run(pool, items):
                return pool.map(_task, items)
            """,
        )
        assert findings == []

    def test_non_pool_receivers_are_ignored(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "pool-picklable",
            """\
            def transform(items):
                return list(map(lambda item: item + 1, items))
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP105 no-silent-except
# ----------------------------------------------------------------------
class TestSilentExcept:
    def test_bare_except_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "no-silent-except",
            """\
            def load(path):
                try:
                    return open(path)
                except:
                    return None
            """,
        )
        assert [d.code for d in findings] == ["REP105"]
        assert "bare" in findings[0].message

    def test_swallowed_broad_except_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "no-silent-except",
            """\
            def load(values):
                try:
                    return compute(values)
                except Exception:
                    pass
            """,
        )
        assert [d.code for d in findings] == ["REP105"]

    def test_specific_or_handled_excepts_are_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "no-silent-except",
            """\
            import logging

            def load(values):
                try:
                    return compute(values)
                except KeyError:
                    pass
                except ValueError as exc:
                    raise RuntimeError("bad value") from exc
                except Exception as exc:
                    logging.exception("load failed: %s", exc)
                    raise
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP106 public-api
# ----------------------------------------------------------------------
class TestApiSurface:
    def test_undocumented_module_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "public-api",
            """\
            def helper():
                pass
            """,
        )
        messages = [d.message for d in findings]
        assert any("module has no docstring" in m for m in messages)
        assert any("does not declare __all__" in m for m in messages)
        assert any("'helper' has no docstring" in m for m in messages)

    def test_stale_and_incomplete_dunder_all_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "public-api",
            """\
            '''A documented module.'''

            __all__ = ["ghost"]

            def visible():
                '''Documented but unexported.'''
            """,
        )
        messages = [d.message for d in findings]
        assert any("exports 'ghost'" in m for m in messages)
        assert any("'visible' is missing from __all__" in m for m in messages)

    def test_complete_surface_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "public-api",
            """\
            '''A documented module.'''

            __all__ = ["visible", "CONSTANT"]

            CONSTANT = 1

            def visible():
                '''Documented and exported.'''

            def _private():
                pass
            """,
        )
        assert findings == []

    def test_annotated_empty_dunder_all_is_accepted(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "public-api",
            """\
            '''A namespace module with no public surface.'''

            __all__: list[str] = []
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP107 stable-cache-key
# ----------------------------------------------------------------------
class TestStableCacheKey:
    def test_time_id_and_unsorted_iteration_flagged(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "stable-cache-key",
            """\
            import time

            def make_cache_key(obj, bindings):
                return (time.time(), id(obj), tuple(bindings.items()))
            """,
        )
        assert len(findings) == 3
        assert all(d.code == "REP107" for d in findings)

    def test_sorted_key_builder_is_clean(self, tmp_path):
        findings = run_rule(
            tmp_path,
            "stable-cache-key",
            """\
            def generation_vector(generations):
                return tuple(sorted(generations.items()))
            """,
        )
        assert findings == []

    def test_ordered_accessors_outside_key_builders_are_clean(self, tmp_path):
        # `Database.relations()` returns tuple(self._relations.values()) in
        # insertion order — an accessor, not a key; it must not be flagged.
        findings = run_rule(
            tmp_path,
            "stable-cache-key",
            """\
            class Database:
                def relations(self):
                    return tuple(self._relations.values())
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP108 doc-refs (repo-level)
# ----------------------------------------------------------------------
class TestDocRefs:
    def _repo(self, tmp_path: Path, markdown: str) -> Path:
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "page.md").write_text(
            textwrap.dedent(markdown), encoding="utf-8"
        )
        return tmp_path

    def test_broken_link_and_stale_module_flagged(self, tmp_path):
        root = self._repo(
            tmp_path,
            """\
            [missing](does-not-exist.md) and a stale backtick module
            `repro.no_such_module_xyz`.
            """,
        )
        findings = list(DocRefsRule().check_repo(root))
        assert len(findings) == 2
        assert all(d.code == "REP108" for d in findings)

    def test_valid_references_are_clean(self, tmp_path):
        root = self._repo(
            tmp_path,
            """\
            [readme](../README.md) and the real `repro.tools.lint` package.
            """,
        )
        (tmp_path / "README.md").write_text("# readme\n", encoding="utf-8")
        assert list(DocRefsRule().check_repo(root)) == []
