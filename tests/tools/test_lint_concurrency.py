"""Tests for the whole-program concurrency rules (REP109–REP111) and the
pragma-audit diagnostics (REP112/REP113).

Each true-positive fixture reconstructs a bug class this repository has
actually shipped or designed against:

* REP109 — a two-lock order inversion and a transitive self-deadlock on a
  non-reentrant ``threading.Lock``.
* REP110 — pool dispatch issued while holding the evaluator lock (the
  deadlock shape the ShardedEvaluator teardown refactor avoids).
* REP111 — the PR-5/PR-6 unlocked-counter bugs as *interprocedural*
  variants: a thread entry point reaches a mutation of ``__init__``-declared
  state with no path-held lock.

Clean-code negatives pin the false-positive budget at zero, and the
full-repo gate asserts the shipped tree stays silent with every rule
enabled.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.tools.lint.framework import Linter

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_rules(tmp_path, rules, source):
    """Lint a single dedented fixture file with the given rules."""
    fixture = tmp_path / "fixture.py"
    fixture.write_text(textwrap.dedent(source), encoding="utf-8")
    linter = Linter(root=tmp_path, rules=rules, force_scope=True)
    return linter.lint([fixture])


class TestLockOrder:
    def test_two_lock_inversion_is_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["lock-order"],
            """\
            import threading

            class A:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.b: "B | None" = None

                def forward(self):
                    with self._lock:
                        if self.b is not None:
                            self.b.poke()

                def poke(self):
                    with self._lock:
                        pass

            class B:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.a: "A | None" = None

                def backward(self):
                    with self._lock:
                        if self.a is not None:
                            self.a.poke()

                def poke(self):
                    with self._lock:
                        pass
            """,
        )
        cycle = [d for d in findings if d.code == "REP109" and "cycle" in d.message]
        assert len(cycle) == 2, [d.message for d in findings]
        assert any("fixture:A" in d.message and "fixture:B" in d.message for d in cycle)

    def test_self_deadlock_on_nonreentrant_lock(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["lock-order"],
            """\
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def bump(self):
                    with self._lock:
                        self.n += 1

                def flush(self):
                    with self._lock:
                        self.bump()
            """,
        )
        assert [d.code for d in findings] == ["REP109"]
        assert "re-acquire" in findings[0].message
        assert "_locked" in findings[0].message  # points at the convention

    def test_consistent_order_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["lock-order"],
            """\
            import threading

            class Inner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def bump(self):
                    with self._lock:
                        self.n += 1

            class Outer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.inner = Inner()

                def forward(self):
                    with self._lock:
                        self.inner.bump()

                def also_forward(self):
                    with self._lock:
                        self.inner.bump()
            """,
        )
        assert findings == []


class TestBlockingUnderLock:
    def test_pool_dispatch_under_lock_transitive(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["blocking-under-lock"],
            """\
            import threading

            class Evaluator:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.pool = None

                def _fan_out(self, chunks):
                    return self.pool.map(len, chunks)

                def dispatch(self, chunks):
                    with self._lock:
                        return self._fan_out(chunks)
            """,
        )
        assert [d.code for d in findings] == ["REP110"]
        assert "_fan_out" in findings[0].message
        assert ".map()" in findings[0].message

    def test_direct_sleep_under_lock(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["blocking-under-lock"],
            """\
            import threading
            import time

            class Throttle:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def pace(self):
                    with self._lock:
                        time.sleep(0.1)
            """,
        )
        assert [d.code for d in findings] == ["REP110"]
        assert "time.sleep()" in findings[0].message

    def test_dispatch_outside_lock_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["blocking-under-lock"],
            """\
            import threading

            class Evaluator:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.pool = None
                    self.n = 0

                def _fan_out(self, chunks):
                    return self.pool.map(len, chunks)

                def safe_dispatch(self, chunks):
                    with self._lock:
                        self.n += 1
                    return self._fan_out(chunks)
            """,
        )
        assert findings == []


class TestSharedState:
    def test_unlocked_counter_reached_from_to_thread(self, tmp_path):
        # The PR-5 bug shape: an async facade hops the bound method onto a
        # worker thread; the method bumps an init-declared counter without
        # the owning lock.
        findings = run_rules(
            tmp_path,
            ["unguarded-shared-state"],
            """\
            import asyncio
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.entries = {}
                    self.hits = 0

                def lookup(self, key):
                    self.hits += 1
                    return self.entries.get(key)

                def store(self, key, value):
                    with self._lock:
                        self.entries[key] = value

            class Facade:
                def __init__(self):
                    self.cache = Cache()

                async def get(self, key):
                    return await asyncio.to_thread(self.cache.lookup, key)
            """,
        )
        assert [d.code for d in findings] == ["REP111"]
        assert "hits" in findings[0].message
        assert "lookup" in findings[0].message

    def test_interprocedural_caller_holds_callee_mutates(self, tmp_path):
        # The PR-6 counter bug as the *negative* interprocedural variant:
        # the _locked-convention callee mutates freely because every thread
        # path reaches it with the lock already held.
        findings = run_rules(
            tmp_path,
            ["unguarded-shared-state"],
            """\
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.dispatched = 0

                def _bump_locked(self):
                    self.dispatched += 1

                def record(self):
                    with self._lock:
                        self._bump_locked()

            def worker(stats: Stats):
                stats.record()

            def launch(stats: Stats):
                threading.Thread(target=worker, args=(stats,)).start()
            """,
        )
        assert findings == []

    def test_unlocked_callee_from_thread_target(self, tmp_path):
        # Same shape with the lock NOT held on the path: flagged.
        findings = run_rules(
            tmp_path,
            ["unguarded-shared-state"],
            """\
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.dispatched = 0

                def _bump(self):
                    self.dispatched += 1

                def record(self):
                    self._bump()

            def worker(stats: Stats):
                stats.record()

            def launch(stats: Stats):
                threading.Thread(target=worker, args=(stats,)).start()
            """,
        )
        assert [d.code for d in findings] == ["REP111"]
        assert "dispatched" in findings[0].message

    def test_construction_phase_is_exempt(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["unguarded-shared-state"],
            """\
            import threading

            class Workerset:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.started = 0
                    self._seed()

                def _seed(self):
                    self.started = 1

                def run(self):
                    with self._lock:
                        self.started += 1

            def spawn():
                w = Workerset()
                threading.Thread(target=w.run).start()
            """,
        )
        assert findings == []


class TestPragmaAudit:
    HEADER = '"""Pragma fixture."""\n\n__all__ = ["X"]\n\n'

    def test_unknown_rule_id_in_pragma_is_an_error(self, tmp_path):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            self.HEADER + "X = 1  # repro-lint: disable=REP999\n",
            encoding="utf-8",
        )
        findings = Linter(root=tmp_path, force_scope=True).lint([fixture])
        assert [d.code for d in findings] == ["REP113"]
        assert "REP999" in findings[0].message

    def test_unknown_pragma_cannot_suppress_itself(self, tmp_path):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            self.HEADER + "X = 1  # repro-lint: disable=REP999,unknown-pragma\n",
            encoding="utf-8",
        )
        findings = Linter(root=tmp_path, force_scope=True).lint([fixture])
        assert "REP113" in [d.code for d in findings]

    def test_unused_pragma_flagged_only_with_flag(self, tmp_path):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            self.HEADER + "X = 1  # repro-lint: disable=exact-arithmetic\n",
            encoding="utf-8",
        )
        silent = Linter(root=tmp_path, force_scope=True).lint([fixture])
        assert [d.code for d in silent] == []
        audited = Linter(root=tmp_path, force_scope=True, warn_unused_pragmas=True).lint(
            [fixture]
        )
        assert [d.code for d in audited] == ["REP112"]
        assert "exact-arithmetic" in audited[0].message

    def test_used_pragma_survives_the_audit(self, tmp_path):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            textwrap.dedent(
                '''\
                """Pragma fixture."""

                __all__ = ["close"]


                def close() -> None:
                    """Suppress errors during interpreter teardown."""
                    try:
                        raise RuntimeError
                    except Exception:  # repro-lint: disable=no-silent-except
                        pass
                '''
            ),
            encoding="utf-8",
        )
        audited = Linter(root=tmp_path, force_scope=True, warn_unused_pragmas=True).lint(
            [fixture]
        )
        assert [d.code for d in audited] == []


class TestFullRepoGate:
    def test_repo_is_clean_under_every_rule_and_the_pragma_audit(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools.lint", "--warn-unused-pragmas"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
