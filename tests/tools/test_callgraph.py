"""Tests for the whole-program symbol table and call graph
(:mod:`repro.tools.lint.callgraph`).

The callgraph is the substrate of REP109–REP111, so its resolution
behavior is pinned directly: module naming, import-edge resolution,
``self.method()`` dispatch, conservative type inference (annotations,
constructor locals, ``__init__`` attribute types, resolved return
annotations), lock-region tracking, blocking classification, transitive
``may_acquire``/``blocking_witness`` queries, and thread entry points.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.tools.lint.callgraph import Program, build_program, module_name_for
from repro.tools.lint.framework import Linter


def program_from(tmp_path: Path, files: dict[str, str]) -> Program:
    """Build a Program from fixture sources laid out under ``tmp_path``."""
    linter = Linter(root=tmp_path)
    modules = []
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    for path in sorted(tmp_path.rglob("*.py")):
        module, err = linter._parse(path)
        assert err is None, err
        modules.append(module)
    return build_program(modules)


class TestModuleNaming:
    def test_src_layout_is_stripped(self):
        assert module_name_for("src/repro/datalog/lifecycle.py") == "repro.datalog.lifecycle"

    def test_package_init_names_the_package(self):
        assert module_name_for("src/repro/tools/__init__.py") == "repro.tools"

    def test_bare_file(self):
        assert module_name_for("fixture.py") == "fixture"


class TestSymbolTable:
    def test_classes_methods_and_lock_ownership(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "cache.py": """\
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.entries = {}
                        self.hits = 0

                    def get(self, key):
                        return self.entries.get(key)

                class Plain:
                    def __init__(self):
                        self.n = 0
                """
            },
        )
        cache = program.classes["cache:Cache"]
        assert cache.owns_lock
        assert cache.guarded == {"entries", "hits"}
        assert "get" in cache.methods
        assert not program.classes["cache:Plain"].owns_lock
        assert [c.qualname for c in program.lock_owners()] == ["cache:Cache"]

    def test_cross_module_from_import_resolves(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "store.py": """\
                def build():
                    return 1
                """,
                "user.py": """\
                from store import build

                def use():
                    return build()
                """,
            },
        )
        use = program.functions["user:use"]
        assert use.calls[0].callees == ("store:build",)

    def test_nested_function_is_its_own_symbol(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "outer.py": """\
                def outer():
                    def inner():
                        return 1
                    return inner()
                """
            },
        )
        assert "outer:outer.<locals>.inner" in program.functions
        outer = program.functions["outer:outer"]
        assert ("outer:outer.<locals>.inner",) in [site.callees for site in outer.calls]


class TestTypeInference:
    def test_annotated_param_and_optional(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "m.py": """\
                class Widget:
                    def __init__(self):
                        self.size = 1

                    def poke(self):
                        return self.size

                def direct(w: Widget):
                    return w.poke()

                def optional(w: "Widget | None"):
                    return w.poke()
                """
            },
        )
        assert program.functions["m:direct"].calls[0].callees == ("m:Widget.poke",)
        assert program.functions["m:optional"].calls[0].callees == ("m:Widget.poke",)

    def test_constructor_local_and_init_attr(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "m.py": """\
                class Widget:
                    def __init__(self):
                        self.size = 1

                    def poke(self):
                        return self.size

                class Holder:
                    def __init__(self):
                        self.widget = Widget()

                    def use(self):
                        return self.widget.poke()

                def local_use():
                    w = Widget()
                    return w.poke()
                """
            },
        )
        assert program.functions["m:Holder.use"].calls[-1].callees == ("m:Widget.poke",)
        assert program.functions["m:local_use"].calls[-1].callees == ("m:Widget.poke",)

    def test_return_annotation_types_through_program_calls(self, tmp_path):
        # self.store.section("atom") -> CacheSection: the chain the real
        # EvaluationContext depends on.
        program = program_from(
            tmp_path,
            {
                "m.py": """\
                class Section:
                    def __init__(self):
                        self.rows = {}

                    def put(self, k, v):
                        self.rows[k] = v

                class Store:
                    def section(self) -> "Section":
                        return Section()

                class Context:
                    def __init__(self, store: Store):
                        self.atoms = store.section()

                    def add(self, k, v):
                        self.atoms.put(k, v)
                """
            },
        )
        add = program.functions["m:Context.add"]
        assert add.calls[0].callees == ("m:Section.put",)


class TestLockAndBlockingFacts:
    def test_lock_regions_and_may_acquire(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "m.py": """\
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.n = 0

                    def bump(self):
                        with self._lock:
                            self.n += 1

                    def outer(self):
                        self.bump()
                """
            },
        )
        bump = program.functions["m:Cache.bump"]
        assert bump.acquired == {"m:Cache"}
        assert program.may_acquire("m:Cache.outer") == {"m:Cache"}
        assert program.acquire_path("m:Cache.outer", "m:Cache") == [
            "m:Cache.outer",
            "m:Cache.bump",
        ]

    def test_blocking_witness_is_transitive_and_str_join_is_clean(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "m.py": """\
                import time

                def leaf():
                    time.sleep(1)

                def middle():
                    leaf()

                def clean(parts):
                    return ", ".join(parts)
                """
            },
        )
        witness = program.blocking_witness("m:middle")
        assert witness is not None
        chain, descriptor = witness
        assert chain == ("m:middle", "m:leaf")
        assert descriptor == "time.sleep()"
        assert program.blocking_witness("m:clean") is None

    def test_typed_queue_get_blocks_but_dict_get_does_not(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "m.py": """\
                import queue

                def waits(q: queue.Queue):
                    return q.get()

                def probes(d: dict):
                    return d.get(1)
                """
            },
        )
        assert program.blocking_witness("m:waits") is not None
        assert program.blocking_witness("m:probes") is None


class TestEntryPoints:
    def test_to_thread_thread_target_and_pool_dispatch(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "m.py": """\
                import asyncio
                import threading

                def work():
                    return 1

                def task(payload):
                    return payload

                async def a():
                    await asyncio.to_thread(work)

                def b():
                    threading.Thread(target=work).start()

                def c(pool):
                    pool.map(task, [1, 2])
                """
            },
        )
        entries = {(kind, target) for kind, _, target, _ in program.entry_points()}
        assert ("to_thread", "m:work") in entries
        assert ("thread", "m:work") in entries
        assert ("pool", "m:task") in entries

    def test_bound_method_reference_resolves(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "m.py": """\
                import asyncio

                class Engine:
                    def __init__(self):
                        self.n = 0

                    def prepare(self):
                        return self.n

                class Facade:
                    def __init__(self, engine: Engine):
                        self.engine = engine

                    async def prepare(self):
                        return await asyncio.to_thread(self.engine.prepare)
                """
            },
        )
        entries = {(kind, target) for kind, _, target, _ in program.entry_points()}
        assert ("to_thread", "m:Engine.prepare") in entries


class TestRealRepo:
    def test_real_program_sees_runtime_locks_and_entry_points(self):
        root = Path(__file__).resolve().parents[2]
        linter = Linter(root=root)
        modules = []
        for path in sorted((root / "src").rglob("*.py")):
            module, err = linter._parse(path)
            assert err is None
            modules.append(module)
        program = build_program(modules)
        owners = {cls.qualname for cls in program.lock_owners()}
        assert "repro.datalog.lifecycle:LifecycleCache" in owners
        assert "repro.datalog.lifecycle:RequestCache" in owners
        assert "repro.datalog.sharding:ShardedEvaluator" in owners
        assert "repro.core.aio:AsyncMetaqueryEngine" in owners
        targets = {target for _, _, target, _ in program.entry_points()}
        assert "repro.core.engine:MetaqueryEngine.prepare" in targets
        assert "repro.datalog.sharding:_instrumented_task" in targets
        # The cross-module reachability chain REP111 walks must resolve:
        # the async facade's thread entry reaches the lifecycle store.
        assert program.functions["repro.core.engine:MetaqueryEngine.prepare"].calls
