"""Tests for the async half of the program analysis: the callgraph's
coroutine/await/task-spawn modeling and the REP114–REP116 rules.

Each true-positive fixture reconstructs the motivating bug class from the
server track:

* REP114 — a synchronous blocking stage (``time.sleep``, file I/O, a
  direct ``MetaqueryEngine.find_rules``) executing on the event loop,
  where it stalls every tenant's stream at once.
* REP115 — a stream permit or semaphore slot leaked on an exception edge,
  silently shrinking the admission budget until the service 503s forever.
* REP116 — a fire-and-forget ``create_task`` whose task object nobody
  holds: garbage-collectable mid-flight, its exceptions swallowed.

Clean-code negatives pin the false-positive budget at zero on the exact
idioms the shipped server uses (``to_thread`` hops, guard-then-finally
permit pairing, the conditional-release handoff in
``AsyncMetaqueryEngine.stream``), and the pragma-parity tests prove the
new rule ids participate in the REP112/REP113 suppression audit.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.tools.lint.callgraph import build_program
from repro.tools.lint.framework import Linter

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_rules(tmp_path, rules, source, **linter_kwargs):
    """Lint a single dedented fixture file with the given rules."""
    fixture = tmp_path / "fixture.py"
    fixture.write_text(textwrap.dedent(source), encoding="utf-8")
    linter = Linter(root=tmp_path, rules=rules, force_scope=True, **linter_kwargs)
    return linter.lint([fixture])


def program_from(tmp_path, files):
    """Build a Program from fixture sources laid out under ``tmp_path``."""
    linter = Linter(root=tmp_path)
    modules = []
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    for path in sorted(tmp_path.rglob("*.py")):
        module, err = linter._parse(path)
        assert err is None, err
        modules.append(module)
    return build_program(modules)


class TestAsyncCallgraph:
    def test_is_async_distinguishes_coroutines(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "mod.py": """\
                async def coro():
                    return 1

                def plain():
                    return 1
                """
            },
        )
        assert program.functions["mod:coro"].is_async
        assert not program.functions["mod:plain"].is_async

    def test_await_edges_marked_on_call_sites(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "mod.py": """\
                async def helper():
                    return 1

                def sync_helper():
                    return 2

                async def caller():
                    a = await helper()
                    b = sync_helper()
                    return a + b
                """
            },
        )
        caller = program.functions["mod:caller"]
        by_callee = {callee: site for site in caller.calls for callee in site.callees}
        assert by_callee["mod:helper"].awaited
        assert not by_callee["mod:sync_helper"].awaited

    def test_task_spawn_sites_and_entry_points(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "mod.py": """\
                import asyncio

                async def worker():
                    await asyncio.sleep(0)

                async def other():
                    await asyncio.sleep(0)

                async def spawner():
                    tasks = [asyncio.create_task(worker())]
                    fut = asyncio.ensure_future(other())
                    await asyncio.gather(*tasks, fut)
                """
            },
        )
        spawner = program.functions["mod:spawner"]
        kinds = sorted(kind for kind, _target, _node in spawner.task_spawns)
        # gather records one spawn per argument (the starred list and fut)
        assert kinds == ["create_task", "ensure_future", "gather", "gather"]
        targets = {target for _kind, target, _node in spawner.task_spawns}
        assert "mod:worker" in targets and "mod:other" in targets
        spawned = {target for _kind, _spawner, target, _node in program.task_entry_points()}
        assert {"mod:worker", "mod:other"} <= spawned

    def test_loop_attr_spawn_matched_when_receiver_unresolved(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "mod.py": """\
                import asyncio

                async def worker():
                    pass

                async def spawner():
                    loop = asyncio.get_running_loop()
                    loop.create_task(worker())
                """
            },
        )
        spawner = program.functions["mod:spawner"]
        assert [kind for kind, _t, _n in spawner.task_spawns] == ["create_task"]

    def test_async_regions_recorded(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "mod.py": """\
                import asyncio

                class Engine:
                    def __init__(self):
                        self._semaphore = asyncio.Semaphore(4)

                    async def run(self, stream):
                        async with self._semaphore:
                            async for item in stream:
                                print(item)
                """
            },
        )
        run = program.functions["mod:Engine.run"]
        regions = {(kind, context) for kind, context, _node in run.async_regions}
        assert ("with", "self._semaphore") in regions
        assert ("for", "stream") in regions

    def test_run_in_executor_is_a_thread_entry_point(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "mod.py": """\
                import asyncio

                def heavy():
                    return 1

                async def dispatch():
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, heavy)
                """
            },
        )
        targets = {target for _kind, _spawner, target, _node in program.entry_points()}
        assert "mod:heavy" in targets

    def test_async_queue_and_semaphore_never_alias_blocking_waits(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "mod.py": """\
                import asyncio
                import queue

                class Consumer:
                    def __init__(self):
                        self.inbox: asyncio.Queue = asyncio.Queue()
                        self.backlog: queue.Queue = queue.Queue()

                    async def poll(self):
                        return await self.inbox.get()

                    def drain_sync(self):
                        return self.backlog.get()
                """
            },
        )
        poll = program.functions["mod:Consumer.poll"]
        assert all(site.blocking is None for site in poll.calls)
        drain = program.functions["mod:Consumer.drain_sync"]
        assert any(site.blocking is not None for site in drain.calls)

    def test_loop_blocking_witness_chain_and_await_cut(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "mod.py": """\
                import time

                def inner():
                    time.sleep(1.0)

                def outer():
                    inner()

                async def fine():
                    pass

                async def also_fine():
                    await fine()
                """
            },
        )
        witness = program.loop_blocking_witness("mod:outer")
        assert witness is not None
        assert witness.chain == ("mod:outer", "mod:inner")
        assert "time.sleep" in witness.descriptor
        assert program.loop_blocking_witness("mod:also_fine") is None

    def test_heavy_qualnames_count_as_blocking(self, tmp_path):
        program = program_from(
            tmp_path,
            {
                "mod.py": """\
                class Engine:
                    def find_rules(self):
                        return []

                def call_engine(engine: "Engine"):
                    return engine.find_rules()
                """
            },
        )
        heavy = frozenset({"mod:Engine.find_rules"})
        witness = program.loop_blocking_witness("mod:call_engine", heavy)
        assert witness is not None
        assert "synchronous engine compute" in witness.descriptor
        assert program.loop_blocking_witness("mod:call_engine") is None


class TestBlockingInCoroutine:
    def test_direct_sleep_on_the_loop_is_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP114"],
            """\
            import time

            async def handler():
                time.sleep(0.5)
            """,
        )
        assert [d.code for d in findings] == ["REP114"]
        assert "time.sleep" in findings[0].message

    def test_transitive_path_carries_the_call_chain(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP114"],
            """\
            import time

            def retry_pause():
                time.sleep(0.1)

            def with_backoff():
                retry_pause()

            async def handler():
                with_backoff()
            """,
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "fixture:handler -> fixture:with_backoff -> fixture:retry_pause" in message

    def test_sync_engine_compute_on_the_loop_is_flagged(self, tmp_path):
        # The motivating bug: a handler calling the *sync* engine facade
        # directly instead of the async wrapper's to_thread hop.
        files = {
            "src/repro/core/engine.py": """\
            class MetaqueryEngine:
                def find_rules(self, mq):
                    return []
            """,
            "src/repro/server/handlers.py": """\
            from repro.core.engine import MetaqueryEngine

            class Service:
                def __init__(self):
                    self.engine = MetaqueryEngine()

                async def handle_mine(self, mq):
                    return self.engine.find_rules(mq)
            """,
        }
        for relpath, source in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        linter = Linter(root=tmp_path, rules=["REP114"])
        findings = linter.lint([tmp_path / "src"])
        assert [d.code for d in findings] == ["REP114"]
        assert "synchronous engine compute MetaqueryEngine.find_rules()" in findings[0].message

    def test_to_thread_reference_cuts_the_path(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP114"],
            """\
            import asyncio
            import time

            def heavy():
                time.sleep(5.0)

            async def handler():
                await asyncio.to_thread(heavy)
            """,
        )
        assert findings == []

    def test_run_in_executor_reference_cuts_the_path(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP114"],
            """\
            import asyncio
            import time

            def heavy():
                time.sleep(5.0)

            async def handler():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, heavy)
            """,
        )
        assert findings == []

    def test_awaited_async_callee_is_not_this_coroutines_problem(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP114"],
            """\
            import asyncio
            import time

            async def inner():
                await asyncio.to_thread(time.sleep, 0.1)

            async def outer():
                await inner()
            """,
        )
        assert findings == []

    def test_asyncio_primitives_stay_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP114"],
            """\
            import asyncio

            class Engine:
                def __init__(self):
                    self._semaphore = asyncio.Semaphore(4)
                    self._queue: asyncio.Queue = asyncio.Queue()
                    self._idle = asyncio.Event()

                async def pump(self):
                    await self._semaphore.acquire()
                    try:
                        item = await self._queue.get()
                        await self._idle.wait()
                        return item
                    finally:
                        self._semaphore.release()
            """,
        )
        assert findings == []

    def test_blocking_in_plain_function_is_out_of_scope(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP114"],
            """\
            import time

            def worker():
                time.sleep(0.5)
            """,
        )
        assert findings == []


class TestResourcePairing:
    def test_unpaired_semaphore_acquire_is_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            import asyncio

            class Engine:
                def __init__(self):
                    self._semaphore = asyncio.Semaphore(4)

                async def leak(self):
                    await self._semaphore.acquire()
                    await self.work()

                async def work(self):
                    pass
            """,
        )
        assert [d.code for d in findings] == ["REP115"]
        assert "self._semaphore.acquire()" in findings[0].message

    def test_async_with_and_try_finally_are_paired(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            import asyncio

            class Engine:
                def __init__(self):
                    self._semaphore = asyncio.Semaphore(4)

                async def scoped(self):
                    async with self._semaphore:
                        await self.work()

                async def explicit(self):
                    await self._semaphore.acquire()
                    try:
                        await self.work()
                    finally:
                        self._semaphore.release()

                async def work(self):
                    pass
            """,
        )
        assert findings == []

    def test_permit_guard_idiom_from_the_service_is_clean(self, tmp_path):
        # Reconstructs _handle_mine_stream: guard try_acquire, raise on
        # denial, then a try whose finally releases on every exit edge.
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            class StreamPermits:
                def __init__(self, n):
                    self.active = 0
                    self.max_streams = n

                def try_acquire(self):
                    if self.active >= self.max_streams:
                        return False
                    self.active += 1
                    return True

                def release(self):
                    self.active -= 1

            class Service:
                def __init__(self):
                    self.permits = StreamPermits(8)

                async def handle(self):
                    if not self.permits.try_acquire():
                        raise RuntimeError("overloaded")
                    try:
                        await self.stream()
                    finally:
                        self.permits.release()

                async def stream(self):
                    pass
            """,
        )
        assert findings == []

    def test_permit_leak_on_exception_edge_is_flagged(self, tmp_path):
        # The motivating bug: prepare() raising after admission leaks the
        # permit; the budget shrinks by one on every failure.
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            class StreamPermits:
                def __init__(self, n):
                    self.active = 0
                    self.max_streams = n

                def try_acquire(self):
                    self.active += 1
                    return True

                def release(self):
                    self.active -= 1

            class Service:
                def __init__(self):
                    self.permits = StreamPermits(8)

                async def handle(self):
                    if not self.permits.try_acquire():
                        raise RuntimeError("overloaded")
                    prepared = await self.prepare()
                    await self.stream(prepared)
                    self.permits.release()

                async def prepare(self):
                    return object()

                async def stream(self, prepared):
                    pass
            """,
        )
        assert len(findings) == 1
        assert "try_acquire" in findings[0].message

    def test_interprocedural_release_through_helper_is_paired(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            import asyncio

            class Engine:
                def __init__(self):
                    self._semaphore = asyncio.Semaphore(4)

                async def run(self):
                    await self._semaphore.acquire()
                    try:
                        await self.work()
                    finally:
                        self._retire()

                def _retire(self):
                    self._semaphore.release()

                async def work(self):
                    pass
            """,
        )
        assert findings == []

    def test_conditional_release_handoff_is_an_obligation_transfer(self, tmp_path):
        # Reconstructs AsyncMetaqueryEngine.stream: release directly only
        # when the producer never started, else the done-callback releases.
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            import asyncio

            class Engine:
                def __init__(self):
                    self._semaphore = asyncio.Semaphore(4)

                async def stream(self):
                    await self._semaphore.acquire()
                    producer = None
                    try:
                        producer = asyncio.ensure_future(self.produce())
                        producer.add_done_callback(lambda _: self._retire())
                        await producer
                    finally:
                        if producer is None:
                            self._semaphore.release()

                def _retire(self):
                    self._semaphore.release()

                async def produce(self):
                    pass
            """,
        )
        assert findings == []

    def test_token_bucket_without_release_is_exempt_by_construction(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            class TokenBucket:
                def __init__(self):
                    self.tokens = 10.0

                def try_acquire(self):
                    if self.tokens < 1.0:
                        return False
                    self.tokens -= 1.0
                    return True

            class Limiter:
                def __init__(self):
                    self.bucket = TokenBucket()

                def admit(self):
                    return self.bucket.try_acquire()
            """,
        )
        assert findings == []

    def test_resource_classes_own_methods_are_exempt(self, tmp_path):
        # An internal acquire inside the resource's own implementation is
        # the class managing its own bookkeeping, not a leaked obligation.
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            class Permits:
                def __init__(self):
                    self.active = 0

                def try_acquire(self):
                    self.active += 1
                    return True

                def release(self):
                    self.active -= 1

                def reset(self):
                    if self.try_acquire():
                        self.active = 0
            """,
        )
        assert findings == []

    def test_forgotten_producer_thread_is_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            import threading

            def fire_and_forget(work):
                t = threading.Thread(target=work)
                t.start()
            """,
        )
        assert len(findings) == 1
        assert "neither joined, retained, nor daemonized" in findings[0].message

    def test_joined_daemonized_or_retained_threads_are_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP115"],
            """\
            import threading

            class Harness:
                def __init__(self):
                    self._thread = None

                def retained(self, work):
                    self._thread = threading.Thread(target=work)
                    self._thread.start()

                def joined(self, work):
                    t = threading.Thread(target=work)
                    t.start()
                    t.join()

                def daemonized(self, work):
                    t = threading.Thread(target=work, daemon=True)
                    t.start()

                def handed_over(self, work, registry):
                    t = threading.Thread(target=work)
                    t.start()
                    registry.append(t)
            """,
        )
        assert findings == []


class TestDroppedTask:
    def test_bare_create_task_statement_is_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP116"],
            """\
            import asyncio

            async def pump():
                pass

            async def handler():
                asyncio.create_task(pump())
            """,
        )
        assert [d.code for d in findings] == ["REP116"]
        assert "create_task() result dropped" in findings[0].message

    def test_underscore_and_dead_local_assignments_are_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP116"],
            """\
            import asyncio

            async def pump():
                pass

            async def to_underscore():
                _ = asyncio.create_task(pump())

            async def to_dead_local():
                task = asyncio.ensure_future(pump())
                return None
            """,
        )
        assert len(findings) == 2
        assert any("'_'" in d.message for d in findings)
        assert any("'task'" in d.message for d in findings)

    def test_retained_awaited_and_callbacked_tasks_are_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP116"],
            """\
            import asyncio

            async def pump():
                pass

            class Owner:
                def __init__(self):
                    self.background = set()
                    self.eof_task = None

                async def awaited(self):
                    await asyncio.gather(asyncio.create_task(pump()))

                async def retained_in_local(self):
                    task = asyncio.create_task(pump())
                    await task

                async def retained_on_self(self):
                    self.eof_task = asyncio.create_task(pump())

                async def retained_in_container(self):
                    self.background.add(asyncio.create_task(pump()))

                async def callbacked(self):
                    asyncio.create_task(pump()).add_done_callback(print)

                async def returned(self):
                    return asyncio.ensure_future(pump())
            """,
        )
        assert findings == []

    def test_polled_then_cancelled_task_is_clean(self, tmp_path):
        # Reconstructs the service's eof_task disconnect probe.
        findings = run_rules(
            tmp_path,
            ["REP116"],
            """\
            import asyncio

            async def probe(reader):
                eof_task = asyncio.create_task(reader.read(1))
                try:
                    if eof_task.done():
                        return True
                    return False
                finally:
                    eof_task.cancel()
            """,
        )
        assert findings == []


class TestPragmaParity:
    def test_new_rule_ids_are_suppressible(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP114"],
            """\
            import time

            async def handler():
                time.sleep(0.5)  # repro-lint: disable=blocking-in-coroutine
            """,
        )
        assert findings == []

    def test_new_rule_codes_are_known_to_the_pragma_audit(self, tmp_path):
        # A pragma naming a new rule id must NOT be REP113-unknown; a
        # stale one must be REP112-unused on --warn-unused-pragmas runs.
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            textwrap.dedent(
                """\
                async def quiet():  # repro-lint: disable=REP116
                    pass
                """
            ),
            encoding="utf-8",
        )
        linter = Linter(root=tmp_path, warn_unused_pragmas=True)
        findings = linter.lint([fixture])
        assert [d.code for d in findings] == ["REP112"]
        assert "REP116" in findings[0].message

    def test_unknown_pragma_still_fails(self, tmp_path):
        findings = run_rules(
            tmp_path,
            ["REP114"],
            """\
            async def quiet():  # repro-lint: disable=REP199
                pass
            """,
        )
        assert [d.code for d in findings] == ["REP113"]


class TestFullRepoGate:
    def test_battery_lists_the_async_rules(self):
        from repro.tools.lint.framework import all_rules

        codes = {cls.code for cls in all_rules().values()}
        assert {"REP114", "REP115", "REP116"} <= codes

    def test_shipped_tree_is_clean_under_the_async_rules(self):
        linter = Linter(root=REPO_ROOT, rules=["REP114", "REP115", "REP116"])
        assert linter.lint([REPO_ROOT / "src"]) == []
