"""End-to-end tests for ``python -m repro.tools.lint`` and the check_docs shim.

Includes the acceptance gate for this repository: a full default run (all
rules over ``src/`` plus the documentation check) must exit 0 — every
invariant the battery enforces holds on the codebase itself.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.tools.check_docs import main as check_docs_main
from repro.tools.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_module(module: str, *args: str) -> subprocess.CompletedProcess:
    """Run ``python -m <module>`` from the repo root with src/ importable."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def write_fixture(tmp_path: Path, source: str) -> Path:
    fixture = tmp_path / "fixture.py"
    fixture.write_text(textwrap.dedent(source), encoding="utf-8")
    return fixture


class TestCli:
    def test_full_repository_is_lint_clean(self, capsys):
        # The acceptance criterion: the battery exits 0 on the repo itself.
        assert main(["--root", str(REPO_ROOT)]) == 0
        assert "lint: OK" in capsys.readouterr().out

    def test_findings_exit_1_with_text_report(self, tmp_path, capsys):
        fixture = write_fixture(tmp_path, "x = float(1)\n")
        code = main(["--rule", "exact-arithmetic", str(fixture)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP101" in out and "[exact-arithmetic]" in out
        assert f"{fixture.name}:1:" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        fixture = write_fixture(tmp_path, "x = float(1)\n")
        code = main(["--rule", "REP101", "--format", "json", str(fixture)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["code"] == "REP101"
        assert payload[0]["rule"] == "exact-arithmetic"
        assert payload[0]["line"] == 1

    def test_clean_json_run_prints_empty_list(self, tmp_path, capsys):
        fixture = write_fixture(tmp_path, "x = 1\n")
        code = main(["--rule", "REP101", "--format", "json", str(fixture)])
        assert code == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_pragma_suppresses_via_cli(self, tmp_path):
        fixture = write_fixture(
            tmp_path, "x = float(1)  # repro-lint: disable=exact-arithmetic\n"
        )
        assert main(["--rule", "exact-arithmetic", str(fixture)]) == 0

    def test_list_rules_prints_the_battery(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP101", "REP102", "REP103", "REP104", "REP105", "REP106", "REP107", "REP108"):
            assert code in out

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["--rule", "no-such-rule"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_module_entry_point_runs(self):
        result = run_module("repro.tools.lint", "--list-rules")
        assert result.returncode == 0
        assert "REP101" in result.stdout


class TestCheckDocsShim:
    def test_no_args_delegates_to_doc_refs_rule(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert check_docs_main([]) == 0
        assert "lint: OK" in capsys.readouterr().out

    def test_explicit_file_still_checked_directly(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert check_docs_main([str(REPO_ROOT / "README.md")]) == 0
        assert "1 file(s) OK" in capsys.readouterr().out

    def test_module_entry_point_survives(self):
        result = run_module("repro.tools.check_docs")
        assert result.returncode == 0
